"""Pipeline configuration objects.

:class:`ConcolicBudget` and :class:`ReplayBudget` are defined next to the
engines that consume them and re-exported here so that user code only needs to
import from :mod:`repro` / :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.concolic.budget import ConcolicBudget
from repro.replay.budget import ReplayBudget

__all__ = ["ConcolicBudget", "PipelineConfig", "ReplayBudget",
           "coerce_pipeline_config"]


@dataclass
class PipelineConfig:
    """Knobs shared by every stage of a :class:`~repro.core.pipeline.Pipeline`.

    ``library_functions`` plays the role of uClibc in the paper's uServer
    experiment: those functions are excluded from the static analysis (all
    their branches are conservatively treated as symbolic) and reported
    separately in branch-behaviour statistics.
    """

    concolic_budget: ConcolicBudget = field(default_factory=ConcolicBudget)
    replay_budget: ReplayBudget = field(default_factory=ReplayBudget)
    log_syscalls: bool = True
    library_functions: Set[str] = field(default_factory=set)
    static_skips_library: bool = True
    replay_search_order: str = "dfs"
    record_max_steps: int = 10_000_000
    # Execution engine used by every stage (record, replay, analysis):
    # "interp" (tree-walking interpreter) or "vm" (bytecode VM).
    backend: str = "interp"
    # Workers for the replay engine's pending-list search.  Results commit in
    # serial pop order, so any worker count (and either worker kind) explores
    # the identical run set; >1 merely overlaps speculative evaluations.
    # ``replay_worker_kind`` picks the pool: "thread" (cheap, GIL-bound) or
    # "process" (each worker rebuilds the engine from a pickled spec and runs
    # in its own interpreter — real multi-core scaling).
    replay_workers: int = 1
    replay_worker_kind: str = "thread"
    # Seed each pending item's search from the parent run's satisfying
    # assignment; skips the solver whenever flipping one branch only moves
    # one input variable (see repro.symbolic.solver.warm_start_assignment).
    replay_warm_start: bool = True
    # Let the VM backend run plan-specialized bytecode (BRANCH_LOGGED /
    # BRANCH_BARE instead of hook-dispatched BRANCH) during record and replay.
    specialize_plans: bool = True
    # Let the VM backend run register-allocated bytecode: locals the static
    # resolution pass proves pure live in numbered frame slots (LOAD_FAST/
    # STORE_FAST) instead of scope dicts.  Disable to run the named-cell VM
    # for comparison; semantics are identical either way.
    register_allocation: bool = True
    # Let the VM fuse BINOP_FF;BRANCH_* into the compare-and-branch
    # superinstructions.  Observation-preserving; disable for comparison
    # benchmarks.  (Pre-deployment analysis runs keep the default, like the
    # other VM code-generation knobs.)
    fuse_compare_branch: bool = True
    # Let the VM run the adaptive int-specialization tier: unboxed BINOP_II*
    # forms for slots the resolver's type lattice proves integer-only, plus
    # runtime quickening of the remaining candidate sites.  Every unboxed
    # site deoptimizes to its generic origin on a type-guard violation, so
    # record/replay observations are identical either way.
    specialize_ints: bool = True
    # Let the VM run the profile-synthesized superinstructions
    # (repro.vm.synth): adjacent-pair fusions ranked from recorded
    # ``vm.opcode.*`` dispatch profiles.  Observation-preserving like the
    # other code-generation knobs.
    synth_superinstructions: bool = True
    # Guest call-stack depth limit applied to record and replay runs.
    max_call_depth: int = 256
    # Record metrics and spans into repro.telemetry registries during record
    # and replay.  Telemetry never affects the explored search tree (the
    # on/off differential tests assert byte-identical outcomes); off (the
    # default) costs nothing — instrumentation sites resolve to shared no-op
    # singletons and the VM runs its unmodified dispatch loop.
    telemetry_enabled: bool = False
    # Swap in the VM's per-opcode profiling dispatch loop (exact execution
    # counts per opcode, incl. the logged-vs-bare branch split).  Costs one
    # dict update per dispatched instruction, so it is a separate knob.
    profile_opcodes: bool = False

    def static_skip_set(self) -> Set[str]:
        return set(self.library_functions) if self.static_skips_library else set()


def coerce_pipeline_config(config) -> PipelineConfig:
    """Accept a :class:`PipelineConfig`, a layered config, or ``None``.

    The canonical configuration object is
    :class:`repro.service.config.ReproConfig`; this shim lets every
    :class:`~repro.core.pipeline.Pipeline` entry point take either form
    without the core package importing the service layer (the layered config
    is recognised duck-typed via its ``to_pipeline_config`` method).
    """

    if config is None:
        return PipelineConfig()
    if isinstance(config, PipelineConfig):
        return config
    to_pipeline = getattr(config, "to_pipeline_config", None)
    if callable(to_pipeline):
        return to_pipeline()
    raise TypeError(
        f"expected PipelineConfig or ReproConfig, got {type(config).__name__}")
