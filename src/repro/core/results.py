"""Result dataclasses returned by the pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.dataflow import StaticAnalysisResult
from repro.concolic.engine import DynamicAnalysisResult
from repro.environment import Environment
from repro.instrument.logger import BitvectorLog, SyscallResultLog
from repro.instrument.overhead import OverheadReport
from repro.instrument.plan import InstrumentationPlan
from repro.interp.interpreter import CrashSite, ExecutionResult
from repro.replay.engine import ReplayOutcome


@dataclass
class AnalysisResult:
    """Combined output of the pre-deployment analyses."""

    dynamic: Optional[DynamicAnalysisResult]
    static: Optional[StaticAnalysisResult]

    def summary(self) -> str:
        parts = []
        if self.dynamic is not None:
            parts.append(self.dynamic.summary())
        if self.static is not None:
            parts.append(self.static.summary())
        return "; ".join(parts) if parts else "no analysis performed"


@dataclass
class InstrumentationReport:
    """An instrumentation plan plus the overhead measured for one workload."""

    plan: InstrumentationPlan
    overhead: OverheadReport
    baseline_steps: int
    instrumented_locations_executed: int = 0

    def describe(self) -> Dict[str, object]:
        info = dict(self.plan.describe())
        info.update(self.overhead.describe())
        return info


@dataclass
class RecordingResult:
    """What the (simulated) user site ships to the developer after a crash.

    The bug report consists of the bitvector, the optional syscall-result log
    and the crash site.  The execution summary and overhead report stay on the
    user side and are used by the overhead experiments.
    """

    plan: InstrumentationPlan
    environment: Environment
    bitvector: BitvectorLog
    syscall_log: SyscallResultLog
    crash_site: Optional[CrashSite]
    execution: ExecutionResult
    overhead: OverheadReport
    baseline_steps: int

    @property
    def crashed(self) -> bool:
        return self.execution.crashed

    def storage_bytes(self) -> int:
        total = self.bitvector.storage_bytes()
        if self.plan.log_syscalls:
            total += self.syscall_log.storage_bytes()
        return total

    def describe(self) -> Dict[str, object]:
        return {
            "method": self.plan.method,
            "crashed": self.crashed,
            "crash": None if self.crash_site is None else
                     f"{self.crash_site.function}:{self.crash_site.line}",
            "bitvector_bits": len(self.bitvector),
            "logged_syscall_results": self.syscall_log.count(),
            "storage_bytes": self.storage_bytes(),
            "cpu_time_percent": round(self.overhead.cpu_time_percent, 1),
        }


@dataclass
class ReplayReport:
    """Developer-site result of a reproduction attempt."""

    method: str
    outcome: ReplayOutcome
    scenario: str = ""

    @property
    def reproduced(self) -> bool:
        return self.outcome.reproduced

    @property
    def timed_out(self) -> bool:
        return self.outcome.timed_out

    @property
    def replay_seconds(self) -> float:
        return self.outcome.wall_seconds

    @property
    def runs(self) -> int:
        return self.outcome.runs

    def describe(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "scenario": self.scenario,
            "reproduced": self.reproduced,
            "timed_out": self.timed_out,
            "replay_seconds": round(self.replay_seconds, 3),
            "runs": self.runs,
            "unlogged_symbolic_locations": self.outcome.symbolic_not_logged_locations,
            "unlogged_symbolic_executions": self.outcome.symbolic_not_logged_executions,
        }


@dataclass
class BranchLoggingStats:
    """Symbolic branch locations/executions logged vs not logged (Tables 4, 7, 8).

    Computed from a ground-truth profiling run of the *recorded* scenario: the
    set of branch executions whose conditions actually depended on input,
    split by whether the instrumentation plan logs their location.
    """

    method: str
    scenario: str
    logged_locations: int
    logged_executions: int
    not_logged_locations: int
    not_logged_executions: int

    def describe(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "scenario": self.scenario,
            "logged": f"{self.logged_locations} / {self.logged_executions}",
            "not_logged": f"{self.not_logged_locations} / {self.not_logged_executions}",
        }
