"""The top-level pipeline API tying every stage together.

:class:`~repro.core.pipeline.Pipeline` is the programmatic equivalent of the
paper's workflow:

1. ``analyze`` — run the bounded dynamic (concolic) analysis and the static
   analysis;
2. ``make_plan`` — pick an instrumentation method and derive the set of branch
   locations to log;
3. ``record`` — execute the instrumented program at the (simulated) user site,
   producing the branch bitvector, the optional syscall-result log, and the
   crash site;
4. ``reproduce`` — hand the bug report to the replay engine at the developer
   site and search for an input reaching the same crash.
"""

from repro.core.config import ConcolicBudget, PipelineConfig, ReplayBudget
from repro.core.pipeline import Pipeline
from repro.core.results import (
    AnalysisResult,
    InstrumentationReport,
    RecordingResult,
    ReplayReport,
)

__all__ = [
    "AnalysisResult",
    "ConcolicBudget",
    "InstrumentationReport",
    "Pipeline",
    "PipelineConfig",
    "RecordingResult",
    "ReplayBudget",
    "ReplayReport",
]
