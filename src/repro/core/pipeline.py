"""The end-to-end pipeline: analyse → instrument → record → reproduce."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.analysis.dataflow import StaticAnalysisResult, StaticAnalyzer
from repro.concolic.budget import ConcolicBudget
from repro.concolic.engine import ConcolicEngine, DynamicAnalysisResult
from repro.core.config import PipelineConfig, coerce_pipeline_config
from repro.core.results import (
    AnalysisResult,
    BranchLoggingStats,
    InstrumentationReport,
    RecordingResult,
    ReplayReport,
)
from repro.environment import Environment
from repro.instrument.logger import BranchLogger
from repro.instrument.methods import InstrumentationMethod, build_plan
from repro.instrument.overhead import OverheadModel
from repro.instrument.plan import InstrumentationPlan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig, ExecutionResult
from repro.interp.tracer import NullHooks, TraceRecorder
from repro.lang.program import Program
from repro.replay.budget import ReplayBudget
from repro.replay.engine import ReplayEngine
from repro.telemetry import span as telemetry_span
from repro.concolic.hooks import ConcolicRunTrace
from repro.concolic.labels import BranchLabels


class Pipeline:
    """Orchestrates the full workflow for one program."""

    def __init__(self, program: Program, config: Optional[PipelineConfig] = None) -> None:
        self.program = program
        # Accepts the legacy PipelineConfig or the layered service-era
        # ReproConfig (coerced here so every stage sees one flat object).
        self.config = coerce_pipeline_config(config)
        self.overhead_model = OverheadModel()
        self._baseline_cache: Dict[str, int] = {}

    # -- construction -----------------------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, name: str = "program",
                    config: Optional[PipelineConfig] = None,
                    library_functions: Optional[Set[str]] = None) -> "Pipeline":
        config = coerce_pipeline_config(config)
        if library_functions:
            config.library_functions = set(library_functions)
        program = Program.from_source(source, name=name,
                                      library_functions=config.library_functions)
        return cls(program, config)

    # -- analyses -----------------------------------------------------------------------------

    def run_dynamic_analysis(self, environment: Environment,
                             budget: Optional[ConcolicBudget] = None) -> DynamicAnalysisResult:
        engine = ConcolicEngine(self.program, environment,
                                budget or self.config.concolic_budget,
                                backend=self.config.backend)
        return engine.explore()

    def run_static_analysis(self) -> StaticAnalysisResult:
        analyzer = StaticAnalyzer(self.program,
                                  skip_functions=self.config.static_skip_set())
        return analyzer.run()

    def analyze(self, environment: Environment,
                budget: Optional[ConcolicBudget] = None) -> AnalysisResult:
        """Run both analyses (the paper's pre-deployment phase)."""

        dynamic = self.run_dynamic_analysis(environment, budget)
        static = self.run_static_analysis()
        return AnalysisResult(dynamic=dynamic, static=static)

    def profile_branch_behavior(self, environment: Environment) -> TraceRecorder:
        """One symbolic-tracking run with the scenario's real inputs.

        This is the measurement behind the paper's Figures 1 and 3: per branch
        location, how many times it executed and how many of those executions
        had an input-dependent condition.
        """

        engine = ConcolicEngine(self.program, environment, self.config.concolic_budget,
                                backend=self.config.backend)
        return engine.profile_run()

    # -- instrumentation -----------------------------------------------------------------------

    def make_plan(self, method: InstrumentationMethod,
                  analysis: Optional[AnalysisResult] = None,
                  environment: Optional[Environment] = None,
                  log_syscalls: Optional[bool] = None) -> InstrumentationPlan:
        """Build an instrumentation plan for *method*.

        If *analysis* is omitted, the required analyses are run on demand
        (which needs *environment* for the dynamic part).
        """

        needs_dynamic = method in (InstrumentationMethod.DYNAMIC,
                                   InstrumentationMethod.DYNAMIC_PLUS_STATIC,
                                   InstrumentationMethod.STATIC_UNION)
        needs_static = method in (InstrumentationMethod.STATIC,
                                  InstrumentationMethod.DYNAMIC_PLUS_STATIC,
                                  InstrumentationMethod.STATIC_UNION)
        dynamic = analysis.dynamic if analysis else None
        static = analysis.static if analysis else None
        if needs_dynamic and dynamic is None:
            if environment is None:
                raise ValueError("dynamic analysis requires an environment")
            dynamic = self.run_dynamic_analysis(environment)
        if needs_static and static is None:
            static = self.run_static_analysis()
        return build_plan(method, self.program.branch_locations,
                          dynamic_labels=dynamic.labels if dynamic else None,
                          static_result=static,
                          log_syscalls=self.config.log_syscalls
                          if log_syscalls is None else log_syscalls)

    def make_all_plans(self, analysis: AnalysisResult,
                       log_syscalls: Optional[bool] = None
                       ) -> Dict[InstrumentationMethod, InstrumentationPlan]:
        """Plans for the four instrumented configurations studied in the paper."""

        return {method: self.make_plan(method, analysis, log_syscalls=log_syscalls)
                for method in InstrumentationMethod.paper_methods()}

    # -- recording (user site) ---------------------------------------------------------------------

    def baseline_steps(self, environment: Environment) -> int:
        """Interpreter steps of the uninstrumented run (the ``none`` config)."""

        cached = self._baseline_cache.get(environment.name)
        if cached is not None:
            return cached
        result = self._plain_run(environment)
        self._baseline_cache[environment.name] = result.steps
        return result.steps

    def _plain_run(self, environment: Environment) -> ExecutionResult:
        executor = create_backend(
            self.program,
            kernel=environment.make_kernel(),
            hooks=NullHooks(),
            binder=InputBinder(mode=ExecutionMode.RECORD),
            config=ExecutionConfig(mode=ExecutionMode.RECORD,
                                   max_steps=self.config.record_max_steps,
                                   max_call_depth=self.config.max_call_depth,
                                   backend=self.config.backend,
                                   specialize_plans=self.config.specialize_plans,
                                   register_allocation=self.config.register_allocation,
                                   fuse_compare_branch=self.config.fuse_compare_branch,
                                   specialize_ints=self.config.specialize_ints,
                                   synth_superinstructions=(
                                       self.config.synth_superinstructions)),
        )
        return executor.run(environment.argv)

    def record(self, plan: InstrumentationPlan, environment: Environment) -> RecordingResult:
        """Execute the instrumented program at the simulated user site."""

        logger = BranchLogger(plan)
        executor = create_backend(
            self.program,
            kernel=environment.make_kernel(),
            hooks=logger,
            binder=InputBinder(mode=ExecutionMode.RECORD),
            config=ExecutionConfig(mode=ExecutionMode.RECORD,
                                   max_steps=self.config.record_max_steps,
                                   max_call_depth=self.config.max_call_depth,
                                   backend=self.config.backend,
                                   specialize_plans=self.config.specialize_plans,
                                   register_allocation=self.config.register_allocation,
                                   fuse_compare_branch=self.config.fuse_compare_branch,
                                   specialize_ints=self.config.specialize_ints,
                                   synth_superinstructions=(
                                       self.config.synth_superinstructions),
                                   profile_opcodes=(self.config.telemetry_enabled
                                                    and self.config.profile_opcodes)),
        )
        # The span (and the VM's opcode counts) land in whatever telemetry
        # registry the caller has active — a shared no-op when none is.
        with telemetry_span("record.run", scenario=environment.name,
                            method=getattr(plan.method, "value", plan.method)):
            execution = executor.run(environment.argv)
        baseline = self.baseline_steps(environment)
        overhead = self.overhead_model.report(
            method=plan.method,
            base_units=baseline,
            instrumented_branch_executions=logger.instrumented_executions,
            logged_syscall_results=logger.syscall_log.count() if plan.log_syscalls else 0,
            buffer_flushes=logger.bitvector.flushes,
            storage_bytes=logger.storage_bytes(),
        )
        return RecordingResult(
            plan=plan,
            environment=environment,
            bitvector=logger.bitvector,
            syscall_log=logger.syscall_log,
            crash_site=execution.crash,
            execution=execution,
            overhead=overhead,
            baseline_steps=baseline,
        )

    def measure_overhead(self, plan: InstrumentationPlan,
                         environment: Environment) -> InstrumentationReport:
        """Record once and package the overhead numbers (Figures 2, 4, 5)."""

        recording = self.record(plan, environment)
        logger_locations = len({loc for loc in plan.instrumented})
        return InstrumentationReport(plan=plan, overhead=recording.overhead,
                                     baseline_steps=recording.baseline_steps,
                                     instrumented_locations_executed=logger_locations)

    # -- replay (developer site) -----------------------------------------------------------------------

    def reproduce(self, recording: RecordingResult,
                  budget: Optional[ReplayBudget] = None,
                  scenario: str = "",
                  search_order: Optional[str] = None) -> ReplayReport:
        """Attempt to reproduce the recorded crash from its bug report."""

        engine = ReplayEngine(
            program=self.program,
            plan=recording.plan,
            bitvector=recording.bitvector,
            syscall_log=recording.syscall_log if recording.plan.log_syscalls else None,
            crash_site=recording.crash_site,
            environment=recording.environment.scaffold(),
            budget=budget or self.config.replay_budget,
            search_order=search_order or self.config.replay_search_order,
            backend=self.config.backend,
            workers=self.config.replay_workers,
            worker_kind=self.config.replay_worker_kind,
            specialize_plans=self.config.specialize_plans,
            register_allocation=self.config.register_allocation,
            fuse_compare_branch=self.config.fuse_compare_branch,
            specialize_ints=self.config.specialize_ints,
            synth_superinstructions=self.config.synth_superinstructions,
            max_call_depth=self.config.max_call_depth,
            warm_start=self.config.replay_warm_start,
            telemetry=self.config.telemetry_enabled,
            profile_opcodes=self.config.profile_opcodes,
        )
        outcome = engine.reproduce()
        return ReplayReport(method=recording.plan.method, outcome=outcome,
                            scenario=scenario or recording.environment.name)

    # -- trace persistence (the user/developer split) -----------------------------------------

    def record_trace(self, plan: InstrumentationPlan, environment: Environment,
                     path: str, scaffold: bool = True) -> RecordingResult:
        """Record at the simulated user site and persist the bug report.

        The file written to *path* is everything the paper's user machine
        ships to the developer: bitvector, selected syscall results, crash
        site and the structural input scaffold (with ``scaffold=True``, the
        default, the user's data is blanked out before it is serialized).
        """

        from repro.trace import save_trace, trace_from_recording

        recording = self.record(plan, environment)
        trace = trace_from_recording(recording, scaffold=scaffold,
                                     program_name=self.program.name)
        save_trace(path, trace)
        return recording

    def reproduce_from_trace(self, trace_or_path, budget: Optional[ReplayBudget] = None,
                             scenario: str = "",
                             expect_plan: Optional[InstrumentationPlan] = None,
                             search_order: Optional[str] = None) -> ReplayReport:
        """Reproduce a crash from a persisted trace (the developer site).

        Accepts a path or an already-loaded :class:`~repro.trace.Trace`.  The
        matched-binaries assumption is enforced: a trace whose plan
        fingerprint disagrees with *expect_plan* (or whose instrumented
        locations this pipeline's program does not have) is rejected with
        :class:`~repro.trace.TraceFingerprintMismatch`.
        """

        from repro.trace import Trace, load_trace

        trace = (trace_or_path if isinstance(trace_or_path, Trace)
                 else load_trace(trace_or_path))
        engine = ReplayEngine.from_trace(
            self.program, trace, expect_plan=expect_plan,
            budget=budget or self.config.replay_budget,
            search_order=search_order or self.config.replay_search_order,
            backend=self.config.backend,
            workers=self.config.replay_workers,
            worker_kind=self.config.replay_worker_kind,
            specialize_plans=self.config.specialize_plans,
            register_allocation=self.config.register_allocation,
            fuse_compare_branch=self.config.fuse_compare_branch,
            specialize_ints=self.config.specialize_ints,
            synth_superinstructions=self.config.synth_superinstructions,
            max_call_depth=self.config.max_call_depth,
            warm_start=self.config.replay_warm_start,
            telemetry=self.config.telemetry_enabled,
            profile_opcodes=self.config.profile_opcodes,
        )
        outcome = engine.reproduce()
        return ReplayReport(method=trace.plan.method, outcome=outcome,
                            scenario=scenario or trace.scenario)

    # -- derived statistics (Tables 4, 7, 8) --------------------------------------------------------------

    def branch_logging_stats(self, plan: InstrumentationPlan,
                             environment: Environment,
                             scenario: str = "") -> BranchLoggingStats:
        """Split the scenario's symbolic branch executions by logged / not logged."""

        profile = self.profile_branch_behavior(environment)
        logged_locations = 0
        logged_executions = 0
        not_logged_locations = 0
        not_logged_executions = 0
        for location, executions in profile.symbolic_executions.items():
            if plan.is_instrumented(location):
                logged_locations += 1
                logged_executions += executions
            else:
                not_logged_locations += 1
                not_logged_executions += executions
        return BranchLoggingStats(
            method=plan.method,
            scenario=scenario or environment.name,
            logged_locations=logged_locations,
            logged_executions=logged_executions,
            not_logged_locations=not_logged_locations,
            not_logged_executions=not_logged_executions,
        )

    # -- end-to-end convenience --------------------------------------------------------------------------

    def end_to_end(self, method: InstrumentationMethod, environment: Environment,
                   analysis: Optional[AnalysisResult] = None,
                   replay_budget: Optional[ReplayBudget] = None,
                   log_syscalls: Optional[bool] = None) -> Tuple[RecordingResult, ReplayReport]:
        """Analyse, instrument, record and reproduce in one call."""

        if analysis is None:
            analysis = self.analyze(environment)
        plan = self.make_plan(method, analysis, log_syscalls=log_syscalls)
        recording = self.record(plan, environment)
        report = self.reproduce(recording, budget=replay_budget)
        return recording, report
