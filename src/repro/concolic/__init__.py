"""Dynamic analysis: time-bounded concolic execution.

The engine repeatedly runs the program with concrete inputs, collects the path
constraints induced by symbolic branches, and generates new inputs by negating
individual constraints (the classic concolic loop, §2.1 of the paper).  Its
output is a labelling of branch locations as *symbolic* or *concrete*; branch
locations never visited within the budget remain *unlabeled*.
"""

from repro.concolic.budget import ConcolicBudget
from repro.concolic.engine import ConcolicEngine, DynamicAnalysisResult
from repro.concolic.hooks import ConcolicRunTrace
from repro.concolic.labels import BranchLabel, BranchLabels

__all__ = [
    "BranchLabel",
    "BranchLabels",
    "ConcolicBudget",
    "ConcolicEngine",
    "ConcolicRunTrace",
    "DynamicAnalysisResult",
]
