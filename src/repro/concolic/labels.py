"""Branch labels produced by the dynamic analysis."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.lang.cfg import BranchLocation


class BranchLabel(enum.Enum):
    """The three states a branch location can be in after dynamic analysis."""

    SYMBOLIC = "symbolic"
    CONCRETE = "concrete"
    UNVISITED = "unvisited"


@dataclass
class BranchLabels:
    """Labelling of every branch location in a program.

    The labelling follows the paper's rules: once a branch is observed with a
    symbolic condition it stays symbolic; a branch observed only with concrete
    conditions is concrete; anything never executed within the budget is
    unvisited.
    """

    all_locations: Set[BranchLocation] = field(default_factory=set)
    symbolic: Set[BranchLocation] = field(default_factory=set)
    concrete: Set[BranchLocation] = field(default_factory=set)

    @classmethod
    def for_program(cls, locations: Iterable[BranchLocation]) -> "BranchLabels":
        return cls(all_locations=set(locations))

    # -- updates ------------------------------------------------------------------

    def observe(self, location: BranchLocation, symbolic: bool) -> None:
        """Record one execution of *location*."""

        self.all_locations.add(location)
        if symbolic:
            self.symbolic.add(location)
            self.concrete.discard(location)
        elif location not in self.symbolic:
            self.concrete.add(location)

    def merge(self, other: "BranchLabels") -> None:
        """Fold another labelling into this one (same upgrade rules)."""

        self.all_locations.update(other.all_locations)
        for location in other.symbolic:
            self.observe(location, symbolic=True)
        for location in other.concrete:
            self.observe(location, symbolic=False)

    # -- queries ---------------------------------------------------------------------

    def label_of(self, location: BranchLocation) -> BranchLabel:
        if location in self.symbolic:
            return BranchLabel.SYMBOLIC
        if location in self.concrete:
            return BranchLabel.CONCRETE
        return BranchLabel.UNVISITED

    @property
    def visited(self) -> Set[BranchLocation]:
        return self.symbolic | self.concrete

    @property
    def unvisited(self) -> Set[BranchLocation]:
        return self.all_locations - self.visited

    def coverage(self) -> float:
        """Fraction of known branch locations visited at least once."""

        if not self.all_locations:
            return 0.0
        return len(self.visited) / len(self.all_locations)

    def counts(self) -> Dict[str, int]:
        return {
            "symbolic": len(self.symbolic),
            "concrete": len(self.concrete),
            "unvisited": len(self.unvisited),
            "total": len(self.all_locations),
        }

    def summary(self) -> str:
        counts = self.counts()
        return (f"{counts['symbolic']} symbolic, {counts['concrete']} concrete, "
                f"{counts['unvisited']} unvisited of {counts['total']} branch locations "
                f"({self.coverage() * 100:.1f}% coverage)")
