"""Execution hooks used by the concolic engine.

A :class:`ConcolicRunTrace` observes one interpreter run: it accumulates the
ordered path constraints produced by symbolic branches, updates the branch
labelling, and keeps per-location statistics (re-using
:class:`~repro.interp.tracer.TraceRecorder`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.concolic.labels import BranchLabels
from repro.interp.tracer import BranchEvent, TraceRecorder
from repro.symbolic.constraints import Constraint, ConstraintSet


class ConcolicRunTrace(TraceRecorder):
    """Trace of one concolic run: statistics plus the path constraint list."""

    def __init__(self, labels: Optional[BranchLabels] = None,
                 keep_events: bool = False) -> None:
        super().__init__(keep_events=keep_events)
        self.labels = labels if labels is not None else BranchLabels()
        self.path_constraints = ConstraintSet()
        # Indices (within path_constraints) already negated in earlier
        # exploration; the engine fills this in before a run so the same
        # alternative is not scheduled twice.
        self.constraint_branches: List[BranchEvent] = []

    def on_branch(self, event: BranchEvent) -> None:
        super().on_branch(event)
        self.labels.observe(event.location, event.symbolic)
        if event.symbolic and event.condition is not None:
            self.path_constraints.add(Constraint(event.condition,
                                                 origin=event.location.node_id,
                                                 description=event.location.short()))
            self.constraint_branches.append(event)

    # -- convenience used by the engine --------------------------------------------

    def constraint_count(self) -> int:
        return len(self.path_constraints)

    def constraint_at(self, index: int) -> Constraint:
        return self.path_constraints[index]

    def prefix_flipped(self, index: int) -> ConstraintSet:
        """Constraints 0..index-1 plus the negation of constraint *index*."""

        flipped = self.path_constraints.prefix(index)
        flipped.add(self.path_constraints[index].negated())
        return flipped
