"""The concolic exploration engine (dynamic analysis).

The engine implements the paper's §2.1: repeatedly execute the program with
concrete inputs, mark input-derived values as symbolic, collect the path
constraints at symbolic branches, and generate new concrete inputs by negating
individual constraints and solving.  Exploration stops when the budget
(iterations or wall-clock) is exhausted or no unexplored alternative remains.

Outputs:

* a :class:`~repro.concolic.labels.BranchLabels` labelling (symbolic /
  concrete / unvisited) used by the instrumentation methods,
* per-location execution statistics for the branch-behaviour figures,
* coverage numbers used to report the LC/HC configurations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.concolic.budget import ConcolicBudget
from repro.concolic.hooks import ConcolicRunTrace
from repro.concolic.labels import BranchLabels
from repro.environment import Environment
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig, ExecutionResult
from repro.interp.tracer import TraceRecorder
from repro.lang.program import Program
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.solver import solve


@dataclass
class ConcolicRun:
    """Summary of one concrete execution performed during exploration."""

    iteration: int
    overrides: Dict[str, int]
    result: ExecutionResult
    constraints: int
    new_locations: int


@dataclass
class DynamicAnalysisResult:
    """Everything the dynamic analysis learned about the program."""

    labels: BranchLabels
    iterations: int = 0
    explored_paths: int = 0
    solver_calls: int = 0
    wall_seconds: float = 0.0
    budget: Optional[ConcolicBudget] = None
    runs: List[ConcolicRun] = field(default_factory=list)
    location_executions: Dict[str, int] = field(default_factory=dict)
    location_symbolic_executions: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        return self.labels.coverage()

    def summary(self) -> str:
        return (f"dynamic analysis [{self.budget.label if self.budget else '-'}]: "
                f"{self.iterations} runs, {self.labels.summary()}")


class ConcolicEngine:
    """Bounded concolic exploration of one program under one environment."""

    def __init__(self, program: Program, environment: Environment,
                 budget: Optional[ConcolicBudget] = None,
                 backend: str = "interp") -> None:
        self.program = program
        self.environment = environment
        self.budget = budget or ConcolicBudget()
        self.backend = backend

    # -- single profiled run (Figures 1 and 3) ----------------------------------------

    def profile_run(self, overrides: Optional[Dict[str, int]] = None) -> TraceRecorder:
        """Run once with symbolic input tracking and return per-location stats."""

        recorder = ConcolicRunTrace(BranchLabels.for_program(self.program.branch_locations))
        self._execute(overrides or {}, recorder)
        return recorder

    # -- exploration ---------------------------------------------------------------------

    def explore(self, initial_overrides: Optional[Dict[str, int]] = None) -> DynamicAnalysisResult:
        """Run the concolic loop until the budget is exhausted."""

        start = time.monotonic()
        labels = BranchLabels.for_program(self.program.branch_locations)
        result = DynamicAnalysisResult(labels=labels, budget=self.budget)

        # Work queue of input overrides to try; seeded with the initial input.
        queue: List[Dict[str, int]] = [dict(initial_overrides or {})]
        seen_signatures: Set[Tuple] = set()
        scheduled_flips: Set[Tuple] = set()

        while queue:
            if result.iterations >= self.budget.max_iterations:
                break
            if time.monotonic() - start > self.budget.max_seconds:
                break
            overrides = queue.pop(0)
            trace = ConcolicRunTrace(labels)
            before_visited = len(labels.visited)
            run_result, binder = self._execute(overrides, trace)
            result.iterations += 1
            self._accumulate_stats(result, trace)
            result.runs.append(ConcolicRun(
                iteration=result.iterations,
                overrides=dict(overrides),
                result=run_result,
                constraints=trace.constraint_count(),
                new_locations=len(labels.visited) - before_visited,
            ))

            # Avoid re-exploring identical paths.
            signature = tuple((c.origin, str(c.expr)) for c in trace.path_constraints)
            if signature in seen_signatures:
                continue
            seen_signatures.add(signature)
            result.explored_paths += 1

            # Schedule negations of each constraint along this path.
            hint = binder.assignment()
            for index in range(trace.constraint_count()):
                if result.iterations + len(queue) >= self.budget.max_iterations * 4:
                    break
                if time.monotonic() - start > self.budget.max_seconds:
                    break
                flip_key = signature[: index + 1]
                flip_key = flip_key[:-1] + ((flip_key[-1][0], "!" + flip_key[-1][1]),)
                if flip_key in scheduled_flips:
                    continue
                scheduled_flips.add(flip_key)
                flipped = trace.prefix_flipped(index)
                solution = solve(flipped, hint=hint)
                result.solver_calls += 1
                if solution.satisfiable and solution.assignment is not None:
                    queue.append(binder.merged_with(solution.assignment))

        result.wall_seconds = time.monotonic() - start
        return result

    # -- helpers -----------------------------------------------------------------------

    def _execute(self, overrides: Dict[str, int],
                 trace: ConcolicRunTrace) -> Tuple[ExecutionResult, InputBinder]:
        kernel = self.environment.make_kernel()
        binder = InputBinder(mode=ExecutionMode.ANALYZE, overrides=dict(overrides))
        config = ExecutionConfig(mode=ExecutionMode.ANALYZE,
                                 max_steps=self.budget.max_steps_per_run,
                                 backend=self.backend)
        executor = create_backend(self.program, kernel=kernel, hooks=trace,
                                  binder=binder, config=config)
        run_result = executor.run(self.environment.argv)
        return run_result, binder

    @staticmethod
    def _accumulate_stats(result: DynamicAnalysisResult, trace: ConcolicRunTrace) -> None:
        for row in trace.location_stats():
            key = row["location"]
            result.location_executions[key] = (
                result.location_executions.get(key, 0) + row["executions"])
            result.location_symbolic_executions[key] = (
                result.location_symbolic_executions.get(key, 0)
                + row["symbolic_executions"])
