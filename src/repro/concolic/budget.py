"""The exploration budget: the paper's main tuning knob for dynamic analysis.

The paper stops symbolic execution of the uServer after one hour (LC, ~20 %
branch coverage) or two hours (HC, ~33 %).  In this reproduction the budget is
expressed in iterations and wall-clock seconds; the LC/HC experiment pairs use
two budgets that differ in the same direction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConcolicBudget:
    """Bounds on one dynamic-analysis exploration."""

    max_iterations: int = 64
    max_seconds: float = 20.0
    max_steps_per_run: int = 2_000_000
    label: str = ""

    @classmethod
    def low_coverage(cls) -> "ConcolicBudget":
        """The paper's LC configuration (shorter exploration)."""

        return cls(max_iterations=8, max_seconds=5.0, label="LC")

    @classmethod
    def high_coverage(cls) -> "ConcolicBudget":
        """The paper's HC configuration (longer exploration)."""

        return cls(max_iterations=48, max_seconds=20.0, label="HC")

    def scaled(self, factor: float) -> "ConcolicBudget":
        """A proportionally larger or smaller budget (used by ablations)."""

        return ConcolicBudget(max_iterations=max(1, int(self.max_iterations * factor)),
                              max_seconds=self.max_seconds * factor,
                              max_steps_per_run=self.max_steps_per_run,
                              label=self.label)
