"""Shared MiniC library snippets interpolated into workload SOURCE strings.

These play the role of uClibc in the paper: library code that is part of the
*guest* program, so its branches are visible to the branch-logging
instrumentation (and therefore reconstructible by the replay search), unlike
host-level builtins whose control flow is invisible to the bitvector.
"""

READ_LINE_SNIPPET = r"""
/* Line input implemented in guest code (the uClibc analogue): the newline
 * scan is a real branch the instrumentation can log, which is what lets the
 * replay search reconstruct line boundaries from the bitvector.  Shadows the
 * host-level read_line builtin in every workload that includes it. */
int read_line(int fd, char *line, int capacity) {
    int stored = 0;
    int n;
    char ch[1];
    while (stored < capacity - 1) {
        n = read(fd, ch, 1);
        if (n <= 0) {
            break;
        }
        line[stored] = ch[0];
        stored = stored + 1;
        if (ch[0] == '\n') {
            break;
        }
    }
    line[stored] = 0;
    if (stored == 0) {
        return 0 - 1;
    }
    return stored;
}
"""
