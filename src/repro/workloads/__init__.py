"""Benchmark workloads: MiniC re-implementations of the paper's programs.

Each module exposes a ``SOURCE`` string (the MiniC program), a set of
:class:`~repro.environment.Environment` scenario constructors, and — where the
paper defines one — the argument combination that triggers the crash bug.

* :mod:`repro.workloads.microbench` — the §5.1 counting-loop microbenchmark,
* :mod:`repro.workloads.fibonacci` — Listing 1,
* :mod:`repro.workloads.coreutils` — mkdir, mknod, mkfifo, paste with
  injected crash bugs in the style of the bugs used by the paper (and KLEE),
* :mod:`repro.workloads.diffutil` — a line-oriented diff,
* :mod:`repro.workloads.userver` — an event-driven HTTP server (select/accept/
  recv loop plus request parser) standing in for the uServer,
* :mod:`repro.workloads.httpgen` — the httperf-like request generator.
"""

from repro.workloads import (  # noqa: F401
    coreutils,
    diffutil,
    fibonacci,
    httpgen,
    microbench,
    userver,
)

__all__ = [
    "coreutils",
    "diffutil",
    "fibonacci",
    "httpgen",
    "microbench",
    "userver",
]
