"""Benchmark workloads: MiniC re-implementations of the paper's programs.

Each module exposes a ``SOURCE`` string (the MiniC program), a set of
:class:`~repro.environment.Environment` scenario constructors, and — where the
paper defines one — the argument combination that triggers the crash bug.

* :mod:`repro.workloads.microbench` — the §5.1 counting-loop microbenchmark,
* :mod:`repro.workloads.fibonacci` — Listing 1,
* :mod:`repro.workloads.coreutils` — mkdir, mknod, mkfifo, paste with
  injected crash bugs in the style of the bugs used by the paper (and KLEE),
* :mod:`repro.workloads.diffutil` — a line-oriented diff,
* :mod:`repro.workloads.userver` — an event-driven HTTP server (select/accept/
  recv loop plus request parser) standing in for the uServer,
* :mod:`repro.workloads.httpgen` — the httperf-like request generator.
"""

from typing import List, Tuple

from repro.workloads import (  # noqa: F401
    coreutils,
    diffutil,
    fibonacci,
    httpgen,
    microbench,
    userver,
)

__all__ = [
    "all_cases",
    "coreutils",
    "diffutil",
    "fibonacci",
    "httpgen",
    "library_functions_for",
    "microbench",
    "userver",
    "workload_registry",
]


def library_functions_for(source: str) -> frozenset:
    """The library-function set (the paper's uClibc analogue) for a source.

    The single source of truth for "which workload treats which functions as
    library code": both the replay-search benchmark and the trace tool build
    their pipelines through this, so instrumentation plans for a workload are
    identical no matter which entry point constructed them.  Matching is by
    source *content*, not object identity, so variants that re-render the
    same program still resolve.
    """

    if source == userver.SOURCE:
        return frozenset(userver.LIBRARY_FUNCTIONS)
    return frozenset()


def all_cases() -> List[Tuple[str, str, "object"]]:
    """Every workload paired with its scenarios: ``(name, source, environment)``.

    One canonical enumeration used by the backend parity tests and the
    backend benchmarks, covering each program in this package with at least
    one benign and (where the workload defines one) one crashing scenario.
    """

    cases = [
        ("fibonacci-a", fibonacci.SOURCE, fibonacci.scenario_a()),
        ("fibonacci-b", fibonacci.SOURCE, fibonacci.scenario_b()),
        ("fibonacci-neither", fibonacci.SOURCE, fibonacci.scenario_neither()),
        ("microbench", microbench.SOURCE, microbench.small_scenario()),
        ("diff-exp1", diffutil.SOURCE, diffutil.experiment_1()),
        ("diff-exp2", diffutil.SOURCE, diffutil.experiment_2()),
        ("diff-identical", diffutil.SOURCE, diffutil.identical_scenario()),
        ("userver-exp1", userver.SOURCE, userver.experiment(1)),
        ("userver-exp2", userver.SOURCE, userver.experiment(2)),
    ]
    for name, module in coreutils.ALL_PROGRAMS.items():
        cases.append((f"{name}-bug", module.SOURCE, module.bug_scenario()))
        cases.append((f"{name}-benign", module.SOURCE, module.benign_scenario()))
    return cases


def workload_registry() -> dict:
    """``name -> (source, environment, library_functions)`` for every case.

    The canonical lookup table behind every workload-by-name entry point —
    the trace tool, the disassembler and the reproduction service's default
    program resolver all share it, so a workload name means the same program
    (and the same library-function set) everywhere.
    """

    return {name: (source, environment, library_functions_for(source))
            for name, source, environment in all_cases()}
