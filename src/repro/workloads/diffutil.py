"""The ``diff`` workload: line-oriented comparison of two input files.

Diff is the paper's input-intensive benchmark: nearly every branch in the
comparison loops depends on file contents, so the dynamic analysis only covers
a small fraction of them within its budget and the *dynamic* configuration
cannot reproduce executions in time (Table 6).

Following the paper's methodology for this experiment, the crash being
reproduced is injected externally once the comparison finishes (`crash()` at
the end of ``main`` models the delivered signal); reproducing it therefore
means reconstructing the full comparison path over both files.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.environment import Environment, simple_environment
from repro.workloads.minic_lib import READ_LINE_SNIPPET

_TEMPLATE = r"""
/* diff: compare two text files line by line with a one-line resync
 * heuristic for insertions and deletions. */

char BUF_A[4096];
char BUF_B[4096];
int START_A[128];
int START_B[128];
int LEN_A[128];
int LEN_B[128];
int COUNT_A;
int COUNT_B;

@READ_LINE@
int read_file_lines(char *path, char *buf, int *starts, int *lens) {
    char line[256];
    int fd = open(path, 0);
    int count = 0;
    int offset = 0;
    int n;
    int i;
    if (fd < 0) {
        printf("diff: cannot open %s\n", path);
        exit(2);
    }
    n = read_line(fd, line, 256);
    while (n > 0) {
        if (count >= 128) {
            break;
        }
        starts[count] = offset;
        i = 0;
        while (line[i] != 0 && line[i] != '\n') {
            if (offset >= 4095) {
                break;
            }
            buf[offset] = line[i];
            offset = offset + 1;
            i = i + 1;
        }
        lens[count] = i;
        buf[offset] = 0;
        offset = offset + 1;
        count = count + 1;
        n = read_line(fd, line, 256);
    }
    close(fd);
    return count;
}

int lines_equal(char *buf_a, int start_a, int len_a,
                char *buf_b, int start_b, int len_b) {
    int i = 0;
    if (len_a != len_b) {
        return 0;
    }
    while (i < len_a) {
        if (buf_a[start_a + i] != buf_b[start_b + i]) {
            return 0;
        }
        i = i + 1;
    }
    return 1;
}

void print_line(char *prefix, char *buf, int start, int len) {
    int i = 0;
    printf("%s", prefix);
    while (i < len) {
        putchar(buf[start + i]);
        i = i + 1;
    }
    putchar('\n');
}

int compare_files() {
    int ia = 0;
    int ib = 0;
    int differences = 0;
    while (ia < COUNT_A && ib < COUNT_B) {
        if (lines_equal(BUF_A, START_A[ia], LEN_A[ia],
                        BUF_B, START_B[ib], LEN_B[ib]) == 1) {
            ia = ia + 1;
            ib = ib + 1;
            continue;
        }
        differences = differences + 1;
        /* One-line resync heuristic: detect a single inserted or deleted
         * line before falling back to reporting a changed line. */
        if (ib + 1 < COUNT_B &&
            lines_equal(BUF_A, START_A[ia], LEN_A[ia],
                        BUF_B, START_B[ib + 1], LEN_B[ib + 1]) == 1) {
            print_line("> ", BUF_B, START_B[ib], LEN_B[ib]);
            ib = ib + 1;
            continue;
        }
        if (ia + 1 < COUNT_A &&
            lines_equal(BUF_A, START_A[ia + 1], LEN_A[ia + 1],
                        BUF_B, START_B[ib], LEN_B[ib]) == 1) {
            print_line("< ", BUF_A, START_A[ia], LEN_A[ia]);
            ia = ia + 1;
            continue;
        }
        print_line("< ", BUF_A, START_A[ia], LEN_A[ia]);
        print_line("> ", BUF_B, START_B[ib], LEN_B[ib]);
        ia = ia + 1;
        ib = ib + 1;
    }
    while (ia < COUNT_A) {
        print_line("< ", BUF_A, START_A[ia], LEN_A[ia]);
        differences = differences + 1;
        ia = ia + 1;
    }
    while (ib < COUNT_B) {
        print_line("> ", BUF_B, START_B[ib], LEN_B[ib]);
        differences = differences + 1;
        ib = ib + 1;
    }
    return differences;
}

int main(int argc, char **argv) {
    int differences;
    if (argc < 3) {
        printf("usage: diff FILE1 FILE2\n");
        return 2;
    }
    COUNT_A = read_file_lines(argv[1], BUF_A, START_A, LEN_A);
    COUNT_B = read_file_lines(argv[2], BUF_B, START_B, LEN_B);
    differences = compare_files();
    if (differences == 0) {
        printf("files are identical\n");
    } else {
        printf("%d difference(s)\n", differences);
    }
    /* Externally induced fault after the comparison finished (section 5.4
     * methodology): the bug report's crash site is here, and reproducing it
     * requires reconstructing the comparison path over both inputs. */
    crash("simulated fault delivered after diff completed");
    return 0;
}
"""

SOURCE = _TEMPLATE.replace("@READ_LINE@", READ_LINE_SNIPPET)

EXP1_FILES: Dict[str, bytes] = {
    "/old.txt": b"alpha\nbravo\ncharlie\ndelta\n",
    "/new.txt": b"alpha\nbravo\ncharly\ndelta\n",
}

EXP2_FILES: Dict[str, bytes] = {
    "/old.txt": (b"one\ntwo\nthree\nfour\nfive\nsix\nseven\n"),
    "/new.txt": (b"one\ntwo\n2.5\nthree\nfour\nFIVE\nsix\n"),
}


def experiment_1() -> Environment:
    """Exp. 1: one changed line between two four-line files."""

    return simple_environment(["diff", "/old.txt", "/new.txt"],
                              files=EXP1_FILES, name="diff-exp1")


def experiment_2() -> Environment:
    """Exp. 2: an insertion, a change and a deletion across seven lines."""

    return simple_environment(["diff", "/old.txt", "/new.txt"],
                              files=EXP2_FILES, name="diff-exp2")


def experiment_big(lines: int = 10, changed=(2, 5, 7),
                   name: str = "") -> Environment:
    """A grown comparison: *lines* per file, a case flip on each *changed* line.

    The paper's diff experiments compare full-size text files; this scenario
    scales our inputs toward that (longer lines, more of them, several changed
    lines) now that the multi-core replay search can afford it.  Used by
    ``benchmarks/bench_replay_search.py`` and the process-pool determinism
    tests.
    """

    changed = frozenset(changed)
    old = b"".join(b"line-%03d common text here\n" % i for i in range(lines))
    new = b"".join(
        (b"line-%03d common teXt here\n" if i in changed
         else b"line-%03d common text here\n") % i
        for i in range(lines))
    return custom_scenario(old, new, name=name or f"diff-big{lines}")


def identical_scenario() -> Environment:
    """Two identical files: no differences reported."""

    files = {"/old.txt": b"same\nsame\n", "/new.txt": b"same\nsame\n"}
    return simple_environment(["diff", "/old.txt", "/new.txt"],
                              files=files, name="diff-identical")


def custom_scenario(old: bytes, new: bytes, name: str = "diff-custom") -> Environment:
    """Compare two arbitrary byte strings (used by property tests)."""

    files = {"/old.txt": old, "/new.txt": new}
    return simple_environment(["diff", "/old.txt", "/new.txt"],
                              files=files, name=name)
