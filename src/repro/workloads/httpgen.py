"""HTTP request generation: the httperf analogue.

The paper drives the uServer with httperf and with five hand-crafted input
scenarios that exercise different areas of the HTTP parser (different methods,
URI lengths, cookies, Content-Length).  This module builds the equivalent
request byte strings and the scripted workloads handed to the simulated
network model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class RequestSpec:
    """One HTTP request to synthesise."""

    method: str = "GET"
    uri: str = "/index.html"
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def render(self) -> bytes:
        """Serialise the request into wire bytes."""

        lines = [f"{self.method} {self.uri} {self.version}"]
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body


def get_request(uri: str = "/index.html", cookie: Optional[str] = None,
                host: str = "localhost") -> bytes:
    headers = {"Host": host}
    if cookie is not None:
        headers["Cookie"] = cookie
    return RequestSpec(method="GET", uri=uri, headers=headers).render()


def head_request(uri: str = "/index.html") -> bytes:
    return RequestSpec(method="HEAD", uri=uri, headers={"Host": "localhost"}).render()


def post_request(uri: str = "/submit", body: bytes = b"k=v",
                 cookie: Optional[str] = None) -> bytes:
    headers: Dict[str, str] = {"Host": "localhost"}
    if cookie is not None:
        headers["Cookie"] = cookie
    return RequestSpec(method="POST", uri=uri, headers=headers, body=body).render()


def bad_request(text: str = "BOGUS /x\r\n\r\n") -> bytes:
    return text.encode("ascii")


def uniform_workload(count: int, uri: str = "/index.html") -> List[bytes]:
    """``count`` identical GET requests — the httperf saturation workload used
    for the overhead measurements (Figure 4)."""

    return [get_request(uri) for _ in range(count)]


def mixed_workload(count: int) -> List[bytes]:
    """A rotating mix of methods and URIs used by branch-behaviour profiling."""

    requests: List[bytes] = []
    uris = ["/", "/index.html", "/data/item", "/missing"]
    for index in range(count):
        uri = uris[index % len(uris)]
        if index % 5 == 3:
            requests.append(post_request("/submit", body=b"n=%d" % index))
        elif index % 5 == 4:
            requests.append(head_request(uri))
        else:
            requests.append(get_request(uri))
    return requests


# ---------------------------------------------------------------------------
# The five Table 3 input scenarios
# ---------------------------------------------------------------------------


def scenario_requests(number: int) -> List[bytes]:
    """Request mix for uServer experiment ``number`` (1-5).

    The scenarios escalate in size and in the parser areas they touch, in the
    spirit of the paper's description (5-400 byte requests, different methods
    and header sets).
    """

    if number == 1:
        return [get_request("/")]
    if number == 2:
        return [get_request("/index.html"), get_request("/missing")]
    if number == 3:
        return [get_request("/index.html", cookie="sid=42"),
                head_request("/status")]
    if number == 4:
        return [post_request("/submit", body=b"name=alice&score=10"),
                get_request("/data/item")]
    if number == 5:
        return [get_request("/a/rather/long/path/to/a/resource.html"),
                post_request("/upload", body=b"payload=0123456789",
                             cookie="token=abcdef"),
                bad_request()]
    raise ValueError(f"unknown uServer scenario {number}")


ALL_SCENARIOS: Sequence[int] = (1, 2, 3, 4, 5)
