"""Listing 1 from the paper: the fibonacci option program.

The program has many branches (inside ``fibonacci``), but only the two option
checks in ``main`` depend on input; recording those two bits fully determines
the execution.  This is the second §5.1 microbenchmark.
"""

from __future__ import annotations

from repro.environment import Environment, simple_environment

SOURCE = r"""
/* Listing 1: compute a fibonacci number selected by a single option char. */

int fibonacci(int n) {
    if (n <= 1) {
        return n;
    }
    return fibonacci(n - 1) + fibonacci(n - 2);
}

int main(int argc, char **argv) {
    char option = read_option();
    int result = 0;
    if (option == 'a') {
        result = fibonacci(14);
    } else if (option == 'b') {
        result = fibonacci(16);
    }
    printf("Result: %d\n", result);
    return 0;
}
"""


def scenario(option: str = "b") -> Environment:
    """Run with the given option character on stdin."""

    return simple_environment(["fib"], stdin=option.encode("utf-8"),
                              name=f"fibonacci-{option}")


def scenario_a() -> Environment:
    return scenario("a")


def scenario_b() -> Environment:
    return scenario("b")


def scenario_neither() -> Environment:
    """An option that selects neither branch (result stays 0)."""

    return scenario("x")
