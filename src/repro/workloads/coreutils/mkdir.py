"""The ``mkdir`` workload: option parsing plus directory creation.

Bug: ``mkdir -m`` with no following mode operand dereferences the NULL entry
``argv[argc]`` inside ``parse_mode``.
"""

from __future__ import annotations

from typing import List

from repro.environment import Environment, simple_environment

SOURCE = r"""
/* mkdir: create directories, with -m MODE, -p and -v options. */

int parse_mode(char *text) {
    int mode = 0;
    int i = 0;
    /* BUG SITE: when text is NULL (missing -m operand) this dereference
     * crashes, the analogue of the segfault in the real utility. */
    while (text[i] != 0) {
        char c = text[i];
        if (c < '0') {
            return -1;
        }
        if (c > '7') {
            return -1;
        }
        mode = mode * 8 + (c - '0');
        i = i + 1;
    }
    return mode;
}

int create_parents(char *path, int mode) {
    char prefix[128];
    int i = 0;
    int status = 0;
    while (path[i] != 0) {
        if (path[i] == '/' && i > 0) {
            prefix[i] = 0;
            mkdir(prefix, mode);
        }
        prefix[i] = path[i];
        i = i + 1;
    }
    prefix[i] = 0;
    return status;
}

int make_directory(char *path, int mode, int parents, int verbose) {
    int result;
    if (parents == 1) {
        create_parents(path, mode);
    }
    result = mkdir(path, mode);
    if (result != 0) {
        if (parents == 1 && file_exists(path)) {
            return 0;
        }
        printf("mkdir: cannot create directory %s\n", path);
        return 1;
    }
    if (verbose == 1) {
        printf("mkdir: created directory %s\n", path);
    }
    return 0;
}

int main(int argc, char **argv) {
    int mode = 493;
    int parents = 0;
    int verbose = 0;
    int status = 0;
    int i = 1;
    if (argc < 2) {
        printf("mkdir: missing operand\n");
        return 1;
    }
    while (i < argc) {
        char *arg = argv[i];
        if (arg[0] == '-' && arg[1] != 0) {
            if (arg[1] == 'm') {
                mode = parse_mode(argv[i + 1]);
                if (mode < 0) {
                    printf("mkdir: invalid mode\n");
                    return 1;
                }
                i = i + 2;
                continue;
            }
            if (arg[1] == 'p') {
                parents = 1;
                i = i + 1;
                continue;
            }
            if (arg[1] == 'v') {
                verbose = 1;
                i = i + 1;
                continue;
            }
            printf("mkdir: invalid option %s\n", arg);
            return 2;
        }
        if (make_directory(arg, mode, parents, verbose) != 0) {
            status = 1;
        }
        i = i + 1;
    }
    return status;
}
"""


def bug_scenario() -> Environment:
    """``mkdir -p dir -m`` — the mode operand is missing, so parsing crashes."""

    return simple_environment(["mkdir", "-p", "somedir", "-m"], name="mkdir-bug")


def benign_scenario(paths: List[str] = ("alpha", "beta/gamma")) -> Environment:
    """A normal invocation creating a couple of directories."""

    argv = ["mkdir", "-p", "-v"] + list(paths)
    return simple_environment(argv, name="mkdir-ok")


def mode_scenario() -> Environment:
    """Exercises the mode-parsing path without triggering the bug."""

    return simple_environment(["mkdir", "-m", "0750", "secure"], name="mkdir-mode")
