"""The ``paste`` workload: merge lines of files with a delimiter list.

Bug: the delimiter list is unescaped without checking that a character follows
a backslash, so ``paste -d\\ <file>`` (a list consisting of a single
backslash, exactly the paper's example command) walks past the end of the
argument string.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.environment import Environment, simple_environment
from repro.workloads.minic_lib import READ_LINE_SNIPPET

_TEMPLATE = r"""
/* paste: merge corresponding lines of input files with delimiters. */

char DELIMS[16];
int DELIM_COUNT;

@READ_LINE@

int collect_delimiters(char *list) {
    int i = 0;
    int count = 0;
    /* BUG SITE: when the list ends with a backslash the escape handler skips
     * two characters, and this loop keeps reading past the end of the
     * argument string. */
    while (list[i] != 0) {
        if (count >= 15) {
            return count;
        }
        if (list[i] == '\\') {
            char next = list[i + 1];
            if (next == 'n') {
                DELIMS[count] = '\n';
            } else if (next == 't') {
                DELIMS[count] = '\t';
            } else if (next == '0') {
                DELIMS[count] = 0;
            } else {
                DELIMS[count] = next;
            }
            i = i + 2;
        } else {
            DELIMS[count] = list[i];
            i = i + 1;
        }
        count = count + 1;
    }
    return count;
}

int paste_file(char *path, int serial) {
    char line[256];
    int fd = open(path, 0);
    int column = 0;
    int n;
    if (fd < 0) {
        printf("paste: cannot open %s\n", path);
        return 1;
    }
    n = read_line(fd, line, 256);
    while (n > 0) {
        int len = strlen(line);
        if (len > 0 && line[len - 1] == '\n') {
            line[len - 1] = 0;
        }
        if (column > 0) {
            char delim = DELIMS[(column - 1) % DELIM_COUNT];
            if (delim != 0) {
                putchar(delim);
            }
        }
        printf("%s", line);
        column = column + 1;
        n = read_line(fd, line, 256);
    }
    putchar('\n');
    close(fd);
    return 0;
}

int main(int argc, char **argv) {
    int i = 1;
    int serial = 0;
    int status = 0;
    int file_count = 0;
    DELIMS[0] = '\t';
    DELIM_COUNT = 1;
    while (i < argc) {
        char *arg = argv[i];
        if (arg[0] == '-' && arg[1] == 'd') {
            if (arg[2] != 0) {
                DELIM_COUNT = collect_delimiters(arg + 2);
            } else {
                DELIM_COUNT = collect_delimiters(argv[i + 1]);
                i = i + 1;
            }
            if (DELIM_COUNT <= 0) {
                printf("paste: empty delimiter list\n");
                return 1;
            }
            i = i + 1;
            continue;
        }
        if (arg[0] == '-' && arg[1] == 's') {
            serial = 1;
            i = i + 1;
            continue;
        }
        if (paste_file(arg, serial) != 0) {
            status = 1;
        }
        file_count = file_count + 1;
        i = i + 1;
    }
    if (file_count == 0) {
        printf("paste: missing file operand\n");
        return 1;
    }
    return status;
}
"""

SOURCE = _TEMPLATE.replace("@READ_LINE@", READ_LINE_SNIPPET)


def bug_scenario() -> Environment:
    """The paper's command: ``paste -d\\ abcdefghijklmnopqrstuvwxyz``."""

    return simple_environment(["paste", "-d\\", "abcdefghijklmnopqrstuvwxyz"],
                              name="paste-bug")


def big_bug_scenario(lines: int = 24) -> Environment:
    """The trailing-backslash crash *after* pasting a grown input file.

    Arguments are processed left to right, so ``/big.txt`` is pasted (every
    line read through ``read_line``, populating the bitvector and the syscall
    log) before the ``-d\\`` delimiter list triggers the overrun.  Replay must
    reconstruct the whole file walk to reach the crash, which makes the
    search cost scale with the file size — the coreutils analogue of the
    paper's full-size inputs.
    """

    content = b"".join(b"field-%02d\tvalue-%02d\n" % (i, i) for i in range(lines))
    return simple_environment(["paste", "/big.txt", "-d\\"],
                              files={"/big.txt": content},
                              name=f"paste-big{lines}")


def benign_scenario(files: Optional[Dict[str, bytes]] = None) -> Environment:
    """Paste two small files with an explicit delimiter list."""

    files = files or {
        "/a.txt": b"one\ntwo\nthree\n",
        "/b.txt": b"1\n2\n3\n",
    }
    return simple_environment(["paste", "-d,:", "/a.txt", "/b.txt"],
                              files=files, name="paste-ok")


def serial_scenario() -> Environment:
    return simple_environment(["paste", "-s", "/a.txt"],
                              files={"/a.txt": b"x\ny\nz\n"}, name="paste-serial")
