"""The ``mknod`` workload: create a special file of a given type.

Bug: creating a block or character device requires major/minor operands;
``mknod name b`` without them dereferences the NULL ``argv[argc]`` entry while
parsing the major number.
"""

from __future__ import annotations

from repro.environment import Environment, simple_environment

SOURCE = r"""
/* mknod: create a fifo, character device or block device node. */

int parse_number(char *text) {
    int value = 0;
    int i = 0;
    /* BUG SITE: text is NULL when the major/minor operand is missing. */
    while (text[i] != 0) {
        if (text[i] < '0') {
            return -1;
        }
        if (text[i] > '9') {
            return -1;
        }
        value = value * 10 + (text[i] - '0');
        i = i + 1;
    }
    return value;
}

int parse_mode_arg(char *text) {
    int mode = 0;
    int i = 0;
    while (text[i] != 0) {
        if (text[i] < '0') {
            return -1;
        }
        if (text[i] > '7') {
            return -1;
        }
        mode = mode * 8 + (text[i] - '0');
        i = i + 1;
    }
    return mode;
}

int main(int argc, char **argv) {
    int mode = 420;
    int i = 1;
    char *name = 0;
    char type = 0;
    int major = 0;
    int minor = 0;
    if (argc < 3) {
        printf("mknod: missing operand\n");
        return 1;
    }
    while (i < argc) {
        char *arg = argv[i];
        if (arg[0] == '-' && arg[1] == 'm') {
            mode = parse_mode_arg(argv[i + 1]);
            if (mode < 0) {
                printf("mknod: invalid mode\n");
                return 1;
            }
            i = i + 2;
            continue;
        }
        if (name == 0) {
            name = arg;
            i = i + 1;
            continue;
        }
        type = arg[0];
        if (type == 'p') {
            i = i + 1;
            continue;
        }
        if (type == 'b' || type == 'c') {
            major = parse_number(argv[i + 1]);
            minor = parse_number(argv[i + 2]);
            if (major < 0 || minor < 0) {
                printf("mknod: invalid device number\n");
                return 1;
            }
            i = i + 3;
            continue;
        }
        printf("mknod: invalid type %c\n", type);
        return 1;
    }
    if (name == 0 || type == 0) {
        printf("mknod: missing operand\n");
        return 1;
    }
    if (mknod(name, mode) != 0) {
        printf("mknod: cannot create %s\n", name);
        return 1;
    }
    return 0;
}
"""


def bug_scenario() -> Environment:
    """``mknod device b`` — major/minor missing, parsing crashes."""

    return simple_environment(["mknod", "device", "b"], name="mknod-bug")


def benign_scenario() -> Environment:
    """A fifo node needs no device numbers."""

    return simple_environment(["mknod", "-m", "0644", "pipe0", "p"], name="mknod-ok")


def device_scenario() -> Environment:
    """A full block-device invocation (exercises the number parser)."""

    return simple_environment(["mknod", "disk0", "b", "8", "1"], name="mknod-device")
