"""MiniC re-implementations of the four coreutils programs used in §5.2.

Each module ships the program source, the bug-triggering scenario (a specific
argument combination, as in the paper and in the KLEE-reported coreutils bugs)
and at least one benign scenario.  The bugs are:

* ``mkdir -m`` with the mode operand missing — null-pointer dereference while
  parsing the mode string,
* ``mknod name b`` with the major/minor operands missing — null-pointer
  dereference while parsing device numbers,
* ``mkfifo -m 07777 name`` — a five-character mode string overflows a
  four-byte octal buffer,
* ``paste -d\\ <file>`` — a delimiter list ending in a backslash makes the
  unescaping loop read past the end of the argument (the paper's §5.2
  example command).
"""

from repro.workloads.coreutils import mkdir, mkfifo, mknod, paste  # noqa: F401

ALL_PROGRAMS = {
    "mkdir": mkdir,
    "mknod": mknod,
    "mkfifo": mkfifo,
    "paste": paste,
}

__all__ = ["ALL_PROGRAMS", "mkdir", "mkfifo", "mknod", "paste"]
