"""The ``mkfifo`` workload: create named pipes.

Bug: the octal mode string is copied into a fixed four-byte buffer without a
bounds check, so ``mkfifo -m 07777 name`` (five digits) overflows it.
"""

from __future__ import annotations

from repro.environment import Environment, simple_environment

SOURCE = r"""
/* mkfifo: create named pipes with an optional -m MODE. */

int octal_value(char *digits) {
    char copy[4];
    int i = 0;
    int mode = 0;
    /* BUG SITE: no bounds check while copying the mode digits; a mode string
     * with more than four characters overflows the buffer. */
    while (digits[i] != 0) {
        copy[i] = digits[i];
        i = i + 1;
    }
    i = 0;
    while (i < 4 && copy[i] != 0) {
        if (copy[i] < '0' || copy[i] > '7') {
            return -1;
        }
        mode = mode * 8 + (copy[i] - '0');
        i = i + 1;
    }
    return mode;
}

int create_fifo(char *name, int mode, int verbose) {
    if (mkfifo(name, mode) != 0) {
        printf("mkfifo: cannot create fifo %s\n", name);
        return 1;
    }
    if (verbose == 1) {
        printf("mkfifo: created fifo %s\n", name);
    }
    return 0;
}

int main(int argc, char **argv) {
    int mode = 420;
    int verbose = 0;
    int status = 0;
    int i = 1;
    if (argc < 2) {
        printf("mkfifo: missing operand\n");
        return 1;
    }
    while (i < argc) {
        char *arg = argv[i];
        if (arg[0] == '-' && arg[1] == 'm' && i + 1 < argc) {
            mode = octal_value(argv[i + 1]);
            if (mode < 0) {
                printf("mkfifo: invalid mode\n");
                return 1;
            }
            i = i + 2;
            continue;
        }
        if (arg[0] == '-' && arg[1] == 'v') {
            verbose = 1;
            i = i + 1;
            continue;
        }
        if (create_fifo(arg, mode, verbose) != 0) {
            status = 1;
        }
        i = i + 1;
    }
    return status;
}
"""


def bug_scenario() -> Environment:
    """``mkfifo -m 07777 pipe`` — the five-digit mode overflows the buffer."""

    return simple_environment(["mkfifo", "-m", "07777", "pipe"], name="mkfifo-bug")


def benign_scenario() -> Environment:
    return simple_environment(["mkfifo", "-v", "-m", "644", "pipe0"], name="mkfifo-ok")


def multi_scenario() -> Environment:
    """Several operands in one invocation."""

    return simple_environment(["mkfifo", "a", "b", "c"], name="mkfifo-multi")
