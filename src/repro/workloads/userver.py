"""The uServer workload: an event-driven HTTP server in MiniC.

The server mirrors the structure the paper relies on:

* an event loop built on ``net_select``/``accept``/``recv`` (the syscalls whose
  results the selective syscall logging records),
* an input-heavy HTTP parser whose branches are symbolic,
* a set of ``lib_*`` string helpers standing in for uClibc: they contain the
  majority of executed branches but only a minority of the symbolic ones, and
  the static analysis skips them (treating all their branches as symbolic),
  exactly like the paper's handling of the library code.

The crash being reproduced is delivered externally once the scripted client
workload has been served (the paper sends the uServer a SEGFAULT signal after
the input); reproducing it therefore means reconstructing request bytes that
follow the recorded parsing path.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.environment import Environment, simple_environment
from repro.workloads import httpgen

#: Functions treated as library (uClibc stand-in) code.
LIBRARY_FUNCTIONS = frozenset({
    "lib_strlen",
    "lib_prefix_eq",
    "lib_find_char",
    "lib_parse_int",
    "lib_to_upper",
    "lib_copy_range",
    "lib_str_eq",
    "lib_zero_buffer",
    "lib_checksum",
})

SOURCE = r"""
/* ------------------------------------------------------------------ */
/* Library code (uClibc stand-in): generic string helpers.             */
/* ------------------------------------------------------------------ */

int lib_strlen(char *s) {
    int n = 0;
    while (s[n] != 0) {
        n = n + 1;
    }
    return n;
}

int lib_prefix_eq(char *buf, int offset, int limit, char *prefix) {
    int i = 0;
    while (prefix[i] != 0) {
        if (offset + i >= limit) {
            return 0;
        }
        if (buf[offset + i] != prefix[i]) {
            return 0;
        }
        i = i + 1;
    }
    return 1;
}

int lib_find_char(char *buf, int start, int limit, char target) {
    int i = start;
    while (i < limit) {
        if (buf[i] == target) {
            return i;
        }
        i = i + 1;
    }
    return -1;
}

int lib_parse_int(char *buf, int start, int limit) {
    int value = 0;
    int i = start;
    int seen = 0;
    while (i < limit) {
        char c = buf[i];
        if (c < '0' || c > '9') {
            break;
        }
        value = value * 10 + (c - '0');
        seen = 1;
        i = i + 1;
    }
    if (seen == 0) {
        return -1;
    }
    return value;
}

int lib_to_upper(char c) {
    if (c >= 'a' && c <= 'z') {
        return c - 32;
    }
    return c;
}

int lib_copy_range(char *dst, char *src, int start, int end, int max) {
    int i = 0;
    while (start + i < end && i < max - 1) {
        dst[i] = src[start + i];
        i = i + 1;
    }
    dst[i] = 0;
    return i;
}

int lib_str_eq(char *a, char *b) {
    int i = 0;
    while (a[i] != 0 && b[i] != 0) {
        if (a[i] != b[i]) {
            return 0;
        }
        i = i + 1;
    }
    if (a[i] != b[i]) {
        return 0;
    }
    return 1;
}

int lib_zero_buffer(char *buf, int size) {
    int i = 0;
    while (i < size) {
        buf[i] = 0;
        i = i + 1;
    }
    return size;
}

int lib_checksum(char *s) {
    int sum = 0;
    int i = 0;
    while (s[i] != 0) {
        if (sum > 65535) {
            sum = sum - 65536;
        }
        sum = sum + s[i];
        i = i + 1;
    }
    return sum;
}

/* ------------------------------------------------------------------ */
/* Application code: the HTTP server.                                  */
/* ------------------------------------------------------------------ */

int REQUESTS_SERVED;
int ERRORS_SENT;
int LOG_CHECKSUM;

/* Per-connection bookkeeping that does not depend on request contents: this
 * is where most branch executions happen (the uClibc effect in Figure 3). */
int prepare_connection(char *buf) {
    lib_zero_buffer(buf, 600);
    LOG_CHECKSUM = LOG_CHECKSUM + lib_checksum("connection accepted on worker");
    if (LOG_CHECKSUM > 1000000) {
        LOG_CHECKSUM = 0;
    }
    return 0;
}

int parse_method(char *buf, int len) {
    if (lib_prefix_eq(buf, 0, len, "GET ") == 1) {
        return 1;
    }
    if (lib_prefix_eq(buf, 0, len, "POST ") == 1) {
        return 2;
    }
    if (lib_prefix_eq(buf, 0, len, "HEAD ") == 1) {
        return 3;
    }
    return 0;
}

int parse_uri(char *buf, int len, char *uri) {
    int first_space = lib_find_char(buf, 0, len, ' ');
    int second_space;
    int start;
    int copied;
    if (first_space < 0) {
        return -1;
    }
    start = first_space + 1;
    second_space = lib_find_char(buf, start, len, ' ');
    if (second_space < 0) {
        return -1;
    }
    if (buf[start] != '/') {
        return -1;
    }
    copied = lib_copy_range(uri, buf, start, second_space, 120);
    return copied;
}

int check_version(char *buf, int len) {
    int first_space = lib_find_char(buf, 0, len, ' ');
    int second_space;
    int v;
    if (first_space < 0) {
        return 0;
    }
    second_space = lib_find_char(buf, first_space + 1, len, ' ');
    if (second_space < 0) {
        return 0;
    }
    v = second_space + 1;
    if (lib_prefix_eq(buf, v, len, "HTTP/1.") == 0) {
        return 0;
    }
    if (v + 7 >= len) {
        return 0;
    }
    if (buf[v + 7] != '0' && buf[v + 7] != '1') {
        return 0;
    }
    return 1;
}

int find_header_value(char *buf, int len, char *name, char *value, int max) {
    int pos = lib_find_char(buf, 0, len, '\n');
    while (pos >= 0 && pos + 1 < len) {
        int line_start = pos + 1;
        if (lib_prefix_eq(buf, line_start, len, name) == 1) {
            int name_len = lib_strlen(name);
            int value_start = line_start + name_len;
            int line_end;
            if (buf[value_start] == ' ') {
                value_start = value_start + 1;
            }
            line_end = lib_find_char(buf, value_start, len, '\r');
            if (line_end < 0) {
                line_end = len;
            }
            return lib_copy_range(value, buf, value_start, line_end, max);
        }
        pos = lib_find_char(buf, line_start, len, '\n');
    }
    return -1;
}

int parse_content_length(char *buf, int len) {
    char value[16];
    int got = find_header_value(buf, len, "Content-Length:", value, 16);
    if (got <= 0) {
        return -1;
    }
    return lib_parse_int(value, 0, got);
}

int has_cookie(char *buf, int len) {
    char value[64];
    int got = find_header_value(buf, len, "Cookie:", value, 64);
    if (got > 0) {
        return 1;
    }
    return 0;
}

int uri_is_unsafe(char *uri, int len) {
    int i = 0;
    while (i + 1 < len) {
        if (uri[i] == '.' && uri[i + 1] == '.') {
            return 1;
        }
        i = i + 1;
    }
    return 0;
}

int send_error(int conn, int code) {
    ERRORS_SENT = ERRORS_SENT + 1;
    if (code == 400) {
        send_str(conn, "HTTP/1.1 400 Bad Request\r\n\r\n");
        return 0;
    }
    if (code == 404) {
        send_str(conn, "HTTP/1.1 404 Not Found\r\n\r\n");
        return 0;
    }
    if (code == 411) {
        send_str(conn, "HTTP/1.1 411 Length Required\r\n\r\n");
        return 0;
    }
    send_str(conn, "HTTP/1.1 505 HTTP Version Not Supported\r\n\r\n");
    return 0;
}

int send_page(int conn, char *uri, int method, int with_cookie) {
    send_str(conn, "HTTP/1.1 200 OK\r\n");
    if (with_cookie == 1) {
        send_str(conn, "Set-Cookie: seen=1\r\n");
    }
    send_str(conn, "Content-Type: text/html\r\n\r\n");
    if (method != 3) {
        send_str(conn, "<html><body>");
        send_str(conn, uri);
        send_str(conn, "</body></html>");
    }
    return 0;
}

int handle_request(int conn, char *buf, int n) {
    char uri[128];
    int method;
    int uri_len;
    int clen;
    int cookie;
    method = parse_method(buf, n);
    if (method == 0) {
        send_error(conn, 400);
        return 1;
    }
    uri_len = parse_uri(buf, n, uri);
    if (uri_len <= 0) {
        send_error(conn, 400);
        return 1;
    }
    if (uri_is_unsafe(uri, uri_len) == 1) {
        send_error(conn, 400);
        return 1;
    }
    if (check_version(buf, n) == 0) {
        send_error(conn, 505);
        return 1;
    }
    cookie = has_cookie(buf, n);
    if (method == 2) {
        clen = parse_content_length(buf, n);
        if (clen < 0) {
            send_error(conn, 411);
            return 1;
        }
    }
    if (lib_str_eq(uri, "/missing") == 1) {
        send_error(conn, 404);
        return 1;
    }
    send_page(conn, uri, method, cookie);
    REQUESTS_SERVED = REQUESTS_SERVED + 1;
    return 0;
}

int main(int argc, char **argv) {
    char buf[600];
    int listenfd;
    int idle = 0;
    REQUESTS_SERVED = 0;
    ERRORS_SENT = 0;
    listenfd = net_listen();
    while (workload_done() == 0) {
        int ready = net_select();
        if (ready < 0) {
            idle = idle + 1;
            if (idle > 64) {
                break;
            }
            continue;
        }
        idle = 0;
        if (ready == listenfd) {
            accept(listenfd);
            continue;
        }
        {
            int n;
            prepare_connection(buf);
            n = recv(ready, buf, 512);
            if (n <= 0) {
                close(ready);
                continue;
            }
            handle_request(ready, buf, n);
            close(ready);
        }
    }
    printf("served=%d errors=%d\n", REQUESTS_SERVED, ERRORS_SENT);
    /* Externally induced crash after the client workload completes (the
     * paper's methodology sends the server a SEGFAULT signal after the
     * input has been delivered). */
    crash("simulated SIGSEGV delivered after request workload");
    return 0;
}
"""


def environment_for(requests: Sequence[bytes], name: str,
                    chunk_limit: int = 0) -> Environment:
    """Build a server environment driven by the given scripted requests."""

    return simple_environment(["userver"], requests=list(requests), name=name,
                              read_chunk_limit=chunk_limit)


def experiment(number: int) -> Environment:
    """One of the five Table 3 input scenarios."""

    return environment_for(httpgen.scenario_requests(number),
                           name=f"userver-exp{number}")


def saturation_workload(request_count: int = 20) -> Environment:
    """The httperf-style uniform GET workload used for overhead measurements."""

    return environment_for(httpgen.uniform_workload(request_count),
                           name=f"userver-load{request_count}")


def profiling_workload(request_count: int = 12) -> Environment:
    """The mixed workload used for branch-behaviour profiling (Figure 3)."""

    return environment_for(httpgen.mixed_workload(request_count),
                           name=f"userver-mix{request_count}")


def all_experiments() -> List[Environment]:
    return [experiment(number) for number in httpgen.ALL_SCENARIOS]
