"""The §5.1 microbenchmarks.

The first microbenchmark is a tight loop incrementing a counter; its loop
condition is a single branch executed once per iteration, so the *all branches*
configuration pays the full per-branch logging cost on every iteration.  The
paper measures a 107 % CPU overhead for it; the interpreter-based overhead
model reproduces the same order of magnitude (the exact figure depends on the
per-iteration base cost).
"""

from __future__ import annotations

from repro.environment import Environment, simple_environment

SOURCE = r"""
/* Counting-loop microbenchmark (paper section 5.1).
 * The loop bound comes from argv so the loop branch is symbolic. */

int main(int argc, char **argv) {
    int limit = 0;
    int count = 0;
    int i;
    if (argc > 1) {
        limit = atoi(argv[1]);
    }
    for (i = 0; i < limit; i = i + 1) {
        count = count + 1;
    }
    printf("count=%d\n", count);
    return 0;
}
"""

DEFAULT_ITERATIONS = 20_000
"""Loop count used by the benchmarks (scaled down from the paper's 10^9 so the
interpreted run completes in about a second)."""


def scenario(iterations: int = DEFAULT_ITERATIONS) -> Environment:
    """The counting-loop scenario with the given iteration count."""

    return simple_environment(["countloop", str(iterations)],
                              name=f"countloop-{iterations}")


def small_scenario() -> Environment:
    """A small instance used by unit tests."""

    return scenario(200)
