"""Fleet-level adaptive instrumentation planning (closes the paper's loop).

The paper treats the instrumentation plan as fixed per deployment; this
package revises it from what the fleet actually reported.  Three pieces:

* :mod:`repro.planner.ledger` — versioned plans per program, persisted next
  to the service spool, routed by the existing plan-fingerprint check so
  mixed-fingerprint fleets keep working.
* :mod:`repro.planner.observations` — per-branch cost/benefit evidence and
  per-region search cost, accumulated from reproduction reports and
  developer-site re-profiles.
* :mod:`repro.planner.replanner` — the seeded deterministic policy that
  drops logging from branches that never helped a reproduction and spends
  the freed budget on branches that would prune expensive searches.
"""

from .ledger import (LEDGER_FILE, PlanLedger, PlanVersion,
                     plan_fingerprint_digest, plan_version_of, replan_method)
from .observations import BranchEvidence, FleetObservations, ProgramObservations
from .replanner import PlanRevision, ReplanPolicy, Replanner

__all__ = [
    "LEDGER_FILE",
    "BranchEvidence",
    "FleetObservations",
    "PlanLedger",
    "PlanRevision",
    "PlanVersion",
    "ProgramObservations",
    "ReplanPolicy",
    "Replanner",
    "plan_fingerprint_digest",
    "plan_version_of",
    "replan_method",
]
