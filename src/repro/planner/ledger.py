"""The plan ledger: versioned instrumentation plans, persisted per fleet.

The paper's deployment assumes every user machine runs the *same*
instrumented binary.  Once the service starts revising plans
(:mod:`repro.planner.replanner`), that stops being true for the fleet as a
whole — but it stays true *per plan version*, and the existing
matched-binaries fingerprint check is exactly the routing mechanism a
mixed-fingerprint fleet needs: every trace carries its plan, the plan's
fingerprint identifies the generation it was recorded under, and the ledger
maps that fingerprint back to the registered version so old clients keep
uploading (and reproducing) against the plan they actually ran.

:class:`PlanLedger` is that registry.  Per program it keeps a monotonic
sequence of :class:`PlanVersion` entries — version number, parent link,
fingerprint digest, the full branch sets, and (for replanned versions) the
machine-readable :class:`~repro.planner.replanner.PlanRevision` diff that
produced it.  The ledger persists as one JSON file next to the service's
spool (``plan_ledger.json``), written canonically (sorted keys, sorted
location rows) so the same history always serializes to the same bytes —
the determinism contract the replanning tests assert.

Replanned plans carry their version in the plan's ``method`` string
(``replan/v3``): the trace format already serializes arbitrary method
strings, so the version survives the user/developer round trip without a
format change, and :func:`plan_version_of` recovers it anywhere a trace is
inspected (inbox clustering, ``trace_tool.py info``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.instrument.plan import InstrumentationPlan

__all__ = [
    "LEDGER_FILE",
    "PlanLedger",
    "PlanVersion",
    "plan_fingerprint_digest",
    "plan_version_of",
    "replan_method",
]

LEDGER_FILE = "plan_ledger.json"
_LEDGER_VERSION = 1

#: Method-string prefix of replanned plans; the suffix is the version number.
REPLAN_METHOD_PREFIX = "replan/v"


def replan_method(version: int) -> str:
    """The ``method`` string a replanned plan of *version* carries."""

    return f"{REPLAN_METHOD_PREFIX}{version}"


def plan_version_of(method: object) -> Optional[int]:
    """The ledger version encoded in a replanned plan's method, else None.

    Base plans (``all branches``, ``dynamic``, ...) carry no version in
    their method string — they are generation 1 by convention, but this
    returns ``None`` so callers can distinguish "explicitly versioned" from
    "deployed base".
    """

    name = method if isinstance(method, str) else getattr(method, "value", "")
    if not isinstance(name, str) or not name.startswith(REPLAN_METHOD_PREFIX):
        return None
    suffix = name[len(REPLAN_METHOD_PREFIX):]
    return int(suffix) if suffix.isdigit() else None


def plan_fingerprint_digest(plan_or_fingerprint) -> str:
    """Short stable hex digest of a plan's instrumented-branch fingerprint.

    The fingerprint tuple itself is the identity the replay engine checks;
    this digest is its JSON-friendly spelling, used wherever the identity
    must live inside a ledger, an ``inbox.json`` entry or a wire payload.
    """

    fingerprint = plan_or_fingerprint
    if hasattr(fingerprint, "fingerprint"):
        fingerprint = fingerprint.fingerprint()
    payload = repr(tuple(fingerprint)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _location_rows(rows) -> List[Tuple[str, int, int, str]]:
    return sorted((str(f), int(n), int(l), str(k)) for f, n, l, k in rows)


@dataclass
class PlanVersion:
    """One registered plan generation of one program."""

    program: str
    version: int
    #: Version this one was replanned from; None for a deployed base plan.
    parent: Optional[int]
    method: str
    fingerprint: str
    log_syscalls: bool
    instrumented: List[Tuple[str, int, int, str]]
    all_locations: List[Tuple[str, int, int, str]]
    #: The machine-readable diff that produced this version (replans only).
    revision: Optional[Dict[str, object]] = None

    @classmethod
    def from_plan(cls, program: str, version: int, parent: Optional[int],
                  plan: InstrumentationPlan,
                  revision: Optional[Dict[str, object]] = None
                  ) -> "PlanVersion":
        rows = plan.location_tuples()
        return cls(program=program, version=version, parent=parent,
                   method=(plan.method if isinstance(plan.method, str)
                           else getattr(plan.method, "value",
                                        str(plan.method))),
                   fingerprint=plan_fingerprint_digest(plan),
                   log_syscalls=plan.log_syscalls,
                   instrumented=_location_rows(rows["instrumented"]),
                   all_locations=_location_rows(rows["all_locations"]),
                   revision=revision)

    def plan(self) -> InstrumentationPlan:
        """Rebuild the :class:`InstrumentationPlan` this version registered."""

        return InstrumentationPlan.from_location_tuples(
            self.method, self.instrumented, self.all_locations,
            log_syscalls=self.log_syscalls)

    def to_json(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "version": self.version,
            "parent": self.parent,
            "method": self.method,
            "fingerprint": self.fingerprint,
            "log_syscalls": self.log_syscalls,
            "instrumented": [list(row) for row in self.instrumented],
            "all_locations": [list(row) for row in self.all_locations],
            "revision": self.revision,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "PlanVersion":
        return cls(program=payload["program"],
                   version=int(payload["version"]),
                   parent=payload.get("parent"),
                   method=payload["method"],
                   fingerprint=payload["fingerprint"],
                   log_syscalls=bool(payload["log_syscalls"]),
                   instrumented=_location_rows(payload["instrumented"]),
                   all_locations=_location_rows(payload["all_locations"]),
                   revision=payload.get("revision"))


class PlanLedger:
    """Per-program plan versions, persisted next to the service's spool."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: program name -> versions in ascending version order.
        self.programs: Dict[str, List[PlanVersion]] = {}
        self._load()

    @classmethod
    def load(cls, root: str) -> "PlanLedger":
        """The ledger of a service root (``<root>/plan_ledger.json``)."""

        return cls(os.path.join(root, LEDGER_FILE))

    # -- registration -----------------------------------------------------------

    def register_base(self, program: str,
                      plan: InstrumentationPlan) -> PlanVersion:
        """Register a deployed base plan; idempotent by fingerprint.

        If a version with this plan's fingerprint is already registered the
        existing entry is returned unchanged, so feeding the same fleet
        history through twice cannot grow the ledger.
        """

        existing = self.by_fingerprint(program, plan_fingerprint_digest(plan))
        if existing is not None:
            return existing
        entry = PlanVersion.from_plan(program, self._next_version(program),
                                      parent=None, plan=plan)
        self.programs.setdefault(program, []).append(entry)
        return entry

    def register(self, program: str, plan: InstrumentationPlan,
                 revision: Dict[str, object]) -> PlanVersion:
        """Register a replanned version (parent = the current latest)."""

        latest = self.latest(program)
        entry = PlanVersion.from_plan(
            program, self._next_version(program),
            parent=latest.version if latest else None,
            plan=plan, revision=dict(revision))
        self.programs.setdefault(program, []).append(entry)
        return entry

    def _next_version(self, program: str) -> int:
        versions = self.programs.get(program)
        return versions[-1].version + 1 if versions else 1

    # -- lookups ----------------------------------------------------------------

    def latest(self, program: str) -> Optional[PlanVersion]:
        versions = self.programs.get(program)
        return versions[-1] if versions else None

    def version(self, program: str, number: int) -> Optional[PlanVersion]:
        for entry in self.programs.get(program, ()):
            if entry.version == number:
                return entry
        return None

    def by_fingerprint(self, program: str,
                       digest: str) -> Optional[PlanVersion]:
        """Route a trace's plan fingerprint to its registered version.

        This is the mixed-fleet compatibility mechanism: an old client's
        trace resolves to the (old) version it was recorded under, and the
        service verifies it against that plan instead of rejecting it.
        """

        for entry in self.programs.get(program, ()):
            if entry.fingerprint == digest:
                return entry
        return None

    def describe(self) -> Dict[str, object]:
        return {program: [{"version": e.version, "parent": e.parent,
                           "method": e.method,
                           "fingerprint": e.fingerprint,
                           "instrumented": len(e.instrumented)}
                          for e in versions]
                for program, versions in sorted(self.programs.items())}

    # -- persistence ------------------------------------------------------------

    def save(self) -> str:
        """Write the ledger atomically; canonical bytes for a given state."""

        payload = {
            "version": _LEDGER_VERSION,
            "programs": {program: [entry.to_json() for entry in versions]
                         for program, versions in sorted(self.programs.items())},
        }
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        return self.path

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable plan ledger {self.path}: {exc}")
        if payload.get("version") != _LEDGER_VERSION:
            raise ValueError(
                f"plan ledger version {payload.get('version')} unsupported "
                f"(this build reads version {_LEDGER_VERSION})")
        self.programs = {
            program: [PlanVersion.from_json(entry) for entry in versions]
            for program, versions in payload.get("programs", {}).items()}
