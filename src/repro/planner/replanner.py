"""The replanner: seeded, deterministic plan revision from fleet evidence.

The policy implements the paper's trade directly.  Dropping logging from a
branch the profiles show as *concrete-only* is correctness-preserving: the
replay hook moves from "logged, concrete" to "unlogged, concrete" (cases
3 → 4 of the four-case policy), the bit simply stops being recorded and the
search tree is unchanged.  Dropping a *symbolic* branch would instead push
search cost up (case 2 → 1), so the policy never does it.  Conversely,
adding logging to a symbolic branch prunes search (case 1 → 2), which is
where freed budget goes — concentrated on functions whose searches were
observed to be expensive.

Determinism contract: given the same :class:`FleetObservations` and the
same :class:`ReplanPolicy` (including its seed), :meth:`Replanner.propose`
returns byte-identical revisions.  All candidate orderings are total
(cost-descending, then location identity) and the seed only permutes
*equal-cost ties*, so the seed is meaningful without making the outcome
run-order dependent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.instrument.overhead import OverheadModel
from repro.instrument.plan import InstrumentationPlan
from repro.lang.cfg import BranchLocation

from .ledger import replan_method
from .observations import BranchEvidence, FleetObservations, ProgramObservations

__all__ = ["PlanRevision", "ReplanPolicy", "Replanner"]


@dataclass
class ReplanPolicy:
    """Tunable knobs of the revision policy; all defaults are deterministic."""

    seed: int = 0
    #: Fraction of the droppable pool removed per generation.
    max_drop_fraction: float = 0.5
    #: Always drop at least this many when the pool is non-empty.
    min_drop: int = 1
    #: Cap on symbolic branches newly instrumented per generation.
    max_add: int = 2


def _row(location: BranchLocation) -> List[object]:
    return [location.function, location.node_id, location.line, location.kind]


@dataclass
class PlanRevision:
    """Machine-readable diff between a plan version and its parent."""

    program: str
    version: int
    parent: int
    seed: int
    dropped: List[List[object]] = field(default_factory=list)
    added: List[List[object]] = field(default_factory=list)
    #: Predicted change in per-run instrumentation work units.
    predicted_units_delta: int = 0
    #: Predicted change in recording overhead, in percentage points.
    predicted_overhead_delta_percent: float = 0.0
    #: Concrete-only branches still instrumented after this revision.
    droppable_remaining: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "version": self.version,
            "parent": self.parent,
            "seed": self.seed,
            "dropped": self.dropped,
            "added": self.added,
            "predicted_units_delta": self.predicted_units_delta,
            "predicted_overhead_delta_percent": round(
                self.predicted_overhead_delta_percent, 3),
            "droppable_remaining": self.droppable_remaining,
        }


class Replanner:
    """Derives the next plan version of a program from fleet evidence."""

    def __init__(self, policy: Optional[ReplanPolicy] = None,
                 overhead_model: Optional[OverheadModel] = None) -> None:
        self.policy = policy or ReplanPolicy()
        self.overhead_model = overhead_model or OverheadModel()

    # -- candidate selection ----------------------------------------------------

    def _droppable(self, plan: InstrumentationPlan,
                   obs: ProgramObservations) -> List[BranchEvidence]:
        """Instrumented branches that paid and never pruned.

        Requires positive observed cost (``logged_executions``) so a drop
        always strictly reduces measured overhead, and zero symbolic
        executions so the drop cannot change any search tree.
        """

        out = []
        for record in obs.sorted_evidence():
            if (plan.is_instrumented(record.location)
                    and record.logged_executions > 0
                    and record.symbolic_executions == 0):
                out.append(record)
        return out

    def _addable(self, plan: InstrumentationPlan,
                 obs: ProgramObservations) -> List[BranchEvidence]:
        """Unlogged symbolic branches in functions with expensive searches."""

        expensive = set(obs.expensive_functions())
        out = []
        for record in obs.sorted_evidence():
            if (not plan.is_instrumented(record.location)
                    and record.location in plan.all_locations
                    and record.symbolic_executions > 0
                    and record.location.function in expensive):
                out.append(record)
        return out

    @staticmethod
    def _cost_ordered(records: List[BranchEvidence], cost,
                      rng: random.Random) -> List[BranchEvidence]:
        """Cost-descending order; the seed permutes only equal-cost ties."""

        groups: Dict[int, List[BranchEvidence]] = {}
        for record in records:
            groups.setdefault(cost(record), []).append(record)
        ordered: List[BranchEvidence] = []
        for value in sorted(groups, reverse=True):
            tie = sorted(groups[value],
                         key=lambda r: (r.location.function,
                                        r.location.node_id))
            rng.shuffle(tie)
            ordered.extend(tie)
        return ordered

    # -- the revision -----------------------------------------------------------

    def propose(self, program: str, plan: InstrumentationPlan,
                observations: FleetObservations, version: int,
                parent: int) -> Optional[Tuple[InstrumentationPlan,
                                               PlanRevision]]:
        """The next plan version, or None once the policy has converged."""

        obs = observations.programs.get(program)
        if obs is None:
            return None
        droppable = self._droppable(plan, obs)
        if not droppable:
            return None

        rng = random.Random((self.policy.seed, program, version).__repr__())
        ordered = self._cost_ordered(
            droppable, lambda r: r.logged_executions, rng)
        count = max(self.policy.min_drop,
                    int(self.policy.max_drop_fraction * len(ordered)))
        dropped = ordered[:min(count, len(ordered))]
        dropped_units = sum(r.last_executions for r in dropped) \
            * self.overhead_model.branch_instructions

        added: List[BranchEvidence] = []
        added_units = 0
        for record in self._cost_ordered(
                self._addable(plan, obs),
                lambda r: r.symbolic_executions, rng):
            if len(added) >= self.policy.max_add:
                break
            units = record.last_executions \
                * self.overhead_model.branch_instructions
            # Additions spend freed budget, never more: the revision's
            # predicted cost must stay strictly below the parent's.
            if added_units + units >= dropped_units:
                continue
            added.append(record)
            added_units += units

        dropped_set = {r.location for r in dropped}
        instrumented = (set(plan.instrumented) - dropped_set) \
            | {r.location for r in added}
        revised = InstrumentationPlan.from_sets(
            method=replan_method(version),
            instrumented=instrumented,
            all_locations=plan.all_locations,
            log_syscalls=plan.log_syscalls)

        units_delta = added_units - dropped_units
        base = obs.base_units
        revision = PlanRevision(
            program=program, version=version, parent=parent,
            seed=self.policy.seed,
            dropped=sorted(_row(r.location) for r in dropped),
            added=sorted(_row(r.location) for r in added),
            predicted_units_delta=units_delta,
            predicted_overhead_delta_percent=(
                100.0 * units_delta / base if base else 0.0),
            droppable_remaining=len(droppable) - len(dropped))
        return revised, revision
