"""Fleet history distilled into per-branch and per-region evidence.

The replanner needs three signals, all of which already flow through the
service:

* **What did logging cost?**  Per-branch execution counts from re-profiling
  reproduced runs at the developer site (``ConcolicEngine.profile_run`` with
  the report's ``found_input``), weighted by the overhead model's per-branch
  charge; plus the measured per-plan recording overhead carried in traces.
* **What did logging buy?**  Which branches the profile shows as
  *symbolic* — input-dependent, exactly the ones whose logged outcomes
  prune the replay search (four-case hook policy, case 2).  A branch that
  executed under instrumentation but was never symbolic in any reproduced
  run paid full freight and pruned nothing.
* **Where was search expensive?**  Per-report run counts and solver time
  from :class:`~repro.service.service.ReproductionReport`, attributed to
  the crash site's function so the replanner can concentrate budget there.

:class:`FleetObservations` accumulates those signals across any number of
clusters and programs; it is a pure accumulator with deterministic
iteration order, so feeding the same history twice (or in two processes)
yields identical replanning decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.instrument.plan import InstrumentationPlan
from repro.lang.cfg import BranchLocation

__all__ = ["BranchEvidence", "FleetObservations", "ProgramObservations"]

BranchKey = Tuple[str, int]


@dataclass
class BranchEvidence:
    """Accumulated evidence about one static branch of one program."""

    location: BranchLocation
    #: Executions observed while the branch was in the instrumented set.
    logged_executions: int = 0
    #: Executions whose outcome depended on input (search-relevant).
    symbolic_executions: int = 0
    #: Executions with a fixed outcome (logging them buys nothing).
    concrete_executions: int = 0
    #: Executions in the most recent profile — the prediction basis.
    last_executions: int = 0
    #: How many reproduced runs this branch went symbolic in.
    helped_reproductions: int = 0

    def describe(self) -> Dict[str, object]:
        return {"location": self.location.short(),
                "logged_executions": self.logged_executions,
                "symbolic_executions": self.symbolic_executions,
                "concrete_executions": self.concrete_executions,
                "helped_reproductions": self.helped_reproductions}


@dataclass
class ProgramObservations:
    """Everything the fleet taught us about one program."""

    program: str
    branches: Dict[BranchKey, BranchEvidence] = field(default_factory=dict)
    #: Replay-search runs attributed to the crash site's function.
    search_runs_by_function: Dict[str, int] = field(default_factory=dict)
    reports: int = 0
    reproduced: int = 0
    search_runs: int = 0
    solver_seconds: float = 0.0
    #: Base (uninstrumented) work units of the latest observed recording.
    base_units: int = 0

    def evidence(self, location: BranchLocation) -> BranchEvidence:
        key = (location.function, location.node_id)
        record = self.branches.get(key)
        if record is None:
            record = self.branches[key] = BranchEvidence(location=location)
        return record

    def sorted_evidence(self) -> List[BranchEvidence]:
        return [self.branches[key] for key in sorted(self.branches)]

    def expensive_functions(self) -> List[str]:
        """Functions whose searches cost more than the per-function mean."""

        costs = self.search_runs_by_function
        if not costs:
            return []
        mean = sum(costs.values()) / len(costs)
        return sorted(name for name, runs in costs.items() if runs > mean)


class FleetObservations:
    """Accumulates profiles, reports and overhead across the fleet."""

    def __init__(self) -> None:
        self.programs: Dict[str, ProgramObservations] = {}

    def for_program(self, program: str) -> ProgramObservations:
        record = self.programs.get(program)
        if record is None:
            record = self.programs[program] = ProgramObservations(program)
        return record

    def observe_profile(self, program: str, plan: InstrumentationPlan,
                        recorder) -> None:
        """Fold one developer-site re-profile of a reproduced run.

        *recorder* is the :class:`~repro.concolic.hooks.ConcolicRunTrace`
        of ``ConcolicEngine.profile_run`` driven by the report's
        ``found_input`` — i.e. the branch behaviour of the run the fleet
        actually crashed on, observed with full visibility.
        """

        obs = self.for_program(program)
        symbolic = recorder.symbolic_executions
        for location in sorted(recorder.executions):
            executions = recorder.executions[location]
            symbolic_count = symbolic.get(location, 0)
            record = obs.evidence(location)
            if plan.is_instrumented(location):
                record.logged_executions += executions
            record.symbolic_executions += symbolic_count
            record.concrete_executions += executions - symbolic_count
            record.last_executions = executions
            if symbolic_count:
                record.helped_reproductions += 1

    def observe_report(self, program: str, report,
                       crash_site: Optional[str] = None) -> None:
        """Fold one :class:`ReproductionReport` (the search-cost signal)."""

        obs = self.for_program(program)
        obs.reports += 1
        if report.reproduced:
            obs.reproduced += 1
        obs.search_runs += report.runs
        obs.solver_seconds += float(
            (report.pending_stats or {}).get("solver_seconds", 0.0)
            if isinstance(report.pending_stats, dict) else 0.0)
        site = crash_site if crash_site is not None else report.crash_site
        if isinstance(site, (tuple, list)):
            function = str(site[0]) if site else ""
        else:
            function = (site or "").split(":", 1)[0]
        if function:
            obs.search_runs_by_function[function] = (
                obs.search_runs_by_function.get(function, 0) + report.runs)

    def observe_recording(self, program: str, base_units: int) -> None:
        """Record the base work units of the latest observed recording."""

        if base_units > 0:
            self.for_program(program).base_units = base_units

    def describe(self) -> Dict[str, object]:
        return {
            program: {
                "reports": obs.reports,
                "reproduced": obs.reproduced,
                "search_runs": obs.search_runs,
                "branches": [record.describe()
                             for record in obs.sorted_evidence()],
                "expensive_functions": obs.expensive_functions(),
            }
            for program, obs in sorted(self.programs.items())
        }
