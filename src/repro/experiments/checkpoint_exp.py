"""Checkpoint/resume overhead for the supervised replay-search fleet.

Measures what fault tolerance costs on the search path, in three runs of
the same recorded crash:

* **plain** — the uninterrupted search, no checkpointing (the PR 4 path);
* **checkpointed** — the same search snapshotting at *every* commit
  boundary (the most aggressive cadence the supervisor ever uses, so the
  measured overhead is a ceiling for production cadences);
* **interrupted** — the search preempted at its middle commit, then
  resumed from the snapshot to completion (the crash-recovery round trip:
  snapshot write + engine rebuild + state restore).

All three must explore **byte-identical** search trees — the rows assert
the fingerprints on the way out, so the artifact can never record the
overhead of a search that silently diverged.  Results land under the
``checkpoint`` key of ``BENCH_replay.json``.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict

from repro.instrument.methods import InstrumentationMethod
from repro.replay import CheckpointPolicy, ReplayEngine
from repro.replay.budget import ReplayBudget
from repro.service import ReproConfig, outcome_fingerprint, workload_pipeline
from repro.trace import trace_from_recording

__all__ = ["checkpoint_rows"]


def _config() -> ReproConfig:
    config = ReproConfig()
    config.execution.backend = "vm"
    config.replay.budget = ReplayBudget(max_runs=3000, max_seconds=120)
    return config


def _engine(pipeline, trace) -> ReplayEngine:
    return ReplayEngine.from_trace(pipeline.program, trace,
                                   budget=ReplayBudget(max_runs=3000,
                                                       max_seconds=120))


def checkpoint_rows(smoke: bool = True, repeats: int = 2
                    ) -> Dict[str, object]:
    """The ``checkpoint`` artifact entry (one scenario, three timed runs)."""

    workload = "mkdir-bug" if smoke else "diff-exp1"
    config = _config()
    pipeline, environment = workload_pipeline(workload, config=config)
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    trace = trace_from_recording(recording, scaffold=True,
                                 program_name=workload)

    plain_seconds = []
    ckpt_seconds = []
    resume_seconds = []
    baseline = None
    writes = commits = 0
    with tempfile.TemporaryDirectory() as scratch:
        for attempt in range(max(1, repeats)):
            began = time.perf_counter()
            outcome = _engine(pipeline, trace).reproduce()
            plain_seconds.append(time.perf_counter() - began)
            assert outcome.reproduced, f"{workload}: baseline did not reproduce"
            want = outcome_fingerprint(outcome)
            assert baseline is None or want == baseline
            baseline = want
            commits = outcome.committed_items

            path = os.path.join(scratch, f"every.{attempt}.ckpt")
            engine = _engine(pipeline, trace)
            engine.attach_checkpointing(CheckpointPolicy(path=path,
                                                         every_commits=1))
            began = time.perf_counter()
            checkpointed = engine.reproduce()
            ckpt_seconds.append(time.perf_counter() - began)
            assert outcome_fingerprint(checkpointed) == baseline, (
                f"{workload}: checkpointing diverged the search")
            writes = checkpointed.committed_items

            # The crash-recovery round trip: preempt at the middle commit,
            # rebuild from the snapshot, run to completion.  Timed end to
            # end — both halves plus the snapshot write and reload.
            path = os.path.join(scratch, f"mid.{attempt}.ckpt")
            engine = _engine(pipeline, trace)
            engine.attach_checkpointing(CheckpointPolicy(
                path=path, preempt_after_commits=max(1, commits // 2)))
            began = time.perf_counter()
            paused = engine.reproduce()
            resumed = ReplayEngine.from_checkpoint(path).reproduce()
            resume_seconds.append(time.perf_counter() - began)
            assert paused.preempted and resumed.resumed
            assert outcome_fingerprint(resumed) == baseline, (
                f"{workload}: resume diverged the search")

    plain = min(plain_seconds)
    return {
        "scenario": workload,
        "commits": commits,
        "checkpoint_writes": writes,
        "wall_seconds_plain": round(plain, 6),
        "wall_seconds_checkpointed": round(min(ckpt_seconds), 6),
        "wall_seconds_interrupted": round(min(resume_seconds), 6),
        "checkpoint_overhead_ratio": round(min(ckpt_seconds) / plain, 4),
        "resume_overhead_ratio": round(min(resume_seconds) / plain, 4),
        "identical_tree": True,  # asserted above, recorded for the artifact
    }
