"""Diff experiments: Figure 5, Table 6 and Table 7 (§5.4)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.concolic.budget import ConcolicBudget
from repro.core.config import PipelineConfig
from repro.core.pipeline import Pipeline
from repro.core.results import AnalysisResult
from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.workloads import diffutil

#: Diff is input-intensive, so (like the paper) the dynamic analysis only
#: reaches low coverage within its budget.
ANALYSIS_BUDGET = ConcolicBudget(max_iterations=4, max_seconds=8, label="LC")
DEFAULT_REPLAY_BUDGET = ReplayBudget(max_runs=500, max_seconds=30)


def make_setup():
    """Pipeline + analysis shared by the diff experiments.

    The analysis runs on a generic pair of files, not on the experiment inputs.
    """

    config = PipelineConfig(concolic_budget=ANALYSIS_BUDGET,
                            replay_budget=DEFAULT_REPLAY_BUDGET)
    pipeline = Pipeline.from_source(diffutil.SOURCE, name="diff", config=config)
    # The analysis workload compares two (near) empty files, so the bounded
    # exploration never reaches the per-character comparison loops — the
    # low-coverage situation the paper reports for diff.
    analysis_env = diffutil.custom_scenario(b"\n", b"\n", name="diff-analysis")
    analysis = pipeline.analyze(analysis_env, ANALYSIS_BUDGET)
    return pipeline, analysis


def figure5_rows(pipeline: Optional[Pipeline] = None,
                 analysis: Optional[AnalysisResult] = None) -> List[Dict[str, object]]:
    """Figure 5: CPU time of the four configurations, normalised to none."""

    if pipeline is None or analysis is None:
        pipeline, analysis = make_setup()
    env = diffutil.experiment_2()
    rows = []
    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, env)
        rows.append({
            "configuration": method.value,
            "cpu_time_percent": round(recording.overhead.cpu_time_percent, 1),
            "instrumented_branch_locations": plan.instrumented_count(),
        })
    return rows


def table6_rows(pipeline: Optional[Pipeline] = None,
                analysis: Optional[AnalysisResult] = None,
                replay_budget: Optional[ReplayBudget] = None) -> List[Dict[str, object]]:
    """Table 6: time needed to reproduce the two diff executions."""

    if pipeline is None or analysis is None:
        pipeline, analysis = make_setup()
    replay_budget = replay_budget or DEFAULT_REPLAY_BUDGET
    environments = {"exp1": diffutil.experiment_1(), "exp2": diffutil.experiment_2()}
    rows = []
    for method in InstrumentationMethod.paper_methods():
        row: Dict[str, object] = {"configuration": method.value}
        for label, env in environments.items():
            plan = pipeline.make_plan(method, analysis)
            recording = pipeline.record(plan, env)
            report = pipeline.reproduce(recording, budget=replay_budget, scenario=label)
            row[label] = (f"{report.replay_seconds:.1f}s"
                          if report.reproduced else "TIMEOUT")
        rows.append(row)
    return rows


def table7_rows(pipeline: Optional[Pipeline] = None,
                analysis: Optional[AnalysisResult] = None) -> List[Dict[str, object]]:
    """Table 7: symbolic branch locations/executions logged vs not logged."""

    if pipeline is None or analysis is None:
        pipeline, analysis = make_setup()
    environments = {"exp1": diffutil.experiment_1(), "exp2": diffutil.experiment_2()}
    rows = []
    for label, env in environments.items():
        for method in InstrumentationMethod.paper_methods():
            plan = pipeline.make_plan(method, analysis)
            stats = pipeline.branch_logging_stats(plan, env, scenario=label)
            rows.append({
                "experiment": label,
                "configuration": method.value,
                "logged (locations/executions)":
                    f"{stats.logged_locations} / {stats.logged_executions}",
                "not logged (locations/executions)":
                    f"{stats.not_logged_locations} / {stats.not_logged_executions}",
            })
    return rows
