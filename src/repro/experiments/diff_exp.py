"""Diff experiments: Figure 5, Table 6 and Table 7 (§5.4)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.concolic.budget import ConcolicBudget
from repro.core.pipeline import Pipeline
from repro.core.results import AnalysisResult
from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.service.config import (
    InstrumentationSection,
    ReplaySection,
    ReproConfig,
)
from repro.workloads import diffutil

#: Diff is input-intensive, so (like the paper) the dynamic analysis only
#: reaches low coverage within its budget.
ANALYSIS_BUDGET = ConcolicBudget(max_iterations=4, max_seconds=8, label="LC")
DEFAULT_REPLAY_BUDGET = ReplayBudget(max_runs=500, max_seconds=30)


def make_setup():
    """Pipeline + analysis shared by the diff experiments.

    The analysis runs on a generic pair of files, not on the experiment inputs.
    """

    config = ReproConfig(
        instrumentation=InstrumentationSection(concolic_budget=ANALYSIS_BUDGET),
        replay=ReplaySection(budget=DEFAULT_REPLAY_BUDGET))
    pipeline = Pipeline.from_source(diffutil.SOURCE, name="diff", config=config)
    # The analysis workload compares two (near) empty files, so the bounded
    # exploration never reaches the per-character comparison loops — the
    # low-coverage situation the paper reports for diff.
    analysis_env = diffutil.custom_scenario(b"\n", b"\n", name="diff-analysis")
    analysis = pipeline.analyze(analysis_env, ANALYSIS_BUDGET)
    return pipeline, analysis


def figure5_rows(pipeline: Optional[Pipeline] = None,
                 analysis: Optional[AnalysisResult] = None) -> List[Dict[str, object]]:
    """Figure 5: CPU time of the four configurations, normalised to none."""

    if pipeline is None or analysis is None:
        pipeline, analysis = make_setup()
    env = diffutil.experiment_2()
    rows = []
    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, env)
        rows.append({
            "configuration": method.value,
            "cpu_time_percent": round(recording.overhead.cpu_time_percent, 1),
            "instrumented_branch_locations": plan.instrumented_count(),
        })
    return rows


def _path_equivalent(pipeline: Pipeline, recording, outcome) -> bool:
    """Out-of-band check: does the reconstructed input replay the same path?

    The engine itself can only compare against what the bug report contains;
    a sparsely instrumented plan (diff's *dynamic* configuration) may leave
    the log too weak to discriminate, so its "reproduction" can follow a
    different path through the unlogged comparison loops.  Like the paper's
    authors, the experiment verifies reproductions against the original run
    (same step count and branch executions), which the developer in the
    deployed scenario cannot do — a failed check is the paper's ∞ entry.
    """

    if not outcome.reproduced:
        return False
    from repro.interp.backend import create_backend
    from repro.interp.inputs import ExecutionMode, InputBinder
    from repro.interp.interpreter import ExecutionConfig

    scaffold = recording.environment.scaffold()
    provider = None
    if recording.plan.log_syscalls:
        cursor = recording.syscall_log.cursor()

        def provider(kind, _cursor=cursor):
            return _cursor.next_result(kind)

    executor = create_backend(
        pipeline.program,
        kernel=scaffold.make_kernel(),
        binder=InputBinder(mode=ExecutionMode.REPLAY,
                           overrides=dict(outcome.found_input)),
        config=ExecutionConfig(mode=ExecutionMode.REPLAY,
                               backend=pipeline.config.backend,
                               syscall_result_provider=provider),
    )
    result = executor.run(scaffold.argv)
    original = recording.execution
    return (result.steps == original.steps
            and result.branch_executions == original.branch_executions)


def table6_rows(pipeline: Optional[Pipeline] = None,
                analysis: Optional[AnalysisResult] = None,
                replay_budget: Optional[ReplayBudget] = None) -> List[Dict[str, object]]:
    """Table 6: time needed to reproduce the two diff executions.

    ``TIMEOUT`` means the search exhausted its budget; ``NOT-EQUIV`` means it
    proposed an input whose execution is not path-equivalent to the recorded
    one (both correspond to the paper's ∞ entries for *dynamic*).
    """

    if pipeline is None or analysis is None:
        pipeline, analysis = make_setup()
    replay_budget = replay_budget or DEFAULT_REPLAY_BUDGET
    environments = {"exp1": diffutil.experiment_1(), "exp2": diffutil.experiment_2()}
    rows = []
    for method in InstrumentationMethod.paper_methods():
        row: Dict[str, object] = {"configuration": method.value}
        for label, env in environments.items():
            plan = pipeline.make_plan(method, analysis)
            recording = pipeline.record(plan, env)
            report = pipeline.reproduce(recording, budget=replay_budget, scenario=label)
            if not report.reproduced:
                row[label] = "TIMEOUT"
            elif not _path_equivalent(pipeline, recording, report.outcome):
                row[label] = "NOT-EQUIV"
            else:
                row[label] = f"{report.replay_seconds:.1f}s"
        rows.append(row)
    return rows


def table7_rows(pipeline: Optional[Pipeline] = None,
                analysis: Optional[AnalysisResult] = None) -> List[Dict[str, object]]:
    """Table 7: symbolic branch locations/executions logged vs not logged."""

    if pipeline is None or analysis is None:
        pipeline, analysis = make_setup()
    environments = {"exp1": diffutil.experiment_1(), "exp2": diffutil.experiment_2()}
    rows = []
    for label, env in environments.items():
        for method in InstrumentationMethod.paper_methods():
            plan = pipeline.make_plan(method, analysis)
            stats = pipeline.branch_logging_stats(plan, env, scenario=label)
            rows.append({
                "experiment": label,
                "configuration": method.value,
                "logged (locations/executions)":
                    f"{stats.logged_locations} / {stats.logged_executions}",
                "not logged (locations/executions)":
                    f"{stats.not_logged_locations} / {stats.not_logged_executions}",
            })
    return rows
