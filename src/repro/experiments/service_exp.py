"""Batch-inbox benchmark: dedup ratio and traces/sec of the service layer.

Simulates the fleet-scale developer site: K user machines ship bug reports
into a spool directory, with heavy duplication (many users hitting the same
bug produce reports that cluster on the same ``(plan fingerprint, crash
site)`` key).  The :class:`~repro.service.service.ReproService` ingests the
spool, runs **one** replay search per cluster, and fans each reproduction
report out to every member — so batch throughput (traces/sec) scales with
the dedup ratio rather than with raw search cost.

Each row additionally asserts the dedup contract: exactly D searches for D
distinct clusters, every trace receives a report, and each report's explored
search tree is byte-identical to running that trace alone through the
single-shot :meth:`Pipeline.reproduce_from_trace` path.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, List, Tuple

from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.service import (
    ReplaySection,
    ReproConfig,
    ReproService,
    outcome_fingerprint,
    workload_pipeline,
)
from repro.service.config import ExecutionSection

#: ``(workload, copies)`` per spool batch: the smoke batch is the CI shape
#: (3 traces, 2 duplicates -> 2 searches); the full batch leans harder on
#: duplication across three workload families.
BATCHES: Dict[str, List[Tuple[str, int]]] = {
    "smoke": [("mkdir-bug", 2), ("diff-exp1", 1)],
    "full": [("mkdir-bug", 4), ("mkfifo-bug", 3), ("diff-exp1", 2),
             ("paste-bug", 3)],
}


def _service_config() -> ReproConfig:
    return ReproConfig(
        execution=ExecutionSection(backend="vm"),
        replay=ReplaySection(budget=ReplayBudget(max_runs=3000,
                                                 max_seconds=120)),
    )


def inbox_rows(smoke: bool = False) -> List[Dict[str, object]]:
    """One row per spool batch; asserts the dedup contract along the way."""

    batch = BATCHES["smoke" if smoke else "full"]
    config = _service_config()
    workdir = tempfile.mkdtemp(prefix="repro-inbox-bench-")
    rows: List[Dict[str, object]] = []
    try:
        spool = os.path.join(workdir, "spool")
        os.makedirs(spool)
        recorded: Dict[str, str] = {}  # workload -> one spool file of it
        count = 0
        for workload, copies in batch:
            pipeline, environment = workload_pipeline(workload, config=config)
            plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                      environment=environment)
            first = os.path.join(spool, f"u{count:03d}.trace")
            pipeline.record_trace(plan, environment, first)
            recorded[workload] = first
            count += 1
            for _ in range(copies - 1):
                # Duplicate reports: the same bug shipped by another user.
                shutil.copyfile(first,
                                os.path.join(spool, f"u{count:03d}.trace"))
                count += 1

        service = ReproService(os.path.join(workdir, "inbox"), config=config)
        start = time.perf_counter()
        ingested = service.poll_spool(spool)
        reports = service.process()
        wall = time.perf_counter() - start
        stats = service.stats()

        # The dedup contract, asserted on every bench run.
        distinct = len({r.cluster_id for r in ingested})
        assert stats.searches_run == distinct, (
            f"{stats.searches_run} searches for {distinct} clusters")
        assert len(reports) == len(ingested) == count
        assert all(report.reproduced for report in reports.values())
        # Byte-identity vs the single-shot path, per workload.
        for workload, path in recorded.items():
            pipeline, _environment = workload_pipeline(workload, config=config)
            single = pipeline.reproduce_from_trace(path)
            cluster_reports = [r for r in reports.values()
                               if r.program == workload]
            assert cluster_reports, workload
            for report in cluster_reports:
                assert report.fingerprint() == outcome_fingerprint(
                    single.outcome), f"{workload}: batch != single-shot"

        rows.append({
            "scenario": f"inbox-batch-{'smoke' if smoke else 'full'}",
            "traces": count,
            "clusters": distinct,
            "searches_run": stats.searches_run,
            "reports_fanned_out": stats.reports_fanned_out,
            # dedup_ratio is None until a search has run; an inbox batch
            # always runs at least one, but guard the writer anyway so an
            # empty batch cannot crash artifact generation.
            "dedup_ratio": (None if stats.dedup_ratio is None
                            else round(stats.dedup_ratio, 2)),
            "wall_seconds": round(wall, 4),
            "traces_per_sec": round(count / wall, 2),
            "reproduced": all(r.reproduced for r in reports.values()),
        })
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return rows
