"""§5.1 microbenchmark experiments (counting loop and Listing 1)."""

from __future__ import annotations

from typing import Dict, List

from repro.service.config import InstrumentationSection, ReproConfig
from repro.core.pipeline import Pipeline
from repro.concolic.budget import ConcolicBudget
from repro.instrument.methods import InstrumentationMethod
from repro.instrument.overhead import BRANCH_LOG_INSTRUCTIONS, NANOSECONDS_PER_BRANCH
from repro.workloads import fibonacci, microbench


def counter_loop_rows(iterations: int = microbench.DEFAULT_ITERATIONS) -> List[Dict[str, object]]:
    """The counting-loop microbenchmark: none vs all-branches overhead."""

    pipeline = Pipeline.from_source(microbench.SOURCE, name="countloop")
    env = microbench.scenario(iterations)
    baseline = pipeline.baseline_steps(env)
    rows = [{
        "configuration": "none",
        "cpu_time_percent": 100.0,
        "instrumented_branch_executions": 0,
        "instructions_per_branch": 0,
        "estimated_ns_per_branch": 0.0,
    }]
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES)
    recording = pipeline.record(plan, env)
    executions = recording.overhead.instrumented_branch_executions
    rows.append({
        "configuration": "all branches",
        "cpu_time_percent": round(recording.overhead.cpu_time_percent, 1),
        "instrumented_branch_executions": executions,
        "instructions_per_branch": BRANCH_LOG_INSTRUCTIONS,
        "estimated_ns_per_branch": NANOSECONDS_PER_BRANCH,
    })
    rows[0]["base_interpreter_steps"] = baseline
    rows[1]["base_interpreter_steps"] = baseline
    return rows


def fibonacci_rows(budget: ConcolicBudget = None) -> List[Dict[str, object]]:
    """Listing 1: every analysis-based method instruments only two branches."""

    budget = budget or ConcolicBudget(max_iterations=6, max_seconds=10)
    config = ReproConfig(instrumentation=InstrumentationSection(
        concolic_budget=budget))
    pipeline = Pipeline.from_source(fibonacci.SOURCE, name="fib", config=config)
    env = fibonacci.scenario_b()
    analysis = pipeline.analyze(env)
    rows: List[Dict[str, object]] = []
    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, env)
        rows.append({
            "configuration": method.value,
            "instrumented_branch_locations": plan.instrumented_count(),
            "logged_bits": len(recording.bitvector),
            "cpu_time_percent": round(recording.overhead.cpu_time_percent, 1),
        })
    return rows
