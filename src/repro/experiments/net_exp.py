"""Load-generator bench for the network trace-ingestion layer.

Simulates the paper's reporting fleet against a live
:class:`~repro.service.net.UploadServer`: C client threads ship a
duplicate-heavy batch of bug reports over TCP — once over a clean network
and once through the seeded fault injector (drops, truncations, in-flight
corruption, slow-loris stalls, plus a poison client uploading garbage) —
and the bench records sustained traces/sec and p99 ingest latency (read
from the ``service.ingest_latency`` histogram) into the ``net`` key of
``BENCH_replay.json``.

Every row re-asserts the robustness contract on the way out:

* zero lost reports — every acknowledged upload has a reproduction report;
* the rejection ledger absorbed exactly the poison uploads;
* every acked report's explored search tree is **byte-identical** to
  running that trace alone through ``Pipeline.reproduce_from_trace`` —
  faults on the wire never leak into reproduction results.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.service import (
    FaultInjector,
    FaultSpec,
    ReproConfig,
    UploadClient,
    UploadRejected,
    UploadServer,
    outcome_fingerprint,
    workload_pipeline,
)
from repro.telemetry import histogram_quantile
from repro.trace import dump_trace_bytes, trace_from_recording

__all__ = ["FLEETS", "FAULTY_RATES", "net_rows", "record_payloads",
           "run_fleet"]

#: ``(workload, copies)`` per fleet: how many users ship each bug.
FLEETS: Dict[str, List[Tuple[str, int]]] = {
    "smoke": [("mkdir-bug", 3), ("mkfifo-bug", 2)],
    "full": [("mkdir-bug", 6), ("mkfifo-bug", 4), ("diff-exp1", 2),
             ("paste-bug", 4)],
}

#: The fault mix of the chaos run (client-side network damage rates).
FAULTY_RATES: Dict[str, float] = {
    "drop_rate": 0.2,
    "truncate_rate": 0.2,
    "corrupt_rate": 0.15,
    "slow_rate": 0.1,
}


def fleet_config() -> ReproConfig:
    config = ReproConfig()
    config.execution.backend = "vm"
    config.replay.budget = ReplayBudget(max_runs=3000, max_seconds=120)
    config.telemetry.enabled = True  # arrival stamps -> ingest latency p99
    config.service.read_timeout_seconds = 0.3  # sheds slow-loris fast
    return config


def record_payloads(fleet: List[Tuple[str, int]], config: ReproConfig
                    ) -> List[Tuple[str, bytes]]:
    """The fleet's uploads, in ship order: ``[(workload, trace bytes)...]``.

    Each workload is recorded once; its duplicates are the same bytes
    shipped by different simulated users (distinct client ids), which is
    exactly what a crash fleet hitting one bug produces.
    """

    payloads: List[Tuple[str, bytes]] = []
    for workload, copies in fleet:
        pipeline, environment = workload_pipeline(workload, config=config)
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        recording = pipeline.record(plan, environment)
        data = dump_trace_bytes(trace_from_recording(
            recording, scaffold=True, program_name=workload))
        payloads.extend((workload, data) for _ in range(copies))
    return payloads


def run_fleet(host: str, port: int, payloads: List[Tuple[str, bytes]],
              clients: int = 3, fault_spec: Optional[FaultSpec] = None,
              seed: int = 0, timeout: float = 1.0, max_attempts: int = 12,
              poison: int = 0) -> Dict[str, object]:
    """Ship *payloads* from a fleet of client threads; return the summary.

    Uploads are dealt round-robin over ``clients`` threads, each with its
    own client id and (when *fault_spec* is given) its own seeded injector
    — so each client's damage schedule is deterministic.  ``poison`` adds
    that many garbage uploads from a dedicated client, which must be
    permanently rejected (they feed the rejection ledger, not the inbox).
    """

    lanes: List[List[Tuple[int, str, bytes]]] = [[] for _ in range(clients)]
    for index, (workload, data) in enumerate(payloads):
        lanes[index % clients].append((index, workload, data))
    receipts: Dict[int, object] = {}
    failures: Dict[int, str] = {}
    injectors: List[FaultInjector] = []
    client_stats: List[Dict[str, int]] = []
    lock = threading.Lock()

    def ship(lane_index: int, lane: List[Tuple[int, str, bytes]]) -> None:
        faults = None
        if fault_spec is not None:
            faults = FaultInjector(FaultSpec(
                seed=fault_spec.seed + lane_index,
                drop_rate=fault_spec.drop_rate,
                truncate_rate=fault_spec.truncate_rate,
                corrupt_rate=fault_spec.corrupt_rate,
                slow_rate=fault_spec.slow_rate))
        client = UploadClient(host, port, client_id=f"u{lane_index:02d}",
                              seed=seed + lane_index, timeout=timeout,
                              max_attempts=max_attempts, faults=faults)
        for index, _workload, data in lane:
            try:
                receipt = client.upload(data)
            except Exception as exc:  # noqa: BLE001 - recorded, asserted on
                with lock:
                    failures[index] = f"{type(exc).__name__}: {exc}"
                continue
            with lock:
                receipts[index] = receipt
        with lock:
            if faults is not None:
                injectors.append(faults)
            client_stats.append(dict(client.stats))

    threads = [threading.Thread(target=ship, args=(i, lane), daemon=True)
               for i, lane in enumerate(lanes)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    rejected_uploads = 0
    if poison:
        poison_client = UploadClient(host, port, client_id="poison",
                                     seed=seed + 1000, timeout=timeout,
                                     max_attempts=3)
        for index in range(poison):
            try:
                poison_client.upload(
                    b"REPROTRC garbage payload %d " % index * 20)
            except UploadRejected:
                rejected_uploads += 1

    injected: Dict[str, int] = {}
    for injector in injectors:
        for kind, count in injector.counts().items():
            injected[kind] = injected.get(kind, 0) + count
    return {
        "uploads": len(payloads),
        "acked": len(receipts),
        "failed": dict(failures),
        "clients": clients,
        "wall_seconds": round(wall, 4),
        "traces_per_sec": round(len(receipts) / wall, 2) if wall else None,
        "attempts": sum(s["attempts"] for s in client_stats),
        "retries": sum(s["retries"] for s in client_stats),
        "connection_errors": sum(s["connection_errors"]
                                 for s in client_stats),
        "faults_injected": injected,
        "poison_uploads": poison,
        "poison_rejected": rejected_uploads,
        "receipts": receipts,
    }


def _p99(server: UploadServer) -> Optional[float]:
    value = histogram_quantile(server.service.telemetry(),
                               "service.ingest_latency", 0.99)
    if value is None or math.isinf(value):
        return None
    return value


def net_rows(smoke: bool = False) -> List[Dict[str, object]]:
    """One row per scenario (clean / fault-injected), invariants asserted."""

    fleet = FLEETS["smoke" if smoke else "full"]
    config = fleet_config()
    payloads = record_payloads(fleet, config)
    scenarios = [
        ("net-fleet-clean", None, 0),
        ("net-fleet-faulty",
         FaultSpec(seed=1234, **FAULTY_RATES), 2),
    ]
    rows: List[Dict[str, object]] = []
    for scenario, fault_spec, poison in scenarios:
        workdir = tempfile.mkdtemp(prefix="repro-net-bench-")
        server = UploadServer(os.path.join(workdir, "service"),
                              config=config).start()
        try:
            summary = run_fleet(server.host, server.port, payloads,
                                clients=2 if smoke else 4,
                                fault_spec=fault_spec, seed=7,
                                timeout=0.8, poison=poison)
            assert not summary["failed"], summary["failed"]
            assert summary["acked"] == len(payloads)
            assert summary["poison_rejected"] == poison
            if poison:
                assert len(server.service.inbox.rejected) >= poison

            # Run the searches and fan reports out, through the wire.
            control = UploadClient(server.host, server.port,
                                   client_id="control", seed=99)
            processed = control.process()
            receipts = summary.pop("receipts")
            lost = [receipt.trace_id for receipt in receipts.values()
                    if control.report(receipt.trace_id).get("status")
                    != "done"]
            assert not lost, f"acknowledged traces without reports: {lost}"

            # Byte-identity vs the single-shot path, per workload: wire
            # faults must never leak into reproduction results.
            by_workload: Dict[str, bytes] = {}
            for (workload, data) in payloads:
                by_workload.setdefault(workload, data)
            for workload, data in by_workload.items():
                path = os.path.join(workdir, f"{workload}.trace")
                with open(path, "wb") as handle:
                    handle.write(data)
                pipeline, _environment = workload_pipeline(workload,
                                                           config=config)
                single = pipeline.reproduce_from_trace(path)
                expected = outcome_fingerprint(single.outcome)
                for index, (shipped, _data) in enumerate(payloads):
                    if shipped != workload:
                        continue
                    report = server.service.report(
                        receipts[index].trace_id)
                    assert report.fingerprint() == expected, (
                        f"{workload}: fleet report != single-shot")

            stats = server.service.stats()
            rows.append({
                "scenario": scenario,
                "faults": (fault_spec.to_json()
                           if fault_spec is not None else None),
                "uploads": summary["uploads"],
                "acked": summary["acked"],
                "clients": summary["clients"],
                "attempts": summary["attempts"],
                "retries": summary["retries"],
                "connection_errors": summary["connection_errors"],
                "faults_injected": summary["faults_injected"],
                "poison_rejected": summary["poison_rejected"],
                "lost_reports": 0,
                "wall_seconds": summary["wall_seconds"],
                "traces_per_sec": summary["traces_per_sec"],
                "p99_ingest_seconds": _p99(server),
                "searches_run": stats.searches_run,
                "dedup_ratio": (None if stats.dedup_ratio is None
                                else round(stats.dedup_ratio, 2)),
                "reports_fanned_out": int(
                    processed["stats"]["reports_fanned_out"]),
            })
        finally:
            server.shutdown()
            shutil.rmtree(workdir, ignore_errors=True)
    return rows
