"""Coreutils experiments: Figure 1, Figure 2 and Table 1 (§5.2)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.concolic.budget import ConcolicBudget
from repro.core.pipeline import Pipeline
from repro.core.results import AnalysisResult
from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.service.config import (
    InstrumentationSection,
    ReplaySection,
    ReproConfig,
)
from repro.workloads.coreutils import ALL_PROGRAMS, mkdir

_DEFAULT_BUDGET = ConcolicBudget(max_iterations=20, max_seconds=8)
_REPLAY_BUDGET = ReplayBudget(max_runs=300, max_seconds=30)


def _pipeline_for(module, name: str) -> Pipeline:
    config = ReproConfig(
        instrumentation=InstrumentationSection(concolic_budget=_DEFAULT_BUDGET),
        replay=ReplaySection(budget=_REPLAY_BUDGET))
    return Pipeline.from_source(module.SOURCE, name=name, config=config)


def figure1_rows(program: str = "mkdir") -> List[Dict[str, object]]:
    """Figure 1: per-branch-location execution counts (all vs symbolic)."""

    module = ALL_PROGRAMS[program]
    pipeline = _pipeline_for(module, program)
    profile = pipeline.profile_branch_behavior(module.benign_scenario())
    rows = []
    for row in profile.location_stats():
        rows.append({
            "branch_location": row["location"],
            "executions": row["executions"],
            "symbolic_executions": row["symbolic_executions"],
        })
    return rows


def figure2_rows(program: str = "mkdir") -> List[Dict[str, object]]:
    """Figure 2: CPU time of the four configurations, normalised to none."""

    module = ALL_PROGRAMS[program]
    pipeline = _pipeline_for(module, program)
    env = module.benign_scenario()
    analysis = pipeline.analyze(env)
    rows = []
    for method in InstrumentationMethod.paper_methods():
        plan = pipeline.make_plan(method, analysis)
        recording = pipeline.record(plan, env)
        rows.append({
            "configuration": method.value,
            "cpu_time_percent": round(recording.overhead.cpu_time_percent, 1),
            "instrumented_branch_locations": plan.instrumented_count(),
        })
    return rows


def table1_rows(programs: Optional[List[str]] = None,
                methods: Optional[List[InstrumentationMethod]] = None) -> List[Dict[str, object]]:
    """Table 1: time to replay the crash bug of each coreutils program."""

    programs = programs or sorted(ALL_PROGRAMS)
    methods = methods or list(InstrumentationMethod.paper_methods())
    rows = []
    for name in programs:
        module = ALL_PROGRAMS[name]
        pipeline = _pipeline_for(module, name)
        env = module.bug_scenario()
        analysis = pipeline.analyze(env)
        row: Dict[str, object] = {"program": name}
        for method in methods:
            plan = pipeline.make_plan(method, analysis)
            recording = pipeline.record(plan, env)
            report = pipeline.reproduce(recording)
            row[method.value] = (f"{report.replay_seconds:.2f}s"
                                 if report.reproduced else "TIMEOUT")
        rows.append(row)
    return rows
