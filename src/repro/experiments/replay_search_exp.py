"""Replay-search benchmark: PR-over-PR wall-clock of the guided search.

This experiment times the complete guided search (record once, then search
until the crash reproduces) on uServer, diff and coreutils workloads under
five configurations spanning three PRs of engine work:

* ``pr1-serial``   — the PR 1 stack: unspecialized VM bytecode (every branch
  dispatches a hook event), the legacy full-rescan constraint search, one
  worker;
* ``pr2-serial``   — plan-specialized bytecode + the incremental constraint
  search, one worker;
* ``pr3-serial``   — pr2 plus the solver warm start: pending items whose
  flipped branch moves a single input variable reuse the parent run's
  assignment and skip the solver call entirely;
* ``pr3-threads``  — the speculative worker pool on threads (GIL-bound);
* ``pr3-process``  — the speculative pool on *processes*: each worker
  rebuilds the engine from a pickled spec and evaluates pending items in its
  own interpreter, the first configuration that can beat single-core
  wall-clock on a multi-core machine.

Every configuration must explore a *byte-identical* search tree — same run
records, same pending-list statistics, same reproducing input — which each
row asserts before it reports a time.  Solver-call counts are deliberately
**not** part of the tree identity: the warm start's whole point is answering
the same query without a solver call, so they are reported as a separate
savings column instead.  The ``speedup`` column is the configuration's
wall-clock advantage over ``pr1-serial`` on the same scenario.

The grown scenarios (``userver-load6``, ``diff-big10``, ``paste-big24``)
scale the workloads toward the paper's original request counts and file
sizes; the budget below is tuned so the slowest configuration (pr1 on the
big diff) still finishes on a laptop.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import Pipeline
from repro.service.config import InstrumentationSection, ReproConfig
from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.replay.engine import ReplayEngine, ReplayOutcome
from repro.symbolic import solver as solver_mod
from repro.vm import compiler as vm_compiler
from repro.vm import synth
from repro.workloads import diffutil, library_functions_for, userver
from repro.workloads.coreutils import paste

#: The benchmarked configurations:
#: (name, solver impl, specialize, workers, worker kind, warm start,
#:  register allocation).  ``pr4`` adds the register-allocated VM frames;
#: ``pr3-serial`` keeps running the named-cell VM so the PR-over-PR artifact
#: records the slot-frame win on identical search trees.
CONFIGURATIONS: Tuple[Tuple[str, str, bool, int, str, bool, bool], ...] = (
    ("pr1-serial", "legacy", False, 1, "thread", False, False),
    ("pr2-serial", "incremental", True, 1, "thread", False, False),
    ("pr3-serial", "incremental", True, 1, "thread", True, False),
    ("pr4-serial", "incremental", True, 1, "thread", True, True),
    ("pr4-process", "incremental", True, 4, "process", True, True),
)

BASELINE = "pr1-serial"
#: The serial equivalent of the process configuration; their wall-clock ratio
#: is the pure multi-core win (identical work, different scheduling).
SERIAL_REFERENCE = "pr4-serial"
#: pr4-serial vs this configuration isolates the register-allocation win.
PRE_REGALLOC_REFERENCE = "pr3-serial"


def scenarios(smoke: bool = False) -> List[Tuple[str, str, str, "object", frozenset]]:
    """``(scenario, program name, source, environment, library functions)``."""

    rows = [
        ("userver-exp2", "userver", userver.SOURCE, userver.experiment(2)),
        ("diff-exp1", "diff", diffutil.SOURCE, diffutil.experiment_1()),
    ]
    if not smoke:
        rows += [
            ("userver-load6", "userver", userver.SOURCE,
             userver.saturation_workload(6)),
            ("diff-exp2", "diff", diffutil.SOURCE, diffutil.experiment_2()),
            ("diff-big10", "diff", diffutil.SOURCE, diffutil.experiment_big(10)),
            ("paste-big24", "paste", paste.SOURCE, paste.big_bug_scenario(24)),
        ]
    return [(scenario, name, source, environment, library_functions_for(source))
            for scenario, name, source, environment in rows]


def _outcome_fingerprint(outcome: ReplayOutcome) -> tuple:
    """Everything that identifies the explored search tree.

    Never timings, and never *cost* counters: solver calls (the warm start
    answers some items without one) and compile-cache hits/misses (each
    worker process warms its own cache) vary across configurations while the
    explored tree stays the same.  The mode-independent cost totals are
    asserted separately (see ``compile_cache_lookups``).
    """

    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced,
        outcome.runs,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


def _timed_search(pipeline: Pipeline, recording, solver_impl: str,
                  specialize: bool, workers: int, worker_kind: str,
                  warm_start: bool, register_allocation: bool,
                  budget: ReplayBudget) -> Tuple[ReplayOutcome, float]:
    engine = ReplayEngine(
        program=pipeline.program,
        plan=recording.plan,
        bitvector=recording.bitvector,
        syscall_log=recording.syscall_log if recording.plan.log_syscalls else None,
        crash_site=recording.crash_site,
        environment=recording.environment.scaffold(),
        budget=budget,
        backend="vm",
        workers=workers,
        worker_kind=worker_kind,
        specialize_plans=specialize,
        register_allocation=register_allocation,
        warm_start=warm_start,
    )
    previous = solver_mod.set_search_impl(solver_impl)
    solver_mod._UNARY_FILTER_CACHE.clear()  # every configuration starts cold
    try:
        start = time.perf_counter()
        outcome = engine.reproduce()
        wall = time.perf_counter() - start
    finally:
        solver_mod.set_search_impl(previous)
    return outcome, wall


def search_rows(smoke: bool = False, repeats: int = 2,
                budget: Optional[ReplayBudget] = None) -> List[Dict[str, object]]:
    """One row per (scenario, configuration); best-of-``repeats`` walls."""

    budget = budget or ReplayBudget(max_runs=6000, max_seconds=240)
    rows: List[Dict[str, object]] = []
    for scenario, name, source, environment, lib in scenarios(smoke):
        pipeline = Pipeline.from_source(
            source, name=name,
            config=ReproConfig(instrumentation=InstrumentationSection(
                library_functions=set(lib))))
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        recording = pipeline.record(plan, environment)
        # Pay every bytecode compilation up front: the searches being
        # compared should time re-runs, not one-off compiles.
        vm_compiler.compile_program(pipeline.program)
        vm_compiler.compile_program(pipeline.program, plan)
        vm_compiler.compile_program(pipeline.program, resolve=False)
        vm_compiler.compile_program(pipeline.program, plan, resolve=False)
        # The pr4 configurations run the adaptive-specialization tiers.
        vm_compiler.compile_program(pipeline.program, specialize_ints=True,
                                    synth_fusions=synth.DEFAULT_FUSIONS)
        vm_compiler.compile_program(pipeline.program, plan,
                                    specialize_ints=True,
                                    synth_fusions=synth.DEFAULT_FUSIONS)

        fingerprints = {}
        walls: Dict[str, float] = {}
        solver_calls: Dict[str, int] = {}
        for (config, solver_impl, specialize, workers, worker_kind, warm,
             regalloc) in CONFIGURATIONS:
            best_wall = None
            outcome = None
            for _ in range(repeats):
                outcome, wall = _timed_search(pipeline, recording, solver_impl,
                                              specialize, workers, worker_kind,
                                              warm, regalloc, budget)
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            fingerprints[config] = _outcome_fingerprint(outcome)
            walls[config] = best_wall
            solver_calls[config] = outcome.solver_calls
            rows.append({
                "scenario": scenario,
                "configuration": config,
                "reproduced": outcome.reproduced,
                "runs": outcome.runs,
                "bits": len(recording.bitvector),
                "wall_seconds": round(best_wall, 4),
                "speedup_vs_pr1": round(walls[BASELINE] / best_wall, 2),
                "identical_to_pr1": fingerprints[config] == fingerprints[BASELINE],
                "solver_calls": outcome.solver_calls,
                "solver_calls_saved_vs_pr1": solver_calls[BASELINE] - outcome.solver_calls,
                "warm_start_hits": outcome.warm_start_hits,
                "cache_lookups": outcome.compile_cache_lookups,
                "speculation_hits": outcome.speculation_hits,
            })
        # The process pool's pure multi-core win over identical serial work.
        process_row = rows[-1]
        assert process_row["configuration"] == "pr4-process"
        process_row["speedup_vs_serial"] = round(
            walls[SERIAL_REFERENCE] / walls["pr4-process"], 2)
        # The register-allocation win on an identical search tree (pr4-serial
        # differs from pr3-serial only by the VM frame representation).
        serial_row = rows[-2]
        assert serial_row["configuration"] == "pr4-serial"
        serial_row["regalloc_speedup_vs_pr3"] = round(
            walls[PRE_REGALLOC_REFERENCE] / walls[SERIAL_REFERENCE], 2)
    return rows


def telemetry_rows(smoke: bool = False, repeats: int = 2,
                   budget: Optional[ReplayBudget] = None) -> Dict[str, object]:
    """Telemetry-on vs telemetry-off cost of the same guided search.

    Runs the ``pr4-serial``-shaped engine on one scenario with telemetry off
    and on (spans, per-item registries, histograms — VM opcode profiling
    stays off, it is a separately-priced knob) and reports the wall-clock
    ratio next to the deterministic metrics snapshot, so the artifact both
    prices the instrumentation and records what it measured.
    """

    budget = budget or ReplayBudget(max_runs=6000, max_seconds=240)
    scenario, name, source, environment, lib = scenarios(smoke=True)[0]
    pipeline = Pipeline.from_source(
        source, name=name,
        config=ReproConfig(instrumentation=InstrumentationSection(
            library_functions=set(lib))))
    plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                              environment=environment)
    recording = pipeline.record(plan, environment)
    vm_compiler.compile_program(pipeline.program)
    vm_compiler.compile_program(pipeline.program, plan)

    def timed(telemetry: bool) -> Tuple[ReplayOutcome, float]:
        best = None
        outcome = None
        for _ in range(repeats):
            engine = ReplayEngine(
                program=pipeline.program, plan=recording.plan,
                bitvector=recording.bitvector,
                syscall_log=recording.syscall_log,
                crash_site=recording.crash_site,
                environment=recording.environment.scaffold(),
                budget=budget, backend="vm", telemetry=telemetry)
            start = time.perf_counter()
            outcome = engine.reproduce()
            wall = time.perf_counter() - start
            if best is None or wall < best:
                best = wall
        return outcome, best

    off_outcome, off_wall = timed(False)
    on_outcome, on_wall = timed(True)
    assert (_outcome_fingerprint(on_outcome)
            == _outcome_fingerprint(off_outcome)), \
        "telemetry changed the explored search tree"
    return {
        "scenario": scenario,
        "runs": off_outcome.runs,
        "wall_seconds_off": round(off_wall, 4),
        "wall_seconds_on": round(on_wall, 4),
        "overhead_ratio": round(on_wall / off_wall, 4),
        "identical_tree": True,
        "snapshot": on_outcome.telemetry.deterministic().to_json(),
    }


def write_artifact(rows: List[Dict[str, object]], path: str = "BENCH_replay.json",
                   inbox_rows: Optional[List[Dict[str, object]]] = None,
                   telemetry: Optional[Dict[str, object]] = None,
                   net: Optional[List[Dict[str, object]]] = None,
                   checkpoint: Optional[Dict[str, object]] = None) -> str:
    """Dump the rows as the PR-over-PR tracking artifact.

    ``inbox_rows`` (see :mod:`repro.experiments.service_exp`) records the
    service layer's batch-inbox throughput — traces/sec and dedup ratio —
    next to the per-search wall-clocks; ``telemetry`` (see
    :func:`telemetry_rows`) the cost and deterministic content of running
    the same search instrumented; ``net`` (see
    :mod:`repro.experiments.net_exp`) the concurrent upload server's
    sustained traces/sec and p99 ingest latency, clean and fault-injected;
    ``checkpoint`` (see :mod:`repro.experiments.checkpoint_exp`) what the
    supervised fleet's snapshot/preempt/resume machinery costs the search.
    """

    payload = {
        "benchmark": "replay_search",
        "configurations": [config[0] for config in CONFIGURATIONS],
        "rows": rows,
    }
    if inbox_rows is not None:
        payload["inbox"] = inbox_rows
    if telemetry is not None:
        payload["telemetry"] = telemetry
    if net is not None:
        payload["net"] = net
    if checkpoint is not None:
        payload["checkpoint"] = checkpoint
    # Merge, don't clobber: other bench modules contribute their own keys
    # (``specialize`` from bench_backends) to the same artifact, and the
    # bench files run in either order.
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
        except (ValueError, OSError):
            existing = {}
        if isinstance(existing, dict):
            for key, value in existing.items():
                payload.setdefault(key, value)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
