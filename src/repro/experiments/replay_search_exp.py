"""Replay-search benchmark: PR-over-PR wall-clock of the guided search.

The tentpole claim of the plan-specialization PR is that the replay engine's
hundreds of re-runs become *throughput-bound* instead of dispatch-bound.  This
experiment times the complete guided search (record once, then search until
the crash reproduces) on the uServer and diff workloads under three
configurations:

* ``pr1-serial``   — the PR 1 stack: unspecialized VM bytecode (every branch
  dispatches a hook event), the legacy full-rescan constraint search, one
  worker;
* ``pr2-serial``   — plan-specialized bytecode + the incremental constraint
  search, one worker;
* ``pr2-parallel`` — the full new stack: specialization, incremental search
  and a speculative worker pool.

All three configurations must explore *byte-identical* search trees — same
run records, same pending-list statistics, same solver-call count, same
reproducing input — which each row asserts before it reports a time.  The
``speedup`` column is the configuration's wall-clock advantage over
``pr1-serial`` on the same scenario.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.core.pipeline import Pipeline
from repro.instrument.methods import InstrumentationMethod
from repro.replay.budget import ReplayBudget
from repro.replay.engine import ReplayEngine, ReplayOutcome
from repro.symbolic import solver as solver_mod
from repro.vm import compiler as vm_compiler
from repro.workloads import diffutil, userver

#: The three benchmarked configurations: (name, solver impl, specialize, workers).
CONFIGURATIONS: Tuple[Tuple[str, str, bool, int], ...] = (
    ("pr1-serial", "legacy", False, 1),
    ("pr2-serial", "incremental", True, 1),
    ("pr2-parallel", "incremental", True, 4),
)

BASELINE = "pr1-serial"


def _diff_big() -> "object":
    old = b"".join(b"line-%03d common text\n" % i for i in range(8))
    new = b"".join(
        (b"line-%03d common teXt\n" if i in (2, 5) else b"line-%03d common text\n") % i
        for i in range(8))
    return diffutil.custom_scenario(old, new, name="diff-big8")


def scenarios(smoke: bool = False) -> List[Tuple[str, str, str, "object", frozenset]]:
    """``(scenario, program name, source, environment, library functions)``."""

    lib = frozenset(userver.LIBRARY_FUNCTIONS)
    rows = [
        ("userver-exp2", "userver", userver.SOURCE, userver.experiment(2), lib),
        ("diff-exp1", "diff", diffutil.SOURCE, diffutil.experiment_1(), frozenset()),
    ]
    if not smoke:
        rows += [
            ("userver-load4", "userver", userver.SOURCE,
             userver.saturation_workload(4), lib),
            ("diff-exp2", "diff", diffutil.SOURCE, diffutil.experiment_2(), frozenset()),
            ("diff-big8", "diff", diffutil.SOURCE, _diff_big(), frozenset()),
        ]
    return rows


def _outcome_fingerprint(outcome: ReplayOutcome) -> tuple:
    """Everything that identifies the explored search tree (never timings)."""

    crash = None
    if outcome.crash_site is not None:
        crash = (outcome.crash_site.function, outcome.crash_site.line)
    return (
        outcome.reproduced,
        outcome.runs,
        outcome.solver_calls,
        tuple((r.outcome, r.consumed_bits, r.constraints, r.deviation)
              for r in outcome.run_records),
        tuple(sorted(outcome.pending_stats.items())),
        tuple(sorted(outcome.found_input.items())),
        crash,
    )


def _timed_search(pipeline: Pipeline, recording, solver_impl: str,
                  specialize: bool, workers: int,
                  budget: ReplayBudget) -> Tuple[ReplayOutcome, float]:
    engine = ReplayEngine(
        program=pipeline.program,
        plan=recording.plan,
        bitvector=recording.bitvector,
        syscall_log=recording.syscall_log if recording.plan.log_syscalls else None,
        crash_site=recording.crash_site,
        environment=recording.environment.scaffold(),
        budget=budget,
        backend="vm",
        workers=workers,
        specialize_plans=specialize,
    )
    previous = solver_mod.set_search_impl(solver_impl)
    solver_mod._UNARY_FILTER_CACHE.clear()  # every configuration starts cold
    try:
        start = time.perf_counter()
        outcome = engine.reproduce()
        wall = time.perf_counter() - start
    finally:
        solver_mod.set_search_impl(previous)
    return outcome, wall


def search_rows(smoke: bool = False, repeats: int = 2,
                budget: Optional[ReplayBudget] = None) -> List[Dict[str, object]]:
    """One row per (scenario, configuration); best-of-``repeats`` walls."""

    budget = budget or ReplayBudget(max_runs=3000, max_seconds=120)
    rows: List[Dict[str, object]] = []
    for scenario, name, source, environment, lib in scenarios(smoke):
        pipeline = Pipeline.from_source(
            source, name=name, config=PipelineConfig(library_functions=set(lib)))
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        recording = pipeline.record(plan, environment)
        # Pay both bytecode compilations up front: the searches being compared
        # should time re-runs, not one-off compiles.
        vm_compiler.compile_program(pipeline.program)
        vm_compiler.compile_program(pipeline.program, plan)

        fingerprints = {}
        walls: Dict[str, float] = {}
        for config, solver_impl, specialize, workers in CONFIGURATIONS:
            best_wall = None
            outcome = None
            for _ in range(repeats):
                outcome, wall = _timed_search(pipeline, recording, solver_impl,
                                              specialize, workers, budget)
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            fingerprints[config] = _outcome_fingerprint(outcome)
            walls[config] = best_wall
            rows.append({
                "scenario": scenario,
                "configuration": config,
                "reproduced": outcome.reproduced,
                "runs": outcome.runs,
                "bits": len(recording.bitvector),
                "wall_seconds": round(best_wall, 4),
                "speedup_vs_pr1": round(walls[BASELINE] / best_wall, 2),
                "identical_to_pr1": fingerprints[config] == fingerprints[BASELINE],
                "speculation_hits": outcome.speculation_hits,
            })
    return rows


def write_artifact(rows: List[Dict[str, object]], path: str = "BENCH_replay.json") -> str:
    """Dump the rows as the PR-over-PR tracking artifact."""

    payload = {
        "benchmark": "replay_search",
        "configurations": [config for config, _, _, _ in CONFIGURATIONS],
        "rows": rows,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
