"""Small helpers for printing experiment tables."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of row dicts as a fixed-width text table."""

    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    widths = {col: max(len(str(col)), max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    print()
    print(format_table(rows, title))
