"""Backend benchmark: the bytecode VM vs the tree-walking interpreter.

Both backends charge *steps* in identical tree-walker units (that is what the
differential parity tests pin down), so ``steps / wall_seconds`` is a fair
instructions-per-second comparison: the numerator is the same number on both
backends and only the execution substrate differs.

Measured per workload under two configurations:

* ``none`` — plain execution, no hooks observing branches;
* ``all branches`` — the full branch-logging runtime (every executed branch
  appends one bit to the 4 KB-buffered bitvector), the paper's worst-case
  instrumentation.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.environment import Environment
from repro.instrument.logger import BranchLogger
from repro.instrument.methods import InstrumentationMethod, build_plan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig
from repro.interp.tracer import NullHooks
from repro.lang.program import Program
from repro.vm import synth
from repro.vm.compiler import compile_program
from repro.workloads import fibonacci, microbench, userver


#: The measured execution substrates ``(name, backend, register_allocation,
#: fuse_compare_branch, specialize)``: both Backend implementations, the
#: bytecode VM with register allocation disabled (the pre-slot "PR 3" VM)
#: which anchors the slot-frame speedup gate in ``bench_backends.py``, the
#: slot VM with the compare-and-branch superinstruction disabled
#: (``vm-nocmp``), which anchors the recorded ``BINOP_FF;BRANCH_*`` fusion
#: delta, and the slot VM with adaptive specialization disabled
#: (``vm-nospec``: no unboxed int slots, no quickening, no synthesized
#: superinstructions — the PR 5 VM), which anchors the ``specialize`` gate.
MEASURED = (
    ("interp", "interp", True, True, True),
    ("vm-base", "vm", False, True, False),  # named-cell frames (no regalloc)
    ("vm-nocmp", "vm", True, False, True),  # slot frames, unfused cmp+branch
    ("vm-nospec", "vm", True, True, False),  # slot frames, generic boxed ops
    ("vm", "vm", True, True, True),  # slot frames + all specialization tiers
)


def bench_workloads(smoke: bool = False) -> List[tuple]:
    """``(workload, source, environment)`` triples sized for stable timing.

    ``smoke=True`` shrinks every scenario so the whole comparison finishes
    in seconds (the CI bench-smoke step); the full sizes are what the
    recorded speedups are quoted on.
    """

    if smoke:
        return [
            ("fibonacci", fibonacci.SOURCE, fibonacci.scenario_b()),
            ("microbench", microbench.SOURCE, microbench.scenario(2_000)),
            ("userver", userver.SOURCE, userver.saturation_workload(4)),
        ]
    return [
        ("fibonacci", fibonacci.SOURCE, fibonacci.scenario_b()),
        ("microbench", microbench.SOURCE, microbench.scenario(20_000)),
        ("userver", userver.SOURCE, userver.saturation_workload(30)),
    ]


def _timed_run(program: Program, environment: Environment, backend: str,
               register_allocation: bool, fuse_compare_branch: bool,
               specialize: bool, logged: bool) -> Dict[str, object]:
    if logged:
        plan = build_plan(InstrumentationMethod.ALL_BRANCHES,
                          program.branch_locations, log_syscalls=True)
        hooks = BranchLogger(plan)
    else:
        hooks = NullHooks()
    executor = create_backend(
        program,
        kernel=environment.make_kernel(),
        hooks=hooks,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend=backend,
                               register_allocation=register_allocation,
                               fuse_compare_branch=fuse_compare_branch,
                               specialize_ints=specialize,
                               synth_superinstructions=specialize),
    )
    start = time.perf_counter()
    result = executor.run(environment.argv)
    wall = time.perf_counter() - start
    return {"steps": result.steps, "wall_seconds": wall,
            "branch_executions": result.branch_executions}


def backend_rows(repeats: int = 3, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per (workload, configuration, backend); best-of-``repeats``."""

    rows: List[Dict[str, object]] = []
    for workload, source, environment in bench_workloads(smoke):
        program = Program.from_source(source, name=workload)
        # Pay all compilations once, up front.
        compile_program(program)
        compile_program(program, resolve=False)
        compile_program(program, cmp_branch=False,
                        specialize_ints=True,
                        synth_fusions=synth.DEFAULT_FUSIONS)
        compile_program(program, specialize_ints=True,
                        synth_fusions=synth.DEFAULT_FUSIONS)
        for configuration, logged in (("none", False), ("all branches", True)):
            measured = {}
            for name, backend, regalloc, cmp_fuse, specialize in MEASURED:
                best = None
                for _ in range(repeats):
                    sample = _timed_run(program, environment, backend,
                                        regalloc, cmp_fuse, specialize,
                                        logged)
                    if best is None or sample["wall_seconds"] < best["wall_seconds"]:
                        best = sample
                measured[name] = best
            baseline_ips = (measured["interp"]["steps"]
                            / measured["interp"]["wall_seconds"])
            vm_base_ips = (measured["vm-base"]["steps"]
                           / measured["vm-base"]["wall_seconds"])
            vm_nocmp_ips = (measured["vm-nocmp"]["steps"]
                            / measured["vm-nocmp"]["wall_seconds"])
            vm_nospec_ips = (measured["vm-nospec"]["steps"]
                             / measured["vm-nospec"]["wall_seconds"])
            for name, backend, regalloc, cmp_fuse, specialize in MEASURED:
                best = measured[name]
                ips = best["steps"] / best["wall_seconds"]
                rows.append({
                    "workload": workload,
                    "configuration": configuration,
                    "backend": name,
                    "steps": best["steps"],
                    "branch_executions": best["branch_executions"],
                    "wall_seconds": round(best["wall_seconds"], 4),
                    "instructions_per_sec": round(ips),
                    "speedup_vs_interp": round(ips / baseline_ips, 2),
                    "speedup_vs_vm_base": round(ips / vm_base_ips, 2),
                    # The compare-and-branch fusion delta (ips over the same
                    # VM with BINOP_FF;BRANCH_* emitted unfused).
                    "speedup_vs_vm_nocmp": round(ips / vm_nocmp_ips, 3),
                    # The adaptive-specialization delta (ips over the same
                    # VM with unboxed ints, quickening and synthesized
                    # superinstructions all disabled — the PR 5 VM).
                    "speedup_vs_vm_nospec": round(ips / vm_nospec_ips, 3),
                })
    return rows


def specialize_summary(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """The ``specialize`` artifact block for ``BENCH_replay.json``.

    Per (workload, configuration): the specialized VM's ips, its speedup
    over the specialization-free PR 5 VM (``vm-nospec``), and the nospec
    row itself, which doubles as the proof the off path still runs (same
    steps, same branch counts, specialization knobs ignored).
    """

    summary: Dict[str, object] = {"workloads": {}}
    for row in rows:
        if row["backend"] not in ("vm", "vm-nospec"):
            continue
        key = f"{row['workload']}/{row['configuration']}"
        entry = summary["workloads"].setdefault(key, {})
        label = "specialize-on" if row["backend"] == "vm" else "specialize-off"
        entry[label] = {
            "instructions_per_sec": row["instructions_per_sec"],
            "steps": row["steps"],
            "branch_executions": row["branch_executions"],
            "speedup_vs_vm_nospec": row["speedup_vs_vm_nospec"],
        }
    speedups = [entry["specialize-on"]["speedup_vs_vm_nospec"]
                for entry in summary["workloads"].values()
                if "specialize-on" in entry]
    if speedups:
        summary["min_speedup_vs_nospec"] = min(speedups)
        summary["max_speedup_vs_nospec"] = max(speedups)
    return summary


def merge_specialize_artifact(summary: Dict[str, object],
                              path: str = "BENCH_replay.json") -> str:
    """Merge the ``specialize`` block into the PR-over-PR tracking artifact.

    ``bench_replay_search`` owns the artifact's top-level layout; this only
    adds/replaces the ``specialize`` key so the two bench files can run in
    either order without clobbering each other.
    """

    payload: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
        except (ValueError, OSError):
            loaded = {}
        if isinstance(loaded, dict):
            payload = loaded
    payload["specialize"] = summary
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
