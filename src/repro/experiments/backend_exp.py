"""Backend benchmark: the bytecode VM vs the tree-walking interpreter.

Both backends charge *steps* in identical tree-walker units (that is what the
differential parity tests pin down), so ``steps / wall_seconds`` is a fair
instructions-per-second comparison: the numerator is the same number on both
backends and only the execution substrate differs.

Measured per workload under two configurations:

* ``none`` — plain execution, no hooks observing branches;
* ``all branches`` — the full branch-logging runtime (every executed branch
  appends one bit to the 4 KB-buffered bitvector), the paper's worst-case
  instrumentation.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.environment import Environment
from repro.instrument.logger import BranchLogger
from repro.instrument.methods import InstrumentationMethod, build_plan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig
from repro.interp.tracer import NullHooks
from repro.lang.program import Program
from repro.vm.compiler import compile_program
from repro.workloads import fibonacci, microbench, userver


#: The measured execution substrates: both Backend implementations plus the
#: bytecode VM with register allocation disabled (the pre-slot "PR 3" VM),
#: which anchors the slot-frame speedup gate in ``bench_backends.py``.
MEASURED = (
    ("interp", "interp", True),
    ("vm-base", "vm", False),   # named-cell frames (no register allocation)
    ("vm", "vm", True),         # register-allocated frames
)


def bench_workloads(smoke: bool = False) -> List[tuple]:
    """``(workload, source, environment)`` triples sized for stable timing.

    ``smoke=True`` shrinks every scenario so the whole comparison finishes
    in seconds (the CI bench-smoke step); the full sizes are what the
    recorded speedups are quoted on.
    """

    if smoke:
        return [
            ("fibonacci", fibonacci.SOURCE, fibonacci.scenario_b()),
            ("microbench", microbench.SOURCE, microbench.scenario(2_000)),
            ("userver", userver.SOURCE, userver.saturation_workload(4)),
        ]
    return [
        ("fibonacci", fibonacci.SOURCE, fibonacci.scenario_b()),
        ("microbench", microbench.SOURCE, microbench.scenario(20_000)),
        ("userver", userver.SOURCE, userver.saturation_workload(30)),
    ]


def _timed_run(program: Program, environment: Environment, backend: str,
               register_allocation: bool, logged: bool) -> Dict[str, object]:
    if logged:
        plan = build_plan(InstrumentationMethod.ALL_BRANCHES,
                          program.branch_locations, log_syscalls=True)
        hooks = BranchLogger(plan)
    else:
        hooks = NullHooks()
    executor = create_backend(
        program,
        kernel=environment.make_kernel(),
        hooks=hooks,
        binder=InputBinder(mode=ExecutionMode.RECORD),
        config=ExecutionConfig(mode=ExecutionMode.RECORD, backend=backend,
                               register_allocation=register_allocation),
    )
    start = time.perf_counter()
    result = executor.run(environment.argv)
    wall = time.perf_counter() - start
    return {"steps": result.steps, "wall_seconds": wall,
            "branch_executions": result.branch_executions}


def backend_rows(repeats: int = 3, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per (workload, configuration, backend); best-of-``repeats``."""

    rows: List[Dict[str, object]] = []
    for workload, source, environment in bench_workloads(smoke):
        program = Program.from_source(source, name=workload)
        # Pay all compilations once, up front.
        compile_program(program)
        compile_program(program, resolve=False)
        for configuration, logged in (("none", False), ("all branches", True)):
            measured = {}
            for name, backend, regalloc in MEASURED:
                best = None
                for _ in range(repeats):
                    sample = _timed_run(program, environment, backend,
                                        regalloc, logged)
                    if best is None or sample["wall_seconds"] < best["wall_seconds"]:
                        best = sample
                measured[name] = best
            baseline_ips = (measured["interp"]["steps"]
                            / measured["interp"]["wall_seconds"])
            vm_base_ips = (measured["vm-base"]["steps"]
                           / measured["vm-base"]["wall_seconds"])
            for name, backend, regalloc in MEASURED:
                best = measured[name]
                ips = best["steps"] / best["wall_seconds"]
                rows.append({
                    "workload": workload,
                    "configuration": configuration,
                    "backend": name,
                    "steps": best["steps"],
                    "branch_executions": best["branch_executions"],
                    "wall_seconds": round(best["wall_seconds"], 4),
                    "instructions_per_sec": round(ips),
                    "speedup_vs_interp": round(ips / baseline_ips, 2),
                    "speedup_vs_vm_base": round(ips / vm_base_ips, 2),
                })
    return rows
