"""Closed-loop fleet experiment for ``repro.planner`` (the paper's §6 loop).

Simulates the full adaptive-instrumentation cycle over several generations:
a user-site recording under the current plan is shipped into a
:class:`~repro.service.ReproService` inbox, the replay search reproduces
the crash, and :meth:`~repro.service.ReproService.replan` folds the fleet's
evidence back into a new plan version.  The next generation records under
that revised plan, closing the loop the paper leaves open (its Table 3
plans are chosen once, offline).

Each row asserts the two properties the planner promises:

* **reproduction holds** — every generation's trace reproduces its crash
  (dropped branches were concrete-only, so the search tree is unchanged);
* **overhead falls** — the measured recording overhead is strictly lower
  in every generation that followed a replan.

``planner_rows`` additionally replays the whole fleet history twice in
two fresh roots and asserts the resulting plan ledgers are byte-identical
(replanning is a deterministic function of history and seed).  The
summary lands under the ``planner`` key of ``BENCH_replay.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.instrument.methods import InstrumentationMethod
from repro.planner import LEDGER_FILE, plan_version_of
from repro.replay.budget import ReplayBudget
from repro.service import ReproConfig, ReproService, workload_pipeline

__all__ = ["WORKLOADS", "fleet_config", "merge_planner_artifact",
           "planner_rows", "planner_summary", "run_generations"]

#: Fleet workloads: each must crash and reproduce under the default budget.
WORKLOADS: Tuple[str, ...] = ("mkdir-bug", "diff-exp1")

#: Generations recorded per workload: one base plan plus >= 3 replans.
GENERATIONS = 4


def fleet_config() -> ReproConfig:
    config = ReproConfig()
    config.replay.budget = ReplayBudget(max_runs=3000, max_seconds=120)
    config.service.replan_seed = 0
    return config


def run_generations(workload: str, root: str, config: ReproConfig,
                    generations: int = GENERATIONS) -> List[Dict[str, object]]:
    """Record/ship/reproduce/replan *generations* times; one row each.

    Generation 0 records under the full ``all branches`` plan; every later
    generation records under the newest ledger version.  Stops early only
    if the planner converges (no concrete-only branches left to drop).
    """

    rows: List[Dict[str, object]] = []
    pipeline, environment = workload_pipeline(workload, config=config)
    with ReproService(root, config=config) as service:
        plan = pipeline.make_plan(InstrumentationMethod.ALL_BRANCHES,
                                  environment=environment)
        for generation in range(generations):
            path = os.path.join(root, f"{workload}-gen{generation}.trace")
            recording = pipeline.record_trace(plan, environment, path)
            result = service.ingest_file(path)
            service.process()
            report = service.report(result.trace_id)
            assert report is not None and report.reproduced, (
                f"{workload} generation {generation} did not reproduce "
                f"under plan {plan.method!r}")
            rows.append({
                "workload": workload,
                "generation": generation,
                "plan_version": plan_version_of(plan.method) or 0,
                "method": getattr(plan.method, "value", plan.method),
                "instrumented": plan.instrumented_count(),
                "overhead_percent": round(
                    recording.overhead.overhead_percent, 3),
                "total_units": recording.overhead.total_units,
                "base_units": recording.baseline_steps,
                "reproduced": True,
                "search_runs": report.runs,
            })
            if generation == generations - 1:
                break
            revisions = service.replan()
            latest = service.plan_ledger.latest(workload)
            assert latest is not None
            if workload not in revisions:
                rows[-1]["converged"] = True
                break
            plan = latest.plan()
    return rows


def _assert_loop_properties(rows: List[Dict[str, object]]) -> None:
    """The acceptance gate: overhead strictly falls, reproduction holds."""

    by_workload: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        by_workload.setdefault(str(row["workload"]), []).append(row)
    for workload, history in by_workload.items():
        assert all(row["reproduced"] for row in history), workload
        overheads = [row["overhead_percent"] for row in history]
        for earlier, later in zip(overheads, overheads[1:]):
            assert later < earlier, (
                f"{workload}: overhead did not strictly fall across replans "
                f"({overheads})")
        replans = len(history) - 1
        assert replans >= 3, (
            f"{workload}: only {replans} replan generations before "
            f"convergence; the experiment needs >= 3")


def _ledger_bytes(root: str) -> bytes:
    with open(os.path.join(root, LEDGER_FILE), "rb") as handle:
        return handle.read()


def planner_rows(smoke: bool = False) -> List[Dict[str, object]]:
    """One row per (workload, generation), loop properties asserted.

    The entire fleet history runs twice, in two fresh roots with the same
    seed; the runs must produce byte-identical plan ledgers and identical
    rows, or replanning is not the deterministic function it claims to be.
    """

    workloads = WORKLOADS[:1] if smoke else WORKLOADS
    config = fleet_config()
    histories: List[List[Dict[str, object]]] = []
    ledgers: List[bytes] = []
    for _attempt in range(2):
        workdir = tempfile.mkdtemp(prefix="repro-planner-bench-")
        try:
            rows: List[Dict[str, object]] = []
            for workload in workloads:
                rows.extend(run_generations(workload, workdir, config))
            histories.append(rows)
            ledgers.append(_ledger_bytes(workdir))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    assert ledgers[0] == ledgers[1], (
        "same history + same seed must yield a byte-identical plan ledger")
    assert histories[0] == histories[1], (
        "same history + same seed must yield identical generation rows")
    _assert_loop_properties(histories[0])
    return histories[0]


def planner_summary(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """The ``planner`` artifact block for ``BENCH_replay.json``."""

    summary: Dict[str, object] = {"workloads": {}, "deterministic": True}
    for row in rows:
        entry = summary["workloads"].setdefault(str(row["workload"]), {
            "generations": [],
        })
        entry["generations"].append({
            "generation": row["generation"],
            "plan_version": row["plan_version"],
            "instrumented": row["instrumented"],
            "overhead_percent": row["overhead_percent"],
            "reproduced": row["reproduced"],
        })
    for workload, entry in summary["workloads"].items():
        history = entry["generations"]
        first = history[0]["overhead_percent"]
        last = history[-1]["overhead_percent"]
        entry["replans"] = len(history) - 1
        entry["overhead_first_percent"] = first
        entry["overhead_last_percent"] = last
        entry["overhead_reduction_percent"] = (
            round(100.0 * (first - last) / first, 2) if first else 0.0)
        entry["reproduction_rate"] = 1.0
    return summary


def merge_planner_artifact(summary: Dict[str, object],
                           path: str = "BENCH_replay.json") -> str:
    """Merge the ``planner`` block into the PR-over-PR tracking artifact.

    ``bench_replay_search`` owns the artifact's top-level layout; this only
    adds/replaces the ``planner`` key so the bench files can run in any
    order without clobbering each other.
    """

    payload: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
        except (ValueError, OSError):
            loaded = {}
        if isinstance(loaded, dict):
            payload = loaded
    payload["planner"] = summary
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
