"""Experiment generators: one function per table/figure of the paper.

These functions are shared by the ``benchmarks/`` harness (which times them and
prints the regenerated rows) and by ``EXPERIMENTS.md``.  Every function returns
a list of row dictionaries so the output can be printed, asserted on, or dumped
to JSON.

Scale note: the paper's absolute numbers come from native execution of the real
programs; this reproduction interprets MiniC re-implementations, so workload
sizes and budgets are scaled down (see DESIGN.md §2).  The *shape* of each
table/figure — which method wins, roughly by how much, and where the
configurations fail — is what the generators reproduce.
"""

from repro.experiments.formatting import format_table, print_table
from repro.experiments import (
    backend_exp,
    coreutils_exp,
    diff_exp,
    micro_exp,
    net_exp,
    planner_exp,
    replay_search_exp,
    service_exp,
    userver_exp,
)

__all__ = [
    "backend_exp",
    "coreutils_exp",
    "diff_exp",
    "format_table",
    "micro_exp",
    "net_exp",
    "planner_exp",
    "print_table",
    "replay_search_exp",
    "service_exp",
    "userver_exp",
]
