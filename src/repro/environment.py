"""Execution environments: argv plus a factory for the simulated OS state.

Every stage that runs the program (recording, dynamic analysis, replay) needs a
fresh :class:`~repro.osmodel.kernel.Kernel` per run, because kernel state
(file offsets, network scripts, stdin position) is consumed by execution.  An
:class:`Environment` bundles the argv vector with a kernel factory so each run
starts from an identical simulated machine.

Replay uses :meth:`Environment.scaffold` — an environment with the same
*structure* (argument lengths, stdin length, file sizes, connection count and
request lengths) but with the user's actual data blanked out.  This mirrors the
paper's privacy stance: the developer never receives input contents, only the
branch bitvector and (optionally) selected syscall results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.osmodel.filesystem import FileSystem
from repro.osmodel.kernel import Kernel, KernelConfig
from repro.osmodel.network import NetworkModel, NetworkScript, ScriptedConnection


@dataclass
class Environment:
    """argv plus a kernel factory describing one execution scenario."""

    argv: List[str]
    kernel_factory: Callable[[], Kernel] = Kernel
    name: str = "scenario"

    def make_kernel(self) -> Kernel:
        return self.kernel_factory()

    # -- scaffolding for replay -------------------------------------------------------

    def scaffold(self) -> "Environment":
        """An environment with identical structure but blanked-out user data.

        The argv strings keep their lengths (content replaced by ``A``), stdin
        keeps its length, scripted requests keep their lengths, and the
        filesystem keeps its paths and file sizes.  The replay engine combines
        this scaffold with solver-chosen input bytes.

        Arguments that name a path of the (structurally preserved) filesystem
        are kept verbatim: the path string is already disclosed by the
        filesystem scaffold, and blanking the argument would leave replay
        unable to ``open`` the very files whose *contents* the privacy model
        actually protects (the diff workloads hit exactly this).  The check
        is string equality, so an argument that merely *collides* with a path
        name without being used as a path (e.g. a search pattern equal to a
        file's name) is also kept — a known over-disclosure limit of this
        heuristic; the path string itself is public either way via the
        filesystem snapshot, only the fact that an argv slot contains it is
        revealed.
        """

        template = self.make_kernel()
        known_paths = set(template.fs.snapshot())
        blank_argv = [self.argv[0]] + [
            arg if arg in known_paths else "A" * len(arg)
            for arg in self.argv[1:]
        ]

        def factory() -> Kernel:
            kernel = self.make_kernel()
            kernel.config = KernelConfig(
                stdin_data=b"A" * len(kernel.config.stdin_data),
                read_chunk_limit=kernel.config.read_chunk_limit,
                max_idle_selects=kernel.config.max_idle_selects,
            )
            blank_fs = FileSystem()
            for path, entry in kernel.fs.snapshot().items():
                if path == "/":
                    continue
                original = kernel.fs.get(path)
                kind = original.kind if original else "file"
                blank_fs.add_file(path, b"A" * len(entry), kind=kind)
            kernel.fs = blank_fs
            blank_connections = [
                ScriptedConnection(request=b"A" * len(conn.request),
                                   arrival_step=conn.arrival_step,
                                   chunks=conn.chunks)
                for conn in kernel.net.script.connections
            ]
            kernel.net = NetworkModel(NetworkScript(connections=blank_connections))
            return kernel

        del template  # only built to mirror the public contract; not reused
        return Environment(argv=blank_argv, kernel_factory=factory,
                           name=f"{self.name}-scaffold")


def simple_environment(argv: Sequence[str], stdin: bytes = b"",
                       files: Optional[dict] = None,
                       requests: Optional[Sequence[bytes]] = None,
                       name: str = "scenario",
                       read_chunk_limit: int = 0) -> Environment:
    """Convenience constructor used by workloads and tests.

    ``files`` maps path -> bytes; ``requests`` is the scripted client workload
    delivered through the network model.
    """

    argv_list = list(argv)
    files = dict(files or {})
    request_list = [bytes(r) for r in (requests or ())]

    def factory() -> Kernel:
        fs = FileSystem()
        for path, data in files.items():
            fs.add_file(path, bytes(data))
        net = NetworkModel(NetworkScript.from_requests(request_list))
        return Kernel(filesystem=fs, network=net,
                      config=KernelConfig(stdin_data=bytes(stdin),
                                          read_chunk_limit=read_chunk_limit))

    return Environment(argv=argv_list, kernel_factory=factory, name=name)
