"""The simulated kernel: the syscall layer the MiniC builtins call into.

The kernel owns the filesystem, the network model, the file-descriptor table
and standard input/output.  Every syscall is recorded in a
:class:`~repro.osmodel.syscalls.SyscallTrace` so that the instrumentation layer
can later decide which results to log (the paper's "selective system call
logging").

The kernel itself is deterministic given its inputs; the non-determinism the
paper worries about comes from the *program's* point of view: it cannot predict
how many bytes ``read``/``recv`` return or which descriptor ``select`` reports
ready, so those results must either be logged or searched for during replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.osmodel.filesystem import FileSystem
from repro.osmodel.network import Connection, NetworkModel, NetworkScript
from repro.osmodel.syscalls import SyscallEvent, SyscallKind, SyscallTrace

FD_STDIN = 0
FD_STDOUT = 1
FD_STDERR = 2


@dataclass
class KernelConfig:
    """Tunables for the simulated kernel."""

    stdin_data: bytes = b""
    # 0 means "no artificial short reads": read()/recv() return everything
    # available up to the requested size.  A positive value caps every
    # transfer, which exercises the short-read handling of the workloads.
    read_chunk_limit: int = 0
    # Maximum select() calls that may return -1 (nothing ready) in a row
    # before the kernel reports the workload as finished; keeps buggy guest
    # loops from spinning forever.
    max_idle_selects: int = 16


@dataclass
class _Descriptor:
    """One open file descriptor."""

    fd: int
    kind: str  # "file" | "conn" | "listen" | "stdin" | "stdout" | "stderr"
    path: str = ""
    offset: int = 0
    connection: Optional[Connection] = None


class Kernel:
    """The simulated kernel instance backing one program execution."""

    def __init__(self, filesystem: Optional[FileSystem] = None,
                 network: Optional[NetworkModel] = None,
                 config: Optional[KernelConfig] = None) -> None:
        self.fs = filesystem or FileSystem()
        self.net = network or NetworkModel(NetworkScript())
        self.config = config or KernelConfig()
        self.trace = SyscallTrace()
        self.stdout = bytearray()
        self.stderr = bytearray()
        self._stdin_pos = 0
        self._fd_table: Dict[int, _Descriptor] = {
            FD_STDIN: _Descriptor(FD_STDIN, "stdin"),
            FD_STDOUT: _Descriptor(FD_STDOUT, "stdout"),
            FD_STDERR: _Descriptor(FD_STDERR, "stderr"),
        }
        self._next_fd = 3
        self._idle_selects = 0

    # -- helpers -----------------------------------------------------------------

    def _alloc_fd(self, descriptor: _Descriptor) -> int:
        fd = self._next_fd
        self._next_fd += 1
        descriptor.fd = fd
        self._fd_table[fd] = descriptor
        return fd

    def _record(self, kind: SyscallKind, args: Tuple[int, ...], result: int,
                data: bytes = b"") -> int:
        self.trace.append(SyscallEvent(kind=kind, args=args, result=result, data=data))
        return result

    def descriptor(self, fd: int) -> Optional[_Descriptor]:
        return self._fd_table.get(fd)

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    # -- file syscalls --------------------------------------------------------------

    def sys_open(self, path: str, flags: int = 0) -> int:
        entry = self.fs.get(path)
        if entry is None or entry.kind == "dir":
            return self._record(SyscallKind.OPEN, (flags,), -1)
        fd = self._alloc_fd(_Descriptor(-1, "file", path=path))
        return self._record(SyscallKind.OPEN, (flags,), fd)

    def sys_read(self, fd: int, nbytes: int) -> Tuple[int, bytes]:
        """Read up to *nbytes*; returns ``(count, data)`` with count -1 on error."""

        descriptor = self._fd_table.get(fd)
        if descriptor is None:
            self._record(SyscallKind.READ, (fd, nbytes), -1)
            return -1, b""
        if descriptor.kind == "stdin":
            data = self.config.stdin_data[self._stdin_pos:self._stdin_pos + nbytes]
            if self.config.read_chunk_limit:
                data = data[: self.config.read_chunk_limit]
            self._stdin_pos += len(data)
            self._record(SyscallKind.READ, (fd, nbytes), len(data), data)
            return len(data), data
        if descriptor.kind == "conn":
            return self._recv_from(descriptor, fd, nbytes, SyscallKind.READ)
        if descriptor.kind != "file":
            self._record(SyscallKind.READ, (fd, nbytes), -1)
            return -1, b""
        entry = self.fs.get(descriptor.path)
        if entry is None:
            self._record(SyscallKind.READ, (fd, nbytes), -1)
            return -1, b""
        limit = nbytes
        if self.config.read_chunk_limit:
            limit = min(limit, self.config.read_chunk_limit)
        data = entry.data[descriptor.offset:descriptor.offset + limit]
        descriptor.offset += len(data)
        self._record(SyscallKind.READ, (fd, nbytes), len(data), data)
        return len(data), data

    def sys_write(self, fd: int, data: bytes) -> int:
        descriptor = self._fd_table.get(fd)
        if descriptor is None:
            return self._record(SyscallKind.WRITE, (fd, len(data)), -1)
        if descriptor.kind == "stdout":
            self.stdout.extend(data)
        elif descriptor.kind == "stderr":
            self.stderr.extend(data)
        elif descriptor.kind == "conn" and descriptor.connection is not None:
            descriptor.connection.write(data)
        elif descriptor.kind == "file":
            entry = self.fs.get(descriptor.path)
            if entry is None:
                return self._record(SyscallKind.WRITE, (fd, len(data)), -1)
            entry.data += data
        else:
            return self._record(SyscallKind.WRITE, (fd, len(data)), -1)
        return self._record(SyscallKind.WRITE, (fd, len(data)), len(data))

    def sys_close(self, fd: int) -> int:
        descriptor = self._fd_table.pop(fd, None)
        if descriptor is None:
            return self._record(SyscallKind.CLOSE, (fd,), -1)
        if descriptor.kind == "conn":
            self.net.close(descriptor.connection.conn_id if descriptor.connection else fd)
        return self._record(SyscallKind.CLOSE, (fd,), 0)

    def sys_mkdir(self, path: str, mode: int = 0o755) -> int:
        ok = self.fs.mkdir(path, mode)
        return self._record(SyscallKind.MKDIR, (mode,), 0 if ok else -1)

    def sys_mknod(self, path: str, mode: int = 0o644) -> int:
        ok = self.fs.mknod(path, mode, kind="node")
        return self._record(SyscallKind.MKNOD, (mode,), 0 if ok else -1)

    def sys_mkfifo(self, path: str, mode: int = 0o644) -> int:
        ok = self.fs.mknod(path, mode, kind="fifo")
        return self._record(SyscallKind.MKFIFO, (mode,), 0 if ok else -1)

    def sys_stat(self, path: str) -> int:
        return self._record(SyscallKind.STAT, (), 0 if self.fs.exists(path) else -1)

    def sys_unlink(self, path: str) -> int:
        return self._record(SyscallKind.UNLINK, (), 0 if self.fs.unlink(path) else -1)

    def sys_getchar(self) -> int:
        if self._stdin_pos >= len(self.config.stdin_data):
            return self._record(SyscallKind.GETCHAR, (), -1)
        ch = self.config.stdin_data[self._stdin_pos]
        self._stdin_pos += 1
        return self._record(SyscallKind.GETCHAR, (), ch, bytes([ch]))

    # -- network syscalls --------------------------------------------------------------

    def sys_listen(self) -> int:
        fd = self._alloc_fd(_Descriptor(-1, "listen"))
        return self._record(SyscallKind.LISTEN, (), fd)

    def sys_select(self) -> int:
        """Return one ready descriptor, or -1 when nothing is ready.

        Priority: a pending (not yet accepted) connection is reported through
        the listen descriptor; otherwise the lowest-numbered readable accepted
        connection is returned.  This captures the paper's point that without
        logging, replay would have to consider every possible ready set.
        """

        self.net.advance()
        listen_fd = next((fd for fd, d in self._fd_table.items() if d.kind == "listen"), -1)
        if listen_fd >= 0 and self.net.pending_connection():
            self._idle_selects = 0
            return self._record(SyscallKind.SELECT, (), listen_fd)
        for fd in sorted(self._fd_table):
            descriptor = self._fd_table[fd]
            if descriptor.kind == "conn" and descriptor.connection is not None:
                if self.net.readable(descriptor.connection.conn_id):
                    self._idle_selects = 0
                    return self._record(SyscallKind.SELECT, (), fd)
        self._idle_selects += 1
        return self._record(SyscallKind.SELECT, (), -1)

    def workload_finished(self) -> bool:
        """True when the scripted workload is fully delivered and drained."""

        return self.net.all_done() or self._idle_selects > self.config.max_idle_selects

    def sys_accept(self, listen_fd: int) -> int:
        descriptor = self._fd_table.get(listen_fd)
        if descriptor is None or descriptor.kind != "listen":
            return self._record(SyscallKind.ACCEPT, (listen_fd,), -1)
        conn_descriptor = _Descriptor(-1, "conn")
        fd = self._alloc_fd(conn_descriptor)
        connection = self.net.accept(fd)
        if connection is None:
            del self._fd_table[fd]
            self._next_fd -= 1
            return self._record(SyscallKind.ACCEPT, (listen_fd,), -1)
        conn_descriptor.connection = connection
        return self._record(SyscallKind.ACCEPT, (listen_fd,), fd)

    def _recv_from(self, descriptor: _Descriptor, fd: int, nbytes: int,
                   kind: SyscallKind) -> Tuple[int, bytes]:
        connection = descriptor.connection
        if connection is None:
            self._record(kind, (fd, nbytes), -1)
            return -1, b""
        limit = nbytes
        if self.config.read_chunk_limit:
            limit = min(limit, self.config.read_chunk_limit)
        data = connection.read(limit)
        self._record(kind, (fd, nbytes), len(data), data)
        return len(data), data

    def sys_recv(self, fd: int, nbytes: int) -> Tuple[int, bytes]:
        descriptor = self._fd_table.get(fd)
        if descriptor is None or descriptor.kind != "conn":
            self._record(SyscallKind.RECV, (fd, nbytes), -1)
            return -1, b""
        return self._recv_from(descriptor, fd, nbytes, SyscallKind.RECV)

    def sys_send(self, fd: int, data: bytes) -> int:
        descriptor = self._fd_table.get(fd)
        if descriptor is None or descriptor.kind != "conn" or descriptor.connection is None:
            return self._record(SyscallKind.SEND, (fd, len(data)), -1)
        descriptor.connection.write(data)
        return self._record(SyscallKind.SEND, (fd, len(data)), len(data))
