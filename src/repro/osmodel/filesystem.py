"""An in-memory filesystem for the simulated kernel.

Only the features the workloads need are implemented: named byte files,
directories (for ``mkdir``/``mknod``/``mkfifo``), sequential reads and writes,
and existence checks.  The filesystem is deterministic; non-determinism enters
only through the kernel's short-read policy and the network model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimulatedFile:
    """A regular file: a name and its content bytes."""

    path: str
    data: bytes = b""
    kind: str = "file"  # "file" | "dir" | "fifo" | "node"
    mode: int = 0o644

    def size(self) -> int:
        return len(self.data)


class FileSystem:
    """A flat in-memory filesystem keyed by path string."""

    def __init__(self) -> None:
        self._entries: Dict[str, SimulatedFile] = {"/": SimulatedFile("/", kind="dir")}

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._entries

    def is_dir(self, path: str) -> bool:
        entry = self._entries.get(self._normalize(path))
        return entry is not None and entry.kind == "dir"

    def get(self, path: str) -> Optional[SimulatedFile]:
        return self._entries.get(self._normalize(path))

    def listdir(self) -> List[str]:
        return sorted(self._entries)

    def entry_count(self) -> int:
        return len(self._entries)

    # -- mutation ----------------------------------------------------------------

    def add_file(self, path: str, data: bytes = b"", kind: str = "file",
                 mode: int = 0o644) -> SimulatedFile:
        """Create (or replace) an entry; parent directories are implicit."""

        path = self._normalize(path)
        entry = SimulatedFile(path=path, data=data, kind=kind, mode=mode)
        self._entries[path] = entry
        return entry

    def mkdir(self, path: str, mode: int = 0o755) -> bool:
        """Create a directory; returns False if the path already exists."""

        path = self._normalize(path)
        if path in self._entries:
            return False
        parent = self._parent(path)
        if parent not in self._entries or self._entries[parent].kind != "dir":
            return False
        self._entries[path] = SimulatedFile(path=path, kind="dir", mode=mode)
        return True

    def mknod(self, path: str, mode: int = 0o644, kind: str = "node") -> bool:
        path = self._normalize(path)
        if path in self._entries:
            return False
        self._entries[path] = SimulatedFile(path=path, kind=kind, mode=mode)
        return True

    def unlink(self, path: str) -> bool:
        path = self._normalize(path)
        if path not in self._entries or path == "/":
            return False
        del self._entries[path]
        return True

    def write(self, path: str, data: bytes, append: bool = False) -> int:
        path = self._normalize(path)
        entry = self._entries.get(path)
        if entry is None:
            entry = self.add_file(path)
        if append:
            entry.data += data
        else:
            entry.data = data
        return len(data)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        while "//" in path:
            path = path.replace("//", "/")
        if len(path) > 1 and path.endswith("/"):
            path = path[:-1]
        return path

    @classmethod
    def _parent(cls, path: str) -> str:
        path = cls._normalize(path)
        if path == "/":
            return "/"
        head = path.rsplit("/", 1)[0]
        return head or "/"

    def snapshot(self) -> Dict[str, bytes]:
        """Path -> content map, used by tests to assert program effects."""

        return {path: entry.data for path, entry in self._entries.items()}

    def entries(self) -> List[SimulatedFile]:
        """Every entry except the implicit root, in insertion order.

        Unlike :meth:`snapshot` this keeps the entry *kind* (file, dir, fifo,
        node) and mode, which the trace serializer needs to rebuild a
        behaviourally identical filesystem in another process.
        """

        return [entry for path, entry in self._entries.items() if path != "/"]
