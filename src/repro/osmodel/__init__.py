"""A simulated operating system substrate.

The paper's benchmarks run on Linux and interact with the kernel through
syscalls whose results are a principal source of non-determinism (``read``
return values, the set of descriptors ready after ``select``).  This package
provides an in-memory equivalent with exactly the properties the paper's
syscall-logging tradeoff depends on:

* an in-memory :class:`~repro.osmodel.filesystem.FileSystem`,
* a :class:`~repro.osmodel.network.NetworkModel` that delivers scripted client
  connections and request bytes (the httperf analogue feeds this),
* a :class:`~repro.osmodel.kernel.Kernel` exposing the syscall layer the MiniC
  builtins call into, recording a :class:`~repro.osmodel.syscalls.SyscallEvent`
  for every call so the instrumentation layer can decide what to log.
"""

from repro.osmodel.filesystem import FileSystem, SimulatedFile
from repro.osmodel.kernel import Kernel, KernelConfig
from repro.osmodel.network import Connection, NetworkModel, NetworkScript
from repro.osmodel.syscalls import SyscallEvent, SyscallKind

__all__ = [
    "Connection",
    "FileSystem",
    "Kernel",
    "KernelConfig",
    "NetworkModel",
    "NetworkScript",
    "SimulatedFile",
    "SyscallEvent",
    "SyscallKind",
]
