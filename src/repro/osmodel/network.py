"""A scripted network model: the httperf analogue.

The uServer workload is driven by a :class:`NetworkScript`, an ordered list of
client connections each carrying request bytes.  The script describes *what*
arrives; the :class:`NetworkModel` decides *when* it becomes visible to the
guest program (connection arrival interleaving and per-``recv`` chunking),
which is exactly the non-determinism the paper's ``select``/``read`` logging
targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ScriptedConnection:
    """One scripted client connection."""

    request: bytes
    arrival_step: int = 0
    # Optional chunking: sizes of the successive recv() results.  Empty means
    # "deliver everything that is available" (no artificial short reads).
    chunks: Sequence[int] = ()


@dataclass
class NetworkScript:
    """The full client workload for one server execution."""

    connections: List[ScriptedConnection] = field(default_factory=list)

    @classmethod
    def from_requests(cls, requests: Sequence[bytes],
                      chunk_size: int = 0) -> "NetworkScript":
        """Build a script where request *i* arrives at step *i*.

        ``chunk_size`` > 0 forces each recv() to deliver at most that many
        bytes, exercising the short-read paths of the parser.
        """

        connections = []
        for index, request in enumerate(requests):
            chunks: Sequence[int] = ()
            if chunk_size > 0:
                chunks = [chunk_size] * ((len(request) + chunk_size - 1) // chunk_size)
            connections.append(ScriptedConnection(request=bytes(request),
                                                  arrival_step=index,
                                                  chunks=chunks))
        return cls(connections=connections)

    def total_bytes(self) -> int:
        return sum(len(c.request) for c in self.connections)

    def __len__(self) -> int:
        return len(self.connections)


class Connection:
    """Kernel-side state of one accepted connection."""

    def __init__(self, conn_id: int, request: bytes, chunks: Sequence[int] = ()) -> None:
        self.conn_id = conn_id
        self.request = request
        self.position = 0
        self.chunks = list(chunks)
        self.chunk_index = 0
        self.sent: bytes = b""
        self.closed = False

    def available(self) -> int:
        return len(self.request) - self.position

    def next_chunk_limit(self) -> Optional[int]:
        if self.chunk_index < len(self.chunks):
            return self.chunks[self.chunk_index]
        return None

    def read(self, max_bytes: int) -> bytes:
        """Consume up to *max_bytes* of the pending request bytes."""

        limit = self.next_chunk_limit()
        if limit is not None:
            max_bytes = min(max_bytes, limit)
            self.chunk_index += 1
        data = self.request[self.position:self.position + max_bytes]
        self.position += len(data)
        return data

    def write(self, data: bytes) -> int:
        self.sent += data
        return len(data)


class NetworkModel:
    """Delivers scripted connections to the guest program.

    The model exposes the three operations the kernel needs:

    * :meth:`pending_connection` — is a new client waiting to be accepted?
    * :meth:`accept` — accept the next scripted connection,
    * :meth:`readable` — does an accepted connection have unread bytes?
    """

    def __init__(self, script: Optional[NetworkScript] = None) -> None:
        self.script = script or NetworkScript()
        self._next_to_arrive = 0
        self._step = 0
        self.connections: Dict[int, Connection] = {}
        self._accepted = 0

    def advance(self) -> None:
        """Advance simulated time by one step (called on each select)."""

        self._step += 1

    def pending_connection(self) -> bool:
        if self._next_to_arrive >= len(self.script.connections):
            return False
        return self.script.connections[self._next_to_arrive].arrival_step <= self._step

    def accept(self, conn_id: int) -> Optional[Connection]:
        """Accept the next scripted connection under the given id."""

        if not self.pending_connection():
            return None
        scripted = self.script.connections[self._next_to_arrive]
        self._next_to_arrive += 1
        self._accepted += 1
        connection = Connection(conn_id, scripted.request, scripted.chunks)
        self.connections[conn_id] = connection
        return connection

    def readable(self, conn_id: int) -> bool:
        connection = self.connections.get(conn_id)
        return bool(connection and not connection.closed and connection.available() > 0)

    def readable_connections(self) -> List[int]:
        return [cid for cid in sorted(self.connections) if self.readable(cid)]

    def close(self, conn_id: int) -> None:
        connection = self.connections.get(conn_id)
        if connection is not None:
            connection.closed = True

    def all_done(self) -> bool:
        """True when every scripted connection has arrived and been drained."""

        if self._next_to_arrive < len(self.script.connections):
            return False
        return not any(self.readable(cid) for cid in self.connections)

    def accepted_count(self) -> int:
        return self._accepted

    def responses(self) -> Dict[int, bytes]:
        """Bytes the guest sent back on each connection (for assertions)."""

        return {cid: conn.sent for cid, conn in self.connections.items()}
