"""Syscall event records shared by the kernel, the logger and the replayer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class SyscallKind(enum.Enum):
    """The syscalls the simulated kernel implements.

    The paper singles out ``read`` and ``select`` as calls whose results are
    worth logging because symbolic replay would otherwise have to search over
    their possible outcomes; the other calls are included because the
    workloads need them, and their results are deterministic given the
    simulated environment.
    """

    OPEN = "open"
    READ = "read"
    WRITE = "write"
    CLOSE = "close"
    SELECT = "select"
    ACCEPT = "accept"
    RECV = "recv"
    SEND = "send"
    LISTEN = "listen"
    GETCHAR = "getchar"
    MKDIR = "mkdir"
    MKNOD = "mknod"
    MKFIFO = "mkfifo"
    STAT = "stat"
    UNLINK = "unlink"


#: Syscalls whose results the paper's "selective system call logging" records.
LOGGED_BY_DEFAULT = frozenset({
    SyscallKind.READ,
    SyscallKind.RECV,
    SyscallKind.SELECT,
    SyscallKind.ACCEPT,
    SyscallKind.GETCHAR,
})

#: Syscalls whose outcome is non-deterministic from the program's viewpoint.
NON_DETERMINISTIC = frozenset({
    SyscallKind.READ,
    SyscallKind.RECV,
    SyscallKind.SELECT,
    SyscallKind.ACCEPT,
    SyscallKind.GETCHAR,
})


@dataclass
class SyscallEvent:
    """One executed syscall: its kind, arguments and result.

    ``result`` is the integer return value visible to the guest program.
    ``data`` carries the bytes transferred into the guest (for ``read`` and
    ``recv``); the instrumentation layer never logs these bytes (the paper
    explicitly avoids logging input data), only the return value.
    """

    kind: SyscallKind
    args: Tuple[int, ...] = ()
    result: int = 0
    data: bytes = b""
    sequence: int = 0

    def summary(self) -> str:
        return f"{self.kind.value}({', '.join(map(str, self.args))}) = {self.result}"


@dataclass
class SyscallTrace:
    """The ordered list of syscall events produced by one execution."""

    events: List[SyscallEvent] = field(default_factory=list)

    def append(self, event: SyscallEvent) -> None:
        event.sequence = len(self.events)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: SyscallKind) -> List[SyscallEvent]:
        return [e for e in self.events if e.kind is kind]

    def results_of(self, kind: SyscallKind) -> List[int]:
        return [e.result for e in self.events if e.kind is kind]
