"""The MiniC bytecode virtual machine.

A :class:`VirtualMachine` is a drop-in replacement for
:class:`~repro.interp.interpreter.Interpreter`: it executes one run of a
program, computes with the same :class:`ConcolicValue`/:class:`Pointer`
values, reports the same :class:`BranchEvent`/syscall stream to the installed
:class:`ExecutionHooks`, and produces an identical
:class:`~repro.interp.interpreter.ExecutionResult` (including the ``steps``
count, which the compiler charges in tree-walker units — see
:mod:`repro.vm.compiler`).  Builtins are shared with the interpreter
unchanged: the machine exposes the same ``kernel``/``binder``/``hooks``
surface the builtin functions expect from their first argument.

What makes it faster than the tree-walker is purely the execution substrate:
a flat dispatch loop over pre-lowered instruction tuples instead of recursive
``isinstance``-dispatched AST visits, and an undo-log scope representation
that makes variable lookups a single dict probe.

When the installed hooks are the branch-logging runtime
(:class:`~repro.instrument.logger.BranchLogger`) or the replay-run policy
(:class:`~repro.replay.hooks.ReplayRunHooks`) — recognised duck-typed via
their ``vm_inline`` attribute — the machine additionally runs
*plan-specialized* code (see :mod:`repro.vm.compiler`): instrumented branches
execute ``BRANCH_LOGGED`` with the bitvector append (record) or
append/compare cursor walk (replay) inlined into the dispatch loop, and all
other branches execute the hook-free ``BRANCH_BARE``.  Only the rare slow
paths (symbolic conditions, bitvector mismatches) call back into the hook
object, whose bookkeeping the machine merges at the end of the run so the
observable behaviour is bit-identical to the unspecialized engines.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.interp.inputs import InputBinder
from repro.interp.interpreter import (
    ExecutionConfig,
    ExecutionResult,
    GUEST_EXCEPTIONS,
    build_main_args,
    classify_run_exception,
)
from repro.interp.tracer import BranchEvent, ExecutionHooks, NullHooks
from repro.interp.values import (
    ArrayObject,
    ConcolicValue,
    ONE,
    Pointer,
    Value,
    ZERO,
    as_int,
    binary_int_op,
    concrete,
    pointer_binary_op,
    string_to_array,
    unary_int_op,
)
from repro.lang.errors import (
    DivisionByZeroError,
    ProgramCrash,
    RuntimeMiniCError,
    StepLimitExceeded,
)
from repro.lang.program import Program
from repro.osmodel.kernel import Kernel
from repro.osmodel.syscalls import SyscallKind
from repro.symbolic.expr import as_condition
from repro.vm import opcodes as op
from repro.vm import synth
from repro.vm.code import CodeObject
from repro.vm.compiler import compile_program, unboxed_form

_MISSING = object()

#: Lazily built profiling variant of the dispatch loop; ``None`` until the
#: first request, ``False`` if the source is unavailable (frozen builds).
_PROFILED_EXEC_CACHE: List[object] = [None]


def _build_profiled_exec():
    """Generate the per-opcode-counting dispatch loop from the real one.

    The profiler requirement is *zero* overhead when off — not even one
    flag test per dispatched instruction — so instead of branching inside
    the hot loop, a profiling variant of :meth:`VirtualMachine._exec_code`
    is generated mechanically from its own source: parse it, insert
    ``_profile[opcode] = _profile.get(opcode, 0) + 1`` right after the
    instruction fetch, and compile the result in this module's namespace.
    The shipped loop stays untouched (the off path executes literally
    unmodified code), and the profiled loop cannot drift from it because it
    *is* it.  Returns ``None`` when the source cannot be retrieved.
    """

    import ast
    import inspect
    import textwrap

    try:
        lines, first_line = inspect.getsourcelines(VirtualMachine._exec_code)
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except (OSError, TypeError, SyntaxError):  # pragma: no cover - frozen
        return None
    fn = tree.body[0]
    if not isinstance(fn, ast.FunctionDef):  # pragma: no cover - defensive
        return None
    loop = next((node for node in fn.body if isinstance(node, ast.While)),
                None)
    if loop is None:  # pragma: no cover - defensive
        return None
    # Count right after the first statement that binds ``opcode`` (the
    # instruction fetch) so every dispatch iteration counts exactly once,
    # before any opcode arm can ``continue``.
    fetch_index = None
    for index, stmt in enumerate(loop.body):
        if isinstance(stmt, ast.Assign) and any(
                isinstance(el, ast.Name) and el.id == "opcode"
                for target in stmt.targets
                if isinstance(target, ast.Tuple) for el in target.elts):
            fetch_index = index
            break
    if fetch_index is None:  # pragma: no cover - defensive
        return None
    counting = ast.parse(
        "_profile[opcode] = _profile.get(opcode, 0) + 1").body[0]
    loop.body.insert(fetch_index + 1, counting)
    fn.body.insert(0, ast.parse("_profile = self.opcode_counts").body[0])
    fn.name = "_exec_code_profiled"
    ast.fix_missing_locations(tree)
    ast.increment_lineno(tree, first_line - 1)
    namespace: Dict[str, object] = {}
    exec(compile(tree, __file__, "exec"), globals(), namespace)
    return namespace["_exec_code_profiled"]


def _profiled_exec_code():
    """The cached profiling dispatch loop, or ``None`` if unavailable."""

    cached = _PROFILED_EXEC_CACHE[0]
    if cached is None:
        cached = _build_profiled_exec()
        _PROFILED_EXEC_CACHE[0] = cached if cached is not None else False
    return None if cached is False else cached

#: Interned concrete values for the slot superinstructions' inline
#: arithmetic.  ``ConcolicValue`` is a frozen dataclass — construction costs
#: more than the arithmetic itself — and immutable, so results in the common
#: small range (loop counters, comparisons, character codes) share one
#: instance exactly like the compiler's prebuilt CONST operands do.
_SMALL_INTS = tuple(ConcolicValue(i) for i in range(1025))
_NSMALL = len(_SMALL_INTS)

#: Generic binary sites the runtime quickening pass may rewrite to their
#: unboxed forms, grouped by where the operand slots live in the arg tuple:
#: FC-shaped args carry one slot at index 1, FF-shaped args carry two slots
#: at indexes 1 and 2 (identical before and after branch-target patching).
_QUICKEN_FC_SITES = frozenset((op.BINOP_FC, op.BINOP_FC_STORE,
                               op.BINOP_FC_BRANCH, op.BINOP_FC_BRANCH_BARE,
                               op.BINOP_FC_BRANCH_LOGGED))
_QUICKEN_FF_SITES = frozenset((op.BINOP_FF, op.BINOP_FF_STORE,
                               op.BINOP_FF_BRANCH, op.BINOP_FF_BRANCH_BARE,
                               op.BINOP_FF_BRANCH_LOGGED))


#: Shared slot list for frames of functions without register-allocated
#: locals; never written (STORE_FAST is only emitted when ``nlocals > 0``).
_NO_SLOTS: List[Value] = []

#: Shared named-cell state for *bare* frames (fully slotted functions):
#: reachable code in such functions contains no named-cell or scope opcode,
#: so the dict and undo log are provably never mutated and one empty
#: instance serves every call.
_EMPTY_VARS: Dict[str, "Value"] = {}
_EMPTY_UNDO: List[list] = [[]]


class _Frame:
    """One function invocation: numbered slots plus a named-cell dict.

    Locals the resolution pass (:mod:`repro.lang.resolve`) proved pure live
    in ``slots`` — a flat list indexed by the slot numbers burned into the
    instruction stream.  Everything else (fallback names) lives in ``vars``
    with a scope undo log: declaring a name records the shadowed binding (or
    its absence) in the innermost scope's undo list; popping the scope
    replays the list in reverse.  Named lookups and stores therefore touch a
    single dict, while scope semantics (shadowing, implicit locals dying
    with their block) stay identical to the interpreter's scope-chain walk.
    The two stores can never alias: a name is slotted all-or-nothing per
    function.
    """

    __slots__ = ("function_name", "vars", "undo", "slots")

    def __init__(self, function_name: str, nlocals: int = 0,
                 bare: bool = False) -> None:
        self.function_name = function_name
        if bare:
            self.vars = _EMPTY_VARS
            self.undo = _EMPTY_UNDO
        else:
            self.vars = {}
            self.undo = [[]]
        self.slots: List[Value] = [None] * nlocals if nlocals else _NO_SLOTS

    def declare(self, name: str, value: Value) -> None:
        variables = self.vars
        self.undo[-1].append((name, variables.get(name, _MISSING)))
        variables[name] = value

    def push_scope(self) -> None:
        self.undo.append([])

    def pop_scopes(self, count: int) -> None:
        variables = self.vars
        for _ in range(count):
            for name, old in reversed(self.undo.pop()):
                if old is _MISSING:
                    variables.pop(name, None)
                else:
                    variables[name] = old


class VirtualMachine:
    """Executes one MiniC program run on compiled bytecode."""

    def __init__(self, program: Program, kernel: Optional[Kernel] = None,
                 hooks: Optional[ExecutionHooks] = None,
                 binder: Optional[InputBinder] = None,
                 config: Optional[ExecutionConfig] = None) -> None:
        self.program = program
        self.kernel = kernel or Kernel()
        self.hooks = hooks or NullHooks()
        self.config = config or ExecutionConfig()
        self.binder = binder or InputBinder(mode=self.config.mode)
        self.globals: Dict[str, Value] = {}
        self.branch_counter = 0
        self.symbolic_branch_counter = 0
        self._steps = [0]
        self._frames: List[_Frame] = []
        self._string_cache: Dict[int, ArrayObject] = {}
        self._syscall_seen = 0
        # Plan specialization: compile for the hooks' instrumentation plan
        # when the hooks opt in (BranchLogger / ReplayRunHooks), otherwise run
        # legacy code whose BRANCH dispatches every event to the hooks.
        self._spec = self._select_specialization()
        plan = getattr(self.hooks, "plan", None) if self._spec else None
        profile = bool(self.config.profile_opcodes)
        # Adaptive specialization (unboxed int slots + runtime quickening)
        # and synthesized superinstructions both require slotted frames, and
        # both are forced off under the opcode profiler: profiles must count
        # the generic stream (in-place quickening would make the counts
        # depend on process warmth, and synth ranking wants the unfused
        # generic profile as its input).
        specialize_ints = (self.config.specialize_ints
                           and self.config.register_allocation and not profile)
        fusions = (synth.DEFAULT_FUSIONS
                   if (self.config.synth_superinstructions
                       and self.config.register_allocation and not profile)
                   else None)
        self.compiled = compile_program(
            program, plan, resolve=self.config.register_allocation,
            cmp_branch=self.config.fuse_compare_branch,
            specialize_ints=specialize_ints, synth_fusions=fusions)
        self._quicken_hits = 0
        self._quicken_misses = 0
        self._quicken_deopts = 0
        # Inline state for the specialized branch opcodes.  ``_rec_append``
        # doubles as the record/replay discriminator in the dispatch loop.
        self._rec_append = None
        self._slot_counts: List[int] = []
        self._replay_bits: List[bool] = []
        self._replay_len = 0
        self._cursor_cell = [0]
        if self._spec == "record":
            self._rec_append = self.hooks.bitvector.bits.append
            self._slot_counts = [0] * len(self.compiled.logged_locations)
        elif self._spec == "replay":
            bitvector = self.hooks.bitvector
            bits = getattr(bitvector, "bits", None)
            self._replay_bits = bits if bits is not None else list(bitvector)
            self._replay_len = len(self._replay_bits)
            self._cursor_cell = self.hooks.cursor_cell
        # Per-opcode execution counts (telemetry).  When enabled, the
        # generated profiling dispatch loop shadows the class method on this
        # instance; when off, nothing changes anywhere near the hot loop.
        self.opcode_counts: Optional[Dict[int, int]] = None
        if self.config.profile_opcodes:
            profiled = _profiled_exec_code()
            if profiled is not None:
                self.opcode_counts = {}
                self._exec_code = profiled.__get__(self, VirtualMachine)

    def _select_specialization(self) -> Optional[str]:
        if not self.config.specialize_plans:
            return None
        if getattr(self.hooks, "plan", None) is None:
            return None
        mode = getattr(self.hooks, "vm_inline", None)
        if mode == "record" and self.hooks.vm_can_inline():
            return "record"
        if mode == "replay" and hasattr(self.hooks, "cursor_cell"):
            return "replay"
        return None

    # -- interpreter-compatible surface (used by shared builtins) ---------------

    @property
    def steps(self) -> int:
        return self._steps[0]

    def current_function_name(self) -> str:
        if self._frames:
            return self._frames[-1].function_name
        return "<global>"

    def notify_syscall(self) -> None:
        """Report any newly recorded kernel syscalls to the hooks."""

        events = self.kernel.trace.events
        while self._syscall_seen < len(events):
            self.hooks.on_syscall(events[self._syscall_seen])
            self._syscall_seen += 1

    def forced_syscall_result(self, kind: SyscallKind) -> Optional[int]:
        """Ask the replay syscall log (if any) for the next result of *kind*."""

        provider = self.config.syscall_result_provider
        if provider is None:
            return None
        return provider(kind)

    # -- program entry ----------------------------------------------------------

    def run(self, argv: Sequence[str]) -> ExecutionResult:
        """Execute ``main`` with the given argv and return the run summary."""

        start = time.monotonic()
        result = ExecutionResult()
        try:
            self._exec_code(self.compiled.globals_code, _Frame("<global>"))
            exit_value = self._call_main(list(argv))
            result.exit_code = as_int(exit_value).concrete
        except GUEST_EXCEPTIONS as exc:
            # The flat dispatch loop does not unwind guest frames on the way
            # out; reset them so classification sees the interpreter's
            # fully-unwound state (current function falls back to <global>).
            del self._frames[:]
            classify_run_exception(result, exc, self.current_function_name())
        if self._spec == "record":
            self.hooks.vm_merge(self.branch_counter,
                                self.compiled.logged_locations,
                                self._slot_counts)
        elif self._spec == "replay":
            self.hooks.vm_finish(self.branch_counter)
        result.steps = self._steps[0]
        result.branch_executions = self.branch_counter
        result.symbolic_branch_executions = self.symbolic_branch_counter
        result.syscall_count = len(self.kernel.trace)
        result.stdout = self.kernel.stdout_text()
        result.wall_seconds = time.monotonic() - start
        if self.opcode_counts is not None:
            self._publish_opcode_counts()
        if self._quicken_hits or self._quicken_misses or self._quicken_deopts:
            self._publish_quicken_counts()
        return result

    def _publish_opcode_counts(self) -> None:
        """Merge the profiled dispatch counts into the active registry.

        ``vm.opcode.<NAME>`` counters are exact per-opcode execution counts;
        the logged-vs-bare branch split falls out directly because
        ``BRANCH_LOGGED`` / ``BRANCH_BARE`` (and their compare-and-branch
        fusions) are distinct opcodes.
        """

        from repro.telemetry import runtime as telemetry_runtime

        registry = telemetry_runtime.active()
        counter = registry.counter
        for opcode, count in self.opcode_counts.items():
            name = op.OPCODE_NAMES.get(opcode, str(opcode))
            counter(f"vm.opcode.{name}").inc(count)

    def _publish_quicken_counts(self) -> None:
        """Report quickening activity as ``vm.quicken.*`` counters.

        Flagged ``timing=True``: how many sites warm up, stay generic or
        deoptimize depends on per-process compile-cache warmth (a second run
        in the same process starts from the already-rewritten stream), so
        the counts are volatile cache-state data, not run semantics.
        """

        from repro.telemetry import runtime as telemetry_runtime

        registry = telemetry_runtime.active()
        for kind, count in (("hits", self._quicken_hits),
                            ("misses", self._quicken_misses),
                            ("deopts", self._quicken_deopts)):
            if count:
                registry.counter(f"vm.quicken.{kind}", timing=True).inc(count)

    def _call_main(self, argv: List[str]) -> Value:
        main_fn = self.program.main
        args = build_main_args(len(main_fn.params), argv, self.binder)
        return self._call(self.compiled.main, args, main_fn.line)

    # -- calls ------------------------------------------------------------------

    def _call(self, code: CodeObject, args: List[Value], line: int) -> Value:
        if len(self._frames) >= self.config.max_call_depth:
            raise ProgramCrash("call stack overflow", line,
                               self.current_function_name())
        frame = _Frame(code.name, code.nlocals, code.bare_frame)
        argc = len(args)
        slots = frame.slots
        variables = frame.vars
        for index, slot in enumerate(code.param_slots):
            value = args[index] if index < argc else ZERO
            if slot is not None:
                slots[slot] = value
            else:
                variables[code.params[index]] = value
        self._frames.append(frame)
        try:
            return self._exec_code(code, frame)
        finally:
            self._frames.pop()

    # -- memory helpers ---------------------------------------------------------

    def _resolve_element(self, base: Value, index_value: Value, line: int):
        index = index_value if type(index_value) is ConcolicValue \
            else as_int(index_value)
        if not isinstance(base, Pointer):
            raise ProgramCrash("indexing a non-pointer value", line,
                               self.current_function_name())
        position = base.offset + index.concrete
        cells = base.block.cells
        if not 0 <= position < len(cells):
            raise ProgramCrash(
                f"array index out of bounds ({position} not in 0..{len(cells) - 1})",
                line, self.current_function_name())
        return base.block, position

    # -- runtime quickening -----------------------------------------------------

    def _quicken_code(self, code: CodeObject,
                      frame_slots: List[Value]) -> None:
        """Rewrite *code*'s candidate sites whose operands look int-shaped.

        Called by the warm-up triggers (``ENTRY_WARM`` / ``JUMP_WARM``) with
        the live frame: a site quickens when every operand slot currently
        holds a raw int or a concrete :class:`ConcolicValue` — exactly the
        shapes the unboxed arms accept — and stays generic otherwise.
        Mis-speculation is safe either way: the unboxed forms carry their
        generic origin and deoptimize back to it when a guard fails, so the
        observable run is identical no matter which way a site is rewritten.
        """

        instructions = code.instructions
        for site in code.quicken_sites:
            instr = instructions[site]
            opcode = instr[0]
            arg = instr[1]
            if opcode in _QUICKEN_FC_SITES:
                left = frame_slots[arg[1]]
                shaped = (type(left) is int
                          or (type(left) is ConcolicValue
                              and left.symbolic is None))
            elif opcode in _QUICKEN_FF_SITES:
                left = frame_slots[arg[1]]
                right = frame_slots[arg[2]]
                shaped = ((type(left) is int
                           or (type(left) is ConcolicValue
                               and left.symbolic is None))
                          and (type(right) is int
                               or (type(right) is ConcolicValue
                                   and right.symbolic is None)))
            else:
                # Already rewritten by an earlier trigger (or currently in
                # unboxed form); leave the site alone.
                continue
            if shaped:
                instructions[site] = unboxed_form(instr)
                self._quicken_hits += 1
            else:
                self._quicken_misses += 1

    def quicken_stats(self) -> Dict[str, int]:
        """Quickening counters: sites rewritten / left generic / deoptimized."""

        return {"hits": self._quicken_hits,
                "misses": self._quicken_misses,
                "deopts": self._quicken_deopts}

    # -- the dispatch loop ------------------------------------------------------

    def _exec_code(self, code: CodeObject, frame: _Frame) -> Value:
        """Run *code* (and everything it calls) in one flat dispatch loop.

        Guest calls do not recurse into the host: ``CALL`` parks the caller's
        execution state (instruction stream, pc, operand stack, frame
        bindings) on ``call_stack`` and switches the loop's locals to the
        callee; the ``RET`` family pops it back.  One guest call therefore
        costs a handful of local rebindings instead of a Python function
        call, a fresh prologue and a try/finally — and host recursion limits
        no longer shadow the guest's ``max_call_depth``.  On a guest
        exception the loop simply unwinds out; :meth:`run` resets
        ``self._frames`` before classifying, matching the interpreter's
        fully unwound state.
        """

        instructions = code.instructions
        end = len(instructions)
        stack: List[Value] = []
        push = stack.append
        pop = stack.pop
        step_cell = self._steps
        max_steps = self.config.max_steps
        max_call_depth = self.config.max_call_depth
        global_vars = self.globals
        frames = self._frames
        frame_vars = frame.vars
        frame_slots = frame.slots
        hooks = self.hooks
        # Parked caller states: (instructions, end, pc, stack, push, pop,
        # frame, frame_vars, frame_slots) per active guest call.
        call_stack: List[tuple] = []
        # Exactly-NullHooks runs observe no branch events at all, so the
        # unspecialized BRANCH can skip building them (counters still tick).
        null_hooks = type(hooks) is NullHooks
        # Plan-specialized inline state (None / empty when unspecialized).
        rec_append = self._rec_append
        slot_counts = self._slot_counts
        replay_bits = self._replay_bits
        replay_len = self._replay_len
        cursor_cell = self._cursor_cell
        pc = 0
        while pc < end:
            opcode, arg, charge, line = instructions[pc]
            pc += 1
            if charge:
                total = step_cell[0] + charge
                step_cell[0] = total
                if total > max_steps:
                    raise StepLimitExceeded("interpreter step budget exhausted",
                                            line)
            if opcode == op.LOAD_FAST:
                value = frame_slots[arg]
                # Unboxed stores keep raw ints in int-typed slots; the
                # operand stack stays boxed, so re-box on the way out
                # (interned instances for the common small range).
                if type(value) is int:
                    value = _SMALL_INTS[value] if 0 <= value < _NSMALL \
                        else ConcolicValue(value)
                push(value)
            elif opcode == op.LOAD:
                value = frame_vars.get(arg, _MISSING)
                if value is _MISSING:
                    value = global_vars.get(arg, _MISSING)
                    if value is _MISSING:
                        raise RuntimeMiniCError(f"undefined variable '{arg}'",
                                                line)
                push(value)
            elif opcode == op.CONST:
                push(arg)
            # The four slot superinstructions inline the fully concrete
            # arithmetic of the hot operators (comparison results and small
            # sums reuse interned values; binary_int_op would build the same
            # frozen dataclass from scratch).  Symbolic operands, pointers
            # and the rare operators take the shared helpers, so results are
            # identical by construction.
            elif opcode == op.BINOP_FC:
                operator, slot, right = arg
                left = frame_slots[slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if (type(left) is ConcolicValue and left.symbolic is None
                        and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        push(ONE if a < b else ZERO)
                        continue
                    if operator == "+":
                        r = a + b
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                        continue
                    if operator == "-":
                        r = a - b
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                        continue
                    if operator == ">":
                        push(ONE if a > b else ZERO)
                        continue
                    if operator == "==":
                        push(ONE if a == b else ZERO)
                        continue
                    if operator == "!=":
                        push(ONE if a != b else ZERO)
                        continue
                    if operator == "<=":
                        push(ONE if a <= b else ZERO)
                        continue
                    if operator == ">=":
                        push(ONE if a >= b else ZERO)
                        continue
                    if operator == "*":
                        r = a * b
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                        continue
                if type(left) is ConcolicValue:
                    try:
                        push(binary_int_op(operator, left, right))
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    push(pointer_binary_op(operator, left, right, line))
            elif opcode == op.BINOP_FF:
                operator, left_slot, right_slot = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if type(right) is int:
                    right = _SMALL_INTS[right] if 0 <= right < _NSMALL \
                        else ConcolicValue(right)
                if (type(left) is ConcolicValue
                        and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        push(ONE if a < b else ZERO)
                        continue
                    if operator == "+":
                        r = a + b
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                        continue
                    if operator == "-":
                        r = a - b
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                        continue
                    if operator == ">":
                        push(ONE if a > b else ZERO)
                        continue
                    if operator == "==":
                        push(ONE if a == b else ZERO)
                        continue
                    if operator == "!=":
                        push(ONE if a != b else ZERO)
                        continue
                    if operator == "<=":
                        push(ONE if a <= b else ZERO)
                        continue
                    if operator == ">=":
                        push(ONE if a >= b else ZERO)
                        continue
                    if operator == "*":
                        r = a * b
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                        continue
                if type(left) is ConcolicValue and type(right) is ConcolicValue:
                    try:
                        push(binary_int_op(operator, left, right))
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    push(pointer_binary_op(operator, left, right, line))
            # The unboxed-int arms (BINOP_II family): operands come straight
            # out of slots the resolver's type lattice proved (or runtime
            # quickening observed) to be int-only; arithmetic runs on raw
            # Python ints and the *_STORE forms keep raw ints in the target
            # slot, eliminating ConcolicValue construction entirely on hot
            # loops.  Every arm guards its operands; a violation rewrites the
            # site back to the generic instruction carried as the arg's last
            # element (deoptimization), refunds the already-paid charge, and
            # re-dispatches — the generic arm then produces the identical
            # observable behaviour, so speculation can never change a run.
            elif opcode == op.BINOP_II_BRANCH_LOGGED:
                (operator, left_slot, right_slot,
                 location, target, slot, generic) = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(right) is ConcolicValue and right.symbolic is None:
                    right = right.concrete
                if type(left) is int and type(right) is int:
                    if operator == "<":
                        taken = left < right
                    elif operator == ">":
                        taken = left > right
                    elif operator == "==":
                        taken = left == right
                    elif operator == "!=":
                        taken = left != right
                    elif operator == "<=":
                        taken = left <= right
                    else:
                        taken = left >= right
                    self.branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                    if not taken:
                        pc = target
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_IC_BRANCH_LOGGED:
                (operator, slot, right,
                 location, target, slot_idx, generic) = arg
                left = frame_slots[slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(left) is int:
                    if operator == "<":
                        taken = left < right
                    elif operator == ">":
                        taken = left > right
                    elif operator == "==":
                        taken = left == right
                    elif operator == "!=":
                        taken = left != right
                    elif operator == "<=":
                        taken = left <= right
                    else:
                        taken = left >= right
                    self.branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                    if not taken:
                        pc = target
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            # Stack-condition compare-and-branch (fused CONST;BINARY;BRANCH_*
            # and BINARY;BRANCH_*): boxed stack operands, so there is no
            # unboxed form and no deopt — symbolic or pointer operands take
            # the exact slow path of the unfused sequence inline.
            elif opcode == op.BINOP_SC_BRANCH_LOGGED:
                operator, right, location, target, slot_idx = arg
                left = pop()
                if (type(left) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if type(left) is ConcolicValue:
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is None:
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                else:
                    self.symbolic_branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        expr = as_condition(sym)
                        hooks.vm_logged_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))  # may raise AbortRun
                if not taken:
                    pc = target
            elif opcode == op.BINARY_BRANCH_LOGGED:
                operator, location, target, slot_idx = arg
                right = pop()
                left = pop()
                if (type(left) is ConcolicValue and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if (type(left) is ConcolicValue
                            and type(right) is ConcolicValue):
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is None:
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                else:
                    self.symbolic_branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        expr = as_condition(sym)
                        hooks.vm_logged_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))  # may raise AbortRun
                if not taken:
                    pc = target
            elif opcode == op.BINOP_II_BRANCH_BARE:
                operator, left_slot, right_slot, location, target, generic = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(right) is ConcolicValue and right.symbolic is None:
                    right = right.concrete
                if type(left) is int and type(right) is int:
                    if operator == "<":
                        taken = left < right
                    elif operator == ">":
                        taken = left > right
                    elif operator == "==":
                        taken = left == right
                    elif operator == "!=":
                        taken = left != right
                    elif operator == "<=":
                        taken = left <= right
                    else:
                        taken = left >= right
                    self.branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_IC_BRANCH_BARE:
                operator, slot, right, location, target, generic = arg
                left = frame_slots[slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(left) is int:
                    if operator == "<":
                        taken = left < right
                    elif operator == ">":
                        taken = left > right
                    elif operator == "==":
                        taken = left == right
                    elif operator == "!=":
                        taken = left != right
                    elif operator == "<=":
                        taken = left <= right
                    else:
                        taken = left >= right
                    self.branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_IC_STORE:
                operator, slot, right, target_slot, generic = arg
                left = frame_slots[slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(left) is int:
                    if operator == "+":
                        frame_slots[target_slot] = left + right
                    elif operator == "-":
                        frame_slots[target_slot] = left - right
                    elif operator == "*":
                        frame_slots[target_slot] = left * right
                    elif operator == "<":
                        frame_slots[target_slot] = 1 if left < right else 0
                    elif operator == ">":
                        frame_slots[target_slot] = 1 if left > right else 0
                    elif operator == "==":
                        frame_slots[target_slot] = 1 if left == right else 0
                    elif operator == "!=":
                        frame_slots[target_slot] = 1 if left != right else 0
                    elif operator == "<=":
                        frame_slots[target_slot] = 1 if left <= right else 0
                    else:
                        frame_slots[target_slot] = 1 if left >= right else 0
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_II_STORE:
                operator, left_slot, right_slot, target_slot, generic = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(right) is ConcolicValue and right.symbolic is None:
                    right = right.concrete
                if type(left) is int and type(right) is int:
                    if operator == "+":
                        frame_slots[target_slot] = left + right
                    elif operator == "-":
                        frame_slots[target_slot] = left - right
                    elif operator == "*":
                        frame_slots[target_slot] = left * right
                    elif operator == "<":
                        frame_slots[target_slot] = 1 if left < right else 0
                    elif operator == ">":
                        frame_slots[target_slot] = 1 if left > right else 0
                    elif operator == "==":
                        frame_slots[target_slot] = 1 if left == right else 0
                    elif operator == "!=":
                        frame_slots[target_slot] = 1 if left != right else 0
                    elif operator == "<=":
                        frame_slots[target_slot] = 1 if left <= right else 0
                    else:
                        frame_slots[target_slot] = 1 if left >= right else 0
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_II:
                operator, left_slot, right_slot, generic = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(right) is ConcolicValue and right.symbolic is None:
                    right = right.concrete
                if type(left) is int and type(right) is int:
                    if operator == "+":
                        r = left + right
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                    elif operator == "-":
                        r = left - right
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                    elif operator == "*":
                        r = left * right
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                    elif operator == "<":
                        push(ONE if left < right else ZERO)
                    elif operator == ">":
                        push(ONE if left > right else ZERO)
                    elif operator == "==":
                        push(ONE if left == right else ZERO)
                    elif operator == "!=":
                        push(ONE if left != right else ZERO)
                    elif operator == "<=":
                        push(ONE if left <= right else ZERO)
                    else:
                        push(ONE if left >= right else ZERO)
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_IC:
                operator, slot, right, generic = arg
                left = frame_slots[slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(left) is int:
                    if operator == "+":
                        r = left + right
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                    elif operator == "-":
                        r = left - right
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                    elif operator == "*":
                        r = left * right
                        push(_SMALL_INTS[r] if 0 <= r < _NSMALL
                             else ConcolicValue(r))
                    elif operator == "<":
                        push(ONE if left < right else ZERO)
                    elif operator == ">":
                        push(ONE if left > right else ZERO)
                    elif operator == "==":
                        push(ONE if left == right else ZERO)
                    elif operator == "!=":
                        push(ONE if left != right else ZERO)
                    elif operator == "<=":
                        push(ONE if left <= right else ZERO)
                    else:
                        push(ONE if left >= right else ZERO)
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_II_BRANCH:
                operator, left_slot, right_slot, location, target, generic = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(right) is ConcolicValue and right.symbolic is None:
                    right = right.concrete
                if type(left) is int and type(right) is int:
                    if operator == "<":
                        taken = left < right
                    elif operator == ">":
                        taken = left > right
                    elif operator == "==":
                        taken = left == right
                    elif operator == "!=":
                        taken = left != right
                    elif operator == "<=":
                        taken = left <= right
                    else:
                        taken = left >= right
                    if null_hooks:
                        self.branch_counter += 1
                        if not taken:
                            pc = target
                        continue
                    event = BranchEvent(location=location, taken=taken,
                                        symbolic=False, condition=None,
                                        index=self.branch_counter)
                    self.branch_counter += 1
                    hooks.on_branch(event)
                    if not taken:
                        pc = target
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            elif opcode == op.BINOP_IC_BRANCH:
                operator, slot, right, location, target, generic = arg
                left = frame_slots[slot]
                if type(left) is ConcolicValue and left.symbolic is None:
                    left = left.concrete
                if type(left) is int:
                    if operator == "<":
                        taken = left < right
                    elif operator == ">":
                        taken = left > right
                    elif operator == "==":
                        taken = left == right
                    elif operator == "!=":
                        taken = left != right
                    elif operator == "<=":
                        taken = left <= right
                    else:
                        taken = left >= right
                    if null_hooks:
                        self.branch_counter += 1
                        if not taken:
                            pc = target
                        continue
                    event = BranchEvent(location=location, taken=taken,
                                        symbolic=False, condition=None,
                                        index=self.branch_counter)
                    self.branch_counter += 1
                    hooks.on_branch(event)
                    if not taken:
                        pc = target
                    continue
                self._quicken_deopts += 1
                instructions[pc - 1] = generic
                pc -= 1
                if charge:
                    step_cell[0] -= charge
            # Synthesized superinstructions (profile-driven fusions of
            # adjacent opcode pairs, see repro.vm.synth): each arm is the
            # two generic arms spliced together with the combined charge
            # pre-paid at fetch and the error-capable part's source line
            # preserved, so steps, events and crash sites match the unfused
            # pair exactly.
            elif opcode == op.BINOP_FC_CALL:
                operator, slot, right, callee, argc, fc_line = arg
                left = frame_slots[slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if (type(left) is ConcolicValue and left.symbolic is None
                        and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "+":
                        r = a + b
                        value = (_SMALL_INTS[r] if 0 <= r < _NSMALL
                                 else ConcolicValue(r))
                    elif operator == "-":
                        r = a - b
                        value = (_SMALL_INTS[r] if 0 <= r < _NSMALL
                                 else ConcolicValue(r))
                    elif operator == "*":
                        r = a * b
                        value = (_SMALL_INTS[r] if 0 <= r < _NSMALL
                                 else ConcolicValue(r))
                    elif operator == "<":
                        value = ONE if a < b else ZERO
                    elif operator == ">":
                        value = ONE if a > b else ZERO
                    elif operator == "==":
                        value = ONE if a == b else ZERO
                    elif operator == "!=":
                        value = ONE if a != b else ZERO
                    elif operator == "<=":
                        value = ONE if a <= b else ZERO
                    elif operator == ">=":
                        value = ONE if a >= b else ZERO
                    else:
                        try:
                            value = binary_int_op(operator, left, right)
                        except ZeroDivisionError:
                            raise DivisionByZeroError("division by zero",
                                                      fc_line)
                elif type(left) is ConcolicValue:
                    try:
                        value = binary_int_op(operator, left, right)
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", fc_line)
                else:
                    value = pointer_binary_op(operator, left, right, fc_line)
                push(value)
                if len(frames) >= max_call_depth:
                    raise ProgramCrash("call stack overflow", line,
                                       self.current_function_name())
                param_slots = callee.param_slots
                callee_frame = _Frame(callee.name, callee.nlocals,
                                      callee.bare_frame)
                callee_slots = callee_frame.slots
                if callee.bare_frame and argc == len(param_slots):
                    if argc:
                        callee_slots[:argc] = stack[-argc:]
                        del stack[-argc:]
                else:
                    if argc:
                        args = stack[-argc:]
                        del stack[-argc:]
                    else:
                        args = []
                    callee_vars = callee_frame.vars
                    for index, param_slot in enumerate(param_slots):
                        value = args[index] if index < argc else ZERO
                        if param_slot is not None:
                            callee_slots[param_slot] = value
                        else:
                            callee_vars[callee.params[index]] = value
                call_stack.append((instructions, end, pc, stack, push, pop,
                                   frame, frame_vars, frame_slots))
                frames.append(callee_frame)
                frame = callee_frame
                frame_vars = callee_frame.vars
                frame_slots = callee_slots
                instructions = callee.instructions
                end = len(instructions)
                stack = []
                push = stack.append
                pop = stack.pop
                pc = 0
            elif opcode == op.BINARY_RET:
                right = pop()
                left = pop()
                if type(left) is ConcolicValue and type(right) is ConcolicValue:
                    try:
                        value = binary_int_op(arg, left, right)
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    value = pointer_binary_op(arg, left, right, line)
                if not call_stack:
                    return value
                frames.pop()
                (instructions, end, pc, stack, push, pop,
                 frame, frame_vars, frame_slots) = call_stack.pop()
                push(value)
            elif opcode == op.LOAD2_FAST:
                left_slot, right_slot = arg
                value = frame_slots[left_slot]
                if type(value) is int:
                    value = _SMALL_INTS[value] if 0 <= value < _NSMALL \
                        else ConcolicValue(value)
                push(value)
                value = frame_slots[right_slot]
                if type(value) is int:
                    value = _SMALL_INTS[value] if 0 <= value < _NSMALL \
                        else ConcolicValue(value)
                push(value)
            elif opcode == op.LOAD_INDEX_FAST:
                index = frame_slots[arg]
                if type(index) is int:
                    index = _SMALL_INTS[index] if 0 <= index < _NSMALL \
                        else ConcolicValue(index)
                base = pop()
                block, position = self._resolve_element(base, index, line)
                push(block.cells[position])
            elif opcode == op.STORE_INDEX_FAST:
                index = frame_slots[arg]
                if type(index) is int:
                    index = _SMALL_INTS[index] if 0 <= index < _NSMALL \
                        else ConcolicValue(index)
                base = pop()
                value = pop()
                block, position = self._resolve_element(base, index, line)
                block.cells[position] = value
            elif opcode == op.LOAD_INDEX_FF:
                base_slot, index_slot = arg
                base = frame_slots[base_slot]
                if type(base) is int:
                    base = _SMALL_INTS[base] if 0 <= base < _NSMALL \
                        else ConcolicValue(base)
                index = frame_slots[index_slot]
                if type(index) is int:
                    index = _SMALL_INTS[index] if 0 <= index < _NSMALL \
                        else ConcolicValue(index)
                block, position = self._resolve_element(base, index, line)
                push(block.cells[position])
            elif opcode == op.STORE_INDEX_FF:
                base_slot, index_slot = arg
                base = frame_slots[base_slot]
                if type(base) is int:
                    base = _SMALL_INTS[base] if 0 <= base < _NSMALL \
                        else ConcolicValue(base)
                index = frame_slots[index_slot]
                if type(index) is int:
                    index = _SMALL_INTS[index] if 0 <= index < _NSMALL \
                        else ConcolicValue(index)
                value = pop()
                block, position = self._resolve_element(base, index, line)
                block.cells[position] = value
            elif opcode == op.CONST_RET:
                if not call_stack:
                    return arg
                frames.pop()
                (instructions, end, pc, stack, push, pop,
                 frame, frame_vars, frame_slots) = call_stack.pop()
                push(arg)
            # The three compare-and-branch superinstructions (fused
            # BINOP_FF;BRANCH_*): two fully concrete slots decide the branch
            # without materializing the truth value; symbolic or pointer
            # operands rebuild it through the shared helpers so the observed
            # behaviour (events, conditions, crashes) is identical to the
            # unfused pair by construction.
            elif opcode == op.BINOP_FF_BRANCH_LOGGED:
                operator, left_slot, right_slot, location, target, slot = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if type(right) is int:
                    right = _SMALL_INTS[right] if 0 <= right < _NSMALL \
                        else ConcolicValue(right)
                if (type(left) is ConcolicValue
                        and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if (type(left) is ConcolicValue
                            and type(right) is ConcolicValue):
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is None:
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                else:
                    self.symbolic_branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot] += 1
                    else:
                        expr = as_condition(sym)
                        hooks.vm_logged_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))  # may raise AbortRun
                if not taken:
                    pc = target
            elif opcode == op.BINOP_FF_BRANCH_BARE:
                operator, left_slot, right_slot, location, target = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if type(right) is int:
                    right = _SMALL_INTS[right] if 0 <= right < _NSMALL \
                        else ConcolicValue(right)
                if (type(left) is ConcolicValue
                        and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if (type(left) is ConcolicValue
                            and type(right) is ConcolicValue):
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is not None:
                    self.symbolic_branch_counter += 1
                    if rec_append is None:
                        expr = as_condition(sym)
                        hooks.vm_bare_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))
                if not taken:
                    pc = target
            elif opcode == op.BINOP_FF_BRANCH:
                operator, left_slot, right_slot, location, target = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if type(right) is int:
                    right = _SMALL_INTS[right] if 0 <= right < _NSMALL \
                        else ConcolicValue(right)
                if (type(left) is ConcolicValue
                        and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    symbolic = False
                    condition_source = None
                else:
                    if (type(left) is ConcolicValue
                            and type(right) is ConcolicValue):
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        condition_source = value.symbolic
                        symbolic = condition_source is not None
                    else:
                        taken = as_int(value).concrete != 0
                        symbolic = False
                        condition_source = None
                if null_hooks:
                    self.branch_counter += 1
                    if symbolic:
                        self.symbolic_branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                condition = None
                if symbolic:
                    expr = as_condition(condition_source)
                    condition = expr if taken else expr.negated()
                event = BranchEvent(location=location, taken=taken,
                                    symbolic=symbolic, condition=condition,
                                    index=self.branch_counter)
                self.branch_counter += 1
                if symbolic:
                    self.symbolic_branch_counter += 1
                hooks.on_branch(event)
                if not taken:
                    pc = target
            # The slot-vs-const flavour (fused BINOP_FC;BRANCH_*): only
            # emitted under the specialization tier, where it is the deopt
            # target of BINOP_IC_BRANCH* and the generic form quickening
            # rewrites from.  Same exactness contract as the FF arms above.
            elif opcode == op.BINOP_FC_BRANCH_LOGGED:
                operator, slot, right, location, target, slot_idx = arg
                left = frame_slots[slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if (type(left) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if type(left) is ConcolicValue:
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is None:
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                else:
                    self.symbolic_branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot_idx] += 1
                    else:
                        expr = as_condition(sym)
                        hooks.vm_logged_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))  # may raise AbortRun
                if not taken:
                    pc = target
            elif opcode == op.BINOP_FC_BRANCH_BARE:
                operator, slot, right, location, target = arg
                left = frame_slots[slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if (type(left) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if type(left) is ConcolicValue:
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is not None:
                    self.symbolic_branch_counter += 1
                    if rec_append is None:
                        expr = as_condition(sym)
                        hooks.vm_bare_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))
                if not taken:
                    pc = target
            elif opcode == op.BINOP_FC_BRANCH:
                operator, slot, right, location, target = arg
                left = frame_slots[slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if (type(left) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    symbolic = False
                    condition_source = None
                else:
                    if type(left) is ConcolicValue:
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        condition_source = value.symbolic
                        symbolic = condition_source is not None
                    else:
                        taken = as_int(value).concrete != 0
                        symbolic = False
                        condition_source = None
                if null_hooks:
                    self.branch_counter += 1
                    if symbolic:
                        self.symbolic_branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                condition = None
                if symbolic:
                    expr = as_condition(condition_source)
                    condition = expr if taken else expr.negated()
                event = BranchEvent(location=location, taken=taken,
                                    symbolic=symbolic, condition=condition,
                                    index=self.branch_counter)
                self.branch_counter += 1
                if symbolic:
                    self.symbolic_branch_counter += 1
                hooks.on_branch(event)
                if not taken:
                    pc = target
            elif opcode == op.BINOP_SC_BRANCH_BARE:
                operator, right, location, target = arg
                left = pop()
                if (type(left) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if type(left) is ConcolicValue:
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is not None:
                    self.symbolic_branch_counter += 1
                    if rec_append is None:
                        expr = as_condition(sym)
                        hooks.vm_bare_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))
                if not taken:
                    pc = target
            elif opcode == op.BINOP_SC_BRANCH:
                operator, right, location, target = arg
                left = pop()
                if (type(left) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    symbolic = False
                    condition_source = None
                else:
                    if type(left) is ConcolicValue:
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        condition_source = value.symbolic
                        symbolic = condition_source is not None
                    else:
                        taken = as_int(value).concrete != 0
                        symbolic = False
                        condition_source = None
                if null_hooks:
                    self.branch_counter += 1
                    if symbolic:
                        self.symbolic_branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                condition = None
                if symbolic:
                    expr = as_condition(condition_source)
                    condition = expr if taken else expr.negated()
                event = BranchEvent(location=location, taken=taken,
                                    symbolic=symbolic, condition=condition,
                                    index=self.branch_counter)
                self.branch_counter += 1
                if symbolic:
                    self.symbolic_branch_counter += 1
                hooks.on_branch(event)
                if not taken:
                    pc = target
            elif opcode == op.BINARY_BRANCH_BARE:
                operator, location, target = arg
                right = pop()
                left = pop()
                if (type(left) is ConcolicValue and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    sym = None
                else:
                    if (type(left) is ConcolicValue
                            and type(right) is ConcolicValue):
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        sym = value.symbolic
                    else:
                        taken = as_int(value).concrete != 0
                        sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is not None:
                    self.symbolic_branch_counter += 1
                    if rec_append is None:
                        expr = as_condition(sym)
                        hooks.vm_bare_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))
                if not taken:
                    pc = target
            elif opcode == op.BINARY_BRANCH:
                operator, location, target = arg
                right = pop()
                left = pop()
                if (type(left) is ConcolicValue and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "==":
                        taken = a == b
                    elif operator == "!=":
                        taken = a != b
                    elif operator == "<":
                        taken = a < b
                    elif operator == ">":
                        taken = a > b
                    elif operator == "<=":
                        taken = a <= b
                    else:
                        taken = a >= b
                    symbolic = False
                    condition_source = None
                else:
                    if (type(left) is ConcolicValue
                            and type(right) is ConcolicValue):
                        value = binary_int_op(operator, left, right)
                    else:
                        value = pointer_binary_op(operator, left, right, line)
                    if type(value) is ConcolicValue:
                        taken = value.concrete != 0
                        condition_source = value.symbolic
                        symbolic = condition_source is not None
                    else:
                        taken = as_int(value).concrete != 0
                        symbolic = False
                        condition_source = None
                if null_hooks:
                    self.branch_counter += 1
                    if symbolic:
                        self.symbolic_branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                condition = None
                if symbolic:
                    expr = as_condition(condition_source)
                    condition = expr if taken else expr.negated()
                event = BranchEvent(location=location, taken=taken,
                                    symbolic=symbolic, condition=condition,
                                    index=self.branch_counter)
                self.branch_counter += 1
                if symbolic:
                    self.symbolic_branch_counter += 1
                hooks.on_branch(event)
                if not taken:
                    pc = target
            elif opcode == op.BINOP_FC_STORE:
                operator, slot, right, target_slot = arg
                left = frame_slots[slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if (type(left) is ConcolicValue and left.symbolic is None
                        and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "+":
                        r = a + b
                        frame_slots[target_slot] = (
                            _SMALL_INTS[r] if 0 <= r < _NSMALL
                            else ConcolicValue(r))
                        continue
                    if operator == "-":
                        r = a - b
                        frame_slots[target_slot] = (
                            _SMALL_INTS[r] if 0 <= r < _NSMALL
                            else ConcolicValue(r))
                        continue
                    if operator == "*":
                        r = a * b
                        frame_slots[target_slot] = (
                            _SMALL_INTS[r] if 0 <= r < _NSMALL
                            else ConcolicValue(r))
                        continue
                    if operator == "<":
                        frame_slots[target_slot] = ONE if a < b else ZERO
                        continue
                    if operator == ">":
                        frame_slots[target_slot] = ONE if a > b else ZERO
                        continue
                    if operator == "==":
                        frame_slots[target_slot] = ONE if a == b else ZERO
                        continue
                    if operator == "!=":
                        frame_slots[target_slot] = ONE if a != b else ZERO
                        continue
                    if operator == "<=":
                        frame_slots[target_slot] = ONE if a <= b else ZERO
                        continue
                    if operator == ">=":
                        frame_slots[target_slot] = ONE if a >= b else ZERO
                        continue
                if type(left) is ConcolicValue:
                    try:
                        frame_slots[target_slot] = binary_int_op(operator,
                                                                 left, right)
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    frame_slots[target_slot] = pointer_binary_op(
                        operator, left, right, line)
            elif opcode == op.BINOP_FF_STORE:
                operator, left_slot, right_slot, target_slot = arg
                left = frame_slots[left_slot]
                right = frame_slots[right_slot]
                if type(left) is int:
                    left = _SMALL_INTS[left] if 0 <= left < _NSMALL \
                        else ConcolicValue(left)
                if type(right) is int:
                    right = _SMALL_INTS[right] if 0 <= right < _NSMALL \
                        else ConcolicValue(right)
                if (type(left) is ConcolicValue
                        and type(right) is ConcolicValue
                        and left.symbolic is None and right.symbolic is None):
                    a = left.concrete
                    b = right.concrete
                    if operator == "+":
                        r = a + b
                        frame_slots[target_slot] = (
                            _SMALL_INTS[r] if 0 <= r < _NSMALL
                            else ConcolicValue(r))
                        continue
                    if operator == "-":
                        r = a - b
                        frame_slots[target_slot] = (
                            _SMALL_INTS[r] if 0 <= r < _NSMALL
                            else ConcolicValue(r))
                        continue
                    if operator == "*":
                        r = a * b
                        frame_slots[target_slot] = (
                            _SMALL_INTS[r] if 0 <= r < _NSMALL
                            else ConcolicValue(r))
                        continue
                    if operator == "<":
                        frame_slots[target_slot] = ONE if a < b else ZERO
                        continue
                    if operator == ">":
                        frame_slots[target_slot] = ONE if a > b else ZERO
                        continue
                    if operator == "==":
                        frame_slots[target_slot] = ONE if a == b else ZERO
                        continue
                    if operator == "!=":
                        frame_slots[target_slot] = ONE if a != b else ZERO
                        continue
                    if operator == "<=":
                        frame_slots[target_slot] = ONE if a <= b else ZERO
                        continue
                    if operator == ">=":
                        frame_slots[target_slot] = ONE if a >= b else ZERO
                        continue
                if type(left) is ConcolicValue and type(right) is ConcolicValue:
                    try:
                        frame_slots[target_slot] = binary_int_op(operator,
                                                                 left, right)
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    frame_slots[target_slot] = pointer_binary_op(
                        operator, left, right, line)
            elif opcode == op.STORE_FAST:
                frame_slots[arg] = pop()
            elif opcode == op.BINOP_NC:
                operator, name, right, load_line = arg
                left = frame_vars.get(name, _MISSING)
                if left is _MISSING:
                    left = global_vars.get(name, _MISSING)
                    if left is _MISSING:
                        # The fused charge pre-paid the right operand's step,
                        # which the interpreter never reaches when the left
                        # name is undefined; refund it so the step counts of
                        # the crash agree.
                        step_cell[0] -= 1
                        raise RuntimeMiniCError(f"undefined variable '{name}'",
                                                load_line)
                if type(left) is ConcolicValue:
                    try:
                        push(binary_int_op(operator, left, right))
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    push(pointer_binary_op(operator, left, right, line))
            elif opcode == op.BINOP_NN:
                operator, left_name, right_name, left_line, right_line = arg
                left = frame_vars.get(left_name, _MISSING)
                if left is _MISSING:
                    left = global_vars.get(left_name, _MISSING)
                    if left is _MISSING:
                        # Refund the right operand's pre-paid step (the
                        # interpreter crashes before evaluating it).
                        step_cell[0] -= 1
                        raise RuntimeMiniCError(
                            f"undefined variable '{left_name}'", left_line)
                right = frame_vars.get(right_name, _MISSING)
                if right is _MISSING:
                    right = global_vars.get(right_name, _MISSING)
                    if right is _MISSING:
                        raise RuntimeMiniCError(
                            f"undefined variable '{right_name}'", right_line)
                if type(left) is ConcolicValue and type(right) is ConcolicValue:
                    try:
                        push(binary_int_op(operator, left, right))
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    push(pointer_binary_op(operator, left, right, line))
            elif opcode == op.BINOP_NC_STORE:
                operator, name, right, load_line, target_name = arg
                left = frame_vars.get(name, _MISSING)
                if left is _MISSING:
                    left = global_vars.get(name, _MISSING)
                    if left is _MISSING:
                        # The fused charge pre-paid the right operand's step,
                        # which the interpreter never reaches when the left
                        # name is undefined; refund it so the step counts of
                        # the crash agree.
                        step_cell[0] -= 1
                        raise RuntimeMiniCError(f"undefined variable '{name}'",
                                                load_line)
                if type(left) is ConcolicValue:
                    try:
                        value = binary_int_op(operator, left, right)
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    value = pointer_binary_op(operator, left, right, line)
                if target_name in frame_vars:
                    frame_vars[target_name] = value
                elif target_name in global_vars:
                    global_vars[target_name] = value
                else:
                    frame.declare(target_name, value)
            elif opcode == op.BINOP_NN_STORE:
                (operator, left_name, right_name,
                 left_line, right_line, target_name) = arg
                left = frame_vars.get(left_name, _MISSING)
                if left is _MISSING:
                    left = global_vars.get(left_name, _MISSING)
                    if left is _MISSING:
                        # Refund the right operand's pre-paid step (the
                        # interpreter crashes before evaluating it).
                        step_cell[0] -= 1
                        raise RuntimeMiniCError(
                            f"undefined variable '{left_name}'", left_line)
                right = frame_vars.get(right_name, _MISSING)
                if right is _MISSING:
                    right = global_vars.get(right_name, _MISSING)
                    if right is _MISSING:
                        raise RuntimeMiniCError(
                            f"undefined variable '{right_name}'", right_line)
                if type(left) is ConcolicValue and type(right) is ConcolicValue:
                    try:
                        value = binary_int_op(operator, left, right)
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    value = pointer_binary_op(operator, left, right, line)
                if target_name in frame_vars:
                    frame_vars[target_name] = value
                elif target_name in global_vars:
                    global_vars[target_name] = value
                else:
                    frame.declare(target_name, value)
            elif opcode == op.BINARY:
                right = pop()
                left = pop()
                if type(left) is ConcolicValue and type(right) is ConcolicValue:
                    try:
                        push(binary_int_op(arg, left, right))
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
                else:
                    push(pointer_binary_op(arg, left, right, line))
            elif opcode == op.BRANCH:
                location, target = arg
                value = pop()
                if type(value) is ConcolicValue:
                    taken = value.concrete != 0
                    symbolic = value.symbolic is not None
                else:
                    taken = as_int(value).concrete != 0
                    symbolic = False
                if null_hooks:
                    self.branch_counter += 1
                    if symbolic:
                        self.symbolic_branch_counter += 1
                    if not taken:
                        pc = target
                    continue
                condition = None
                if symbolic:
                    expr = as_condition(value.symbolic)
                    condition = expr if taken else expr.negated()
                event = BranchEvent(location=location, taken=taken,
                                    symbolic=symbolic, condition=condition,
                                    index=self.branch_counter)
                self.branch_counter += 1
                if symbolic:
                    self.symbolic_branch_counter += 1
                hooks.on_branch(event)
                if not taken:
                    pc = target
            elif opcode == op.BRANCH_LOGGED:
                # Plan-specialized instrumented branch: the bitvector append
                # (record) / cursor compare (replay) is inlined; only symbolic
                # conditions and deviations reach the hook object.
                location, target, slot = arg
                value = pop()
                if type(value) is ConcolicValue:
                    taken = value.concrete != 0
                    sym = value.symbolic
                else:
                    taken = as_int(value).concrete != 0
                    sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is None:
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot] += 1
                    else:
                        cursor = cursor_cell[0]
                        if cursor >= replay_len:
                            hooks.vm_log_exhausted(location)  # raises AbortRun
                        cursor_cell[0] = cursor + 1
                        if replay_bits[cursor] != taken:
                            hooks.vm_concrete_mismatch(location, cursor)
                else:
                    self.symbolic_branch_counter += 1
                    if rec_append is not None:
                        rec_append(taken)
                        slot_counts[slot] += 1
                    else:
                        expr = as_condition(sym)
                        hooks.vm_logged_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))  # may raise AbortRun
                if not taken:
                    pc = target
            elif opcode == op.BRANCH_BARE:
                # Plan-specialized uninstrumented branch: zero hook dispatch
                # unless the condition is symbolic (replay case 1).
                location, target = arg
                value = pop()
                if type(value) is ConcolicValue:
                    taken = value.concrete != 0
                    sym = value.symbolic
                else:
                    taken = as_int(value).concrete != 0
                    sym = None
                index = self.branch_counter
                self.branch_counter = index + 1
                if sym is not None:
                    self.symbolic_branch_counter += 1
                    if rec_append is None:
                        expr = as_condition(sym)
                        hooks.vm_bare_symbolic(BranchEvent(
                            location=location, taken=taken, symbolic=True,
                            condition=expr if taken else expr.negated(),
                            index=index))
                if not taken:
                    pc = target
            elif opcode == op.JUMP:
                pc = arg
            elif opcode == op.STORE:
                value = pop()
                if arg in frame_vars:
                    frame_vars[arg] = value
                elif arg in global_vars:
                    global_vars[arg] = value
                else:
                    # Implicit local, exactly like the interpreter's _store.
                    frame.declare(arg, value)
            elif opcode == op.LOAD_INDEX:
                index = pop()
                base = pop()
                block, position = self._resolve_element(base, index, line)
                push(block.cells[position])
            elif opcode == op.STORE_INDEX:
                index = pop()
                base = pop()
                value = pop()
                block, position = self._resolve_element(base, index, line)
                block.cells[position] = value
            elif opcode == op.CALL_BUILTIN:
                fn, argc, node = arg
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                push(fn(self, args, node))
            elif opcode == op.CALL:
                callee, argc = arg
                if len(frames) >= max_call_depth:
                    raise ProgramCrash("call stack overflow", line,
                                       self.current_function_name())
                param_slots = callee.param_slots
                callee_frame = _Frame(callee.name, callee.nlocals,
                                      callee.bare_frame)
                callee_slots = callee_frame.slots
                if callee.bare_frame and argc == len(param_slots):
                    # Fast path: a fully slotted callee's parameters occupy
                    # slots 0..n-1 in declaration order (resolution creates
                    # them first), so the arguments drop straight in.
                    if argc:
                        callee_slots[:argc] = stack[-argc:]
                        del stack[-argc:]
                else:
                    if argc:
                        args = stack[-argc:]
                        del stack[-argc:]
                    else:
                        args = []
                    callee_vars = callee_frame.vars
                    # Parameters live in their slots, or — for fallback
                    # names — in the frame's base scope, which is never
                    # popped (RET discards the frame), so they bypass the
                    # undo log.
                    for index, slot in enumerate(param_slots):
                        value = args[index] if index < argc else ZERO
                        if slot is not None:
                            callee_slots[slot] = value
                        else:
                            callee_vars[callee.params[index]] = value
                call_stack.append((instructions, end, pc, stack, push, pop,
                                   frame, frame_vars, frame_slots))
                frames.append(callee_frame)
                frame = callee_frame
                frame_vars = callee_frame.vars
                frame_slots = callee_slots
                instructions = callee.instructions
                end = len(instructions)
                stack = []
                push = stack.append
                pop = stack.pop
                pc = 0
            elif opcode == op.SCOPE_PUSH:
                frame.undo.append([])
            elif opcode == op.SCOPE_POP:
                frame.pop_scopes(arg)
            elif opcode == op.POP:
                pop()
            elif opcode == op.DUP:
                push(stack[-1])
            elif opcode == op.RET:
                value = pop()
                if not call_stack:
                    return value
                frames.pop()
                (instructions, end, pc, stack, push, pop,
                 frame, frame_vars, frame_slots) = call_stack.pop()
                push(value)
            elif opcode == op.LOAD_FAST_RET:
                value = frame_slots[arg]
                if type(value) is int:
                    value = _SMALL_INTS[value] if 0 <= value < _NSMALL \
                        else ConcolicValue(value)
                if not call_stack:
                    return value
                frames.pop()
                (instructions, end, pc, stack, push, pop,
                 frame, frame_vars, frame_slots) = call_stack.pop()
                push(value)
            elif opcode == op.LOAD_RET:
                value = frame_vars.get(arg, _MISSING)
                if value is _MISSING:
                    value = global_vars.get(arg, _MISSING)
                    if value is _MISSING:
                        raise RuntimeMiniCError(f"undefined variable '{arg}'",
                                                line)
                if not call_stack:
                    return value
                frames.pop()
                (instructions, end, pc, stack, push, pop,
                 frame, frame_vars, frame_slots) = call_stack.pop()
                push(value)
            elif opcode == op.UNARY:
                value = pop()
                if type(value) is Pointer:
                    if arg == "!":
                        push(concrete(0))
                    else:
                        raise RuntimeMiniCError(
                            f"unary {arg!r} applied to a pointer", line)
                else:
                    try:
                        push(unary_int_op(arg, value))
                    except ZeroDivisionError:
                        raise DivisionByZeroError("division by zero", line)
            elif opcode == op.AND_JUMP:
                left = pop()
                if type(left) is not ConcolicValue:
                    left = as_int(left)
                if left.concrete == 0:
                    push(ConcolicValue(0, as_condition(left.symbolic)
                                       if left.symbolic is not None else None))
                    pc = arg
                else:
                    push(left)
            elif opcode == op.AND_END:
                right = pop()
                left = pop()
                if type(right) is not ConcolicValue:
                    right = as_int(right)
                push(binary_int_op("&&", left, right))
            elif opcode == op.OR_JUMP:
                left = pop()
                if type(left) is not ConcolicValue:
                    left = as_int(left)
                if left.concrete != 0:
                    push(ConcolicValue(1, as_condition(left.symbolic)
                                       if left.symbolic is not None else None))
                    pc = arg
                else:
                    push(left)
            elif opcode == op.OR_END:
                right = pop()
                left = pop()
                if type(right) is not ConcolicValue:
                    right = as_int(right)
                push(binary_int_op("||", left, right))
            elif opcode == op.TERN_FALSE:
                value = pop()
                if type(value) is not ConcolicValue:
                    value = as_int(value)
                if value.concrete == 0:
                    pc = arg
            elif opcode == op.STRING:
                cache_key, text = arg
                cached = self._string_cache.get(cache_key)
                if cached is None:
                    cached = string_to_array(text, label="literal")
                    self._string_cache[cache_key] = cached
                push(Pointer(cached, 0))
            elif opcode == op.LOAD_DEREF:
                pointer = pop()
                if not isinstance(pointer, Pointer):
                    raise ProgramCrash("null or invalid pointer dereference",
                                       line, self.current_function_name())
                if not pointer.block.in_bounds(pointer.offset):
                    raise ProgramCrash("pointer read out of bounds", line,
                                       self.current_function_name())
                push(pointer.block.cells[pointer.offset])
            elif opcode == op.STORE_DEREF:
                pointer = pop()
                value = pop()
                if not isinstance(pointer, Pointer):
                    raise ProgramCrash("null or invalid pointer dereference",
                                       line, self.current_function_name())
                if not pointer.block.in_bounds(pointer.offset):
                    raise ProgramCrash("pointer store out of bounds", line,
                                       self.current_function_name())
                pointer.block.cells[pointer.offset] = value
            elif opcode == op.LOAD_GLOBAL:
                value = global_vars.get(arg, _MISSING)
                if value is _MISSING:
                    raise RuntimeMiniCError(f"undefined variable '{arg}'",
                                            line)
                push(value)
            elif opcode == op.STORE_GLOBAL:
                global_vars[arg] = pop()
            elif opcode == op.ADDR_FAST:
                slot, name = arg
                value = frame_slots[slot]
                # Address-taken slots are excluded from int specialization,
                # but normalize defensively: a raw int must never escape
                # into an addressable cell.
                if type(value) is int:
                    value = _SMALL_INTS[value] if 0 <= value < _NSMALL \
                        else ConcolicValue(value)
                if isinstance(value, Pointer):
                    push(value)
                else:
                    # Box the scalar and rebind the slot, exactly like
                    # ADDR_NAME does for named cells.
                    box = ArrayObject(1, label=f"&{name}")
                    box.cells[0] = value
                    boxed = Pointer(box, 0)
                    frame_slots[slot] = boxed
                    push(boxed)
            elif opcode == op.ADDR_NAME:
                value = frame_vars.get(arg, _MISSING)
                from_globals = False
                if value is _MISSING:
                    value = global_vars.get(arg, _MISSING)
                    from_globals = value is not _MISSING
                    if value is _MISSING:
                        raise RuntimeMiniCError(f"undefined variable '{arg}'",
                                                line)
                if isinstance(value, Pointer):
                    push(value)
                else:
                    # Box the scalar and rebind the variable, as the
                    # interpreter's address-of does.
                    box = ArrayObject(1, label=f"&{arg}")
                    box.cells[0] = value
                    boxed = Pointer(box, 0)
                    if from_globals:
                        global_vars[arg] = boxed
                    else:
                        frame_vars[arg] = boxed
                    push(boxed)
            elif opcode == op.ADDR_INDEX:
                index = pop()
                base = pop()
                block, position = self._resolve_element(base, index, line)
                push(Pointer(block, position))
            elif opcode == op.ADDR_INVALID:
                raise RuntimeMiniCError(
                    "cannot take the address of this expression", line)
            elif opcode == op.DECL_LOCAL:
                frame.declare(arg, pop())
            elif opcode == op.DECL_GLOBAL:
                global_vars[arg] = pop()
            elif opcode == op.NEW_ARRAY:
                label, has_size = arg
                size = 1
                if has_size:
                    size_value = pop()
                    if type(size_value) is not ConcolicValue:
                        size_value = as_int(size_value)
                    size = max(1, size_value.concrete)
                push(Pointer(ArrayObject(size, label=label), 0))
            elif opcode == op.CALL_UNDEF:
                raise RuntimeMiniCError(
                    f"call to undefined function '{arg}'", line)
            elif opcode == op.INVALID_TARGET:
                raise RuntimeMiniCError("invalid assignment target", line)
            elif opcode == op.ENTRY_WARM:
                # Function-entry warm-up trigger: after the countdown
                # reaches zero, quicken the code object's candidate sites
                # against the live frame and retire the trigger to a NOP
                # (same zero charge), so steady state pays nothing.
                cell, warm_code = arg
                cell[0] -= 1
                if cell[0] <= 0:
                    self._quicken_code(warm_code, frame_slots)
                    instructions[pc - 1] = (op.NOP, None, charge, line)
            elif opcode == op.JUMP_WARM:
                # Loop-backedge warm-up trigger: like ENTRY_WARM, but hot
                # loops warm up even when the surrounding function is called
                # once; retires to the plain JUMP it replaced.
                target, cell, warm_code = arg
                cell[0] -= 1
                if cell[0] <= 0:
                    self._quicken_code(warm_code, frame_slots)
                    instructions[pc - 1] = (op.JUMP, target, charge, line)
                pc = target
            elif opcode == op.NOP:
                pass
            else:  # pragma: no cover - the compiler emits no other opcodes
                raise RuntimeMiniCError(f"unknown opcode {opcode}", line)
        # Only reachable if a code object lacks the CONST;RET terminator the
        # compiler always emits.
        if call_stack:  # pragma: no cover
            raise RuntimeMiniCError("code object missing its terminator", 0)
        return ZERO
