"""The MiniC bytecode execution backend.

``repro.vm`` lowers a parsed :class:`~repro.lang.program.Program` into a
compact stack-machine instruction stream (:mod:`repro.vm.compiler`,
:mod:`repro.vm.opcodes`) and executes it with a flat dispatch loop
(:mod:`repro.vm.machine`).  The VM is observationally identical to the
tree-walking interpreter — same :class:`ExecutionResult`, same branch-event
and syscall streams, same crash sites, same step accounting — but cheaper per
executed construct, which matters because recording, replay search and
concolic analysis all re-run the same program hundreds of times.

Select it with ``ExecutionConfig(backend="vm")`` /
``PipelineConfig(backend="vm")`` or build one directly::

    from repro.vm import VirtualMachine
    vm = VirtualMachine(program, kernel=kernel, hooks=hooks)
    result = vm.run(argv)
"""

from repro.vm.code import CodeObject, CompiledProgram
from repro.vm.compiler import Compiler, compile_program
from repro.vm.machine import VirtualMachine

__all__ = [
    "CodeObject",
    "CompiledProgram",
    "Compiler",
    "VirtualMachine",
    "compile_program",
]
