"""Code objects produced by the bytecode compiler.

A :class:`CodeObject` holds the instruction stream of one MiniC function (or
of the module-level global initializers).  A :class:`CompiledProgram` bundles
every code object of a :class:`~repro.lang.program.Program`; the compiler
caches one per program instance so the replay engine's hundreds of re-runs pay
for compilation exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.vm import opcodes
from repro.vm.opcodes import OPCODE_NAMES

Instruction = Tuple[int, object, int, int]
"""``(opcode, arg, charge, line)`` — see :mod:`repro.vm.opcodes`."""


@dataclass
class CodeObject:
    """The compiled body of one function.

    ``nlocals``/``slot_names`` describe the register-allocated frame layout
    (see :mod:`repro.lang.resolve`): the frame allocates ``nlocals`` flat
    slots and ``slot_names[i]`` is the source name living in slot ``i``
    (names repeat when distinct shadowing variables each got a slot).
    ``param_slots`` aligns with ``params``: the slot each parameter lands in,
    or ``None`` for parameters that fall back to the named-cell dict.
    """

    name: str
    params: List[str] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)
    source_line: int = 0
    nlocals: int = 0
    slot_names: List[str] = field(default_factory=list)
    param_slots: List[Optional[int]] = field(default_factory=list)
    #: True when every local is slotted: the frame's named-cell dict and
    #: scope undo log are provably never touched, so calls share one empty
    #: dict/undo instead of allocating them (see ``_Frame`` in the machine).
    bare_frame: bool = False
    #: Instruction indexes eligible for runtime quickening: generic binary
    #: sites whose operand slots are not provably int but never pointers.
    #: The warm-up triggers (ENTRY_WARM/JUMP_WARM) pass these to the VM's
    #: quickening pass, which rewrites int-shaped sites to unboxed forms.
    quicken_sites: Tuple[int, ...] = ()
    #: Slots the resolver's int-type lattice proved integer-only (disassembly
    #: and diagnostics; the compiler consumed the proof at emission time).
    int_slots: frozenset = frozenset()

    def __len__(self) -> int:
        return len(self.instructions)

    # -- debugging ---------------------------------------------------------------

    def dis(self) -> str:
        """Human-readable disassembly (debugging and documentation aid)."""

        header = f"{self.name}({', '.join(self.params)}):"
        if self.nlocals:
            header += f"  ; nlocals={self.nlocals}"
        lines = [header]
        for pc, (op, arg, charge, line) in enumerate(self.instructions):
            operand = self._format_arg(op, arg)
            note = f"  ; steps+={charge}" if charge else ""
            src = f"  @L{line}" if line else ""
            lines.append(f"  {pc:4d}  {OPCODE_NAMES.get(op, op):<14}{operand}{note}{src}")
        return "\n".join(lines)

    def _slot(self, index: object) -> str:
        names = self.slot_names
        if isinstance(index, int) and 0 <= index < len(names):
            return f"{index} ({names[index]})"
        return repr(index)

    def _format_arg(self, op: int, arg: object) -> str:
        if arg is None:
            return ""
        if op in (opcodes.BRANCH, opcodes.BRANCH_BARE):
            location, target = arg
            return f"{location.short()} -> {target}"
        if op == opcodes.BRANCH_LOGGED:
            location, target, slot = arg
            return f"{location.short()} -> {target} [slot {slot}]"
        if op == opcodes.CALL:
            code, argc = arg
            return f"{code.name}/{argc}"
        if op == opcodes.CALL_BUILTIN:
            fn, argc, _node = arg
            return f"{getattr(fn, '__name__', fn)}/{argc}"
        if op in (opcodes.LOAD_FAST, opcodes.STORE_FAST, opcodes.LOAD_FAST_RET):
            return self._slot(arg)
        if op == opcodes.ADDR_FAST:
            slot, name = arg
            return f"{slot} (&{name})"
        if op == opcodes.BINOP_FC:
            operator, slot, const = arg
            return f"{operator!r} {self._slot(slot)}, {const!r}"
        if op == opcodes.BINOP_FF:
            operator, left, right = arg
            return f"{operator!r} {self._slot(left)}, {self._slot(right)}"
        if op == opcodes.BINOP_FC_STORE:
            operator, slot, const, target = arg
            return (f"{operator!r} {self._slot(slot)}, {const!r}"
                    f" -> {self._slot(target)}")
        if op == opcodes.BINOP_FF_STORE:
            operator, left, right, target = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}"
                    f" -> {self._slot(target)}")
        if op in (opcodes.BINOP_FF_BRANCH, opcodes.BINOP_FF_BRANCH_BARE):
            operator, left, right, location, target = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}; "
                    f"{location.short()} -> {target}")
        if op == opcodes.BINOP_FF_BRANCH_LOGGED:
            operator, left, right, location, target, slot = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}; "
                    f"{location.short()} -> {target} [slot {slot}]")
        if op == opcodes.BINOP_II:
            operator, left, right, _generic = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}"
                    f"  [unboxed]")
        if op == opcodes.BINOP_IC:
            operator, slot, const, _generic = arg
            return f"{operator!r} {self._slot(slot)}, {const}  [unboxed]"
        if op == opcodes.BINOP_II_STORE:
            operator, left, right, target, _generic = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}"
                    f" -> {self._slot(target)}  [unboxed]")
        if op == opcodes.BINOP_IC_STORE:
            operator, slot, const, target, _generic = arg
            return (f"{operator!r} {self._slot(slot)}, {const}"
                    f" -> {self._slot(target)}  [unboxed]")
        if op in (opcodes.BINOP_II_BRANCH, opcodes.BINOP_II_BRANCH_BARE):
            operator, left, right, location, target, _generic = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}; "
                    f"{location.short()} -> {target}  [unboxed]")
        if op == opcodes.BINOP_II_BRANCH_LOGGED:
            operator, left, right, location, target, slot, _generic = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}; "
                    f"{location.short()} -> {target} [slot {slot}]  [unboxed]")
        if op in (opcodes.BINOP_FC_BRANCH, opcodes.BINOP_FC_BRANCH_BARE):
            operator, slot, const, location, target = arg
            return (f"{operator!r} {self._slot(slot)}, {const!r}; "
                    f"{location.short()} -> {target}")
        if op == opcodes.BINOP_FC_BRANCH_LOGGED:
            operator, slot, const, location, target, log_slot = arg
            return (f"{operator!r} {self._slot(slot)}, {const!r}; "
                    f"{location.short()} -> {target} [slot {log_slot}]")
        if op in (opcodes.BINOP_IC_BRANCH, opcodes.BINOP_IC_BRANCH_BARE):
            operator, slot, const, location, target, _generic = arg
            return (f"{operator!r} {self._slot(slot)}, {const}; "
                    f"{location.short()} -> {target}  [unboxed]")
        if op == opcodes.BINOP_IC_BRANCH_LOGGED:
            operator, slot, const, location, target, log_slot, _generic = arg
            return (f"{operator!r} {self._slot(slot)}, {const}; "
                    f"{location.short()} -> {target} [slot {log_slot}]"
                    f"  [unboxed]")
        if op in (opcodes.BINOP_SC_BRANCH, opcodes.BINOP_SC_BRANCH_BARE):
            operator, const, location, target = arg
            return (f"{operator!r} <stack>, {const!r}; "
                    f"{location.short()} -> {target}")
        if op == opcodes.BINOP_SC_BRANCH_LOGGED:
            operator, const, location, target, log_slot = arg
            return (f"{operator!r} <stack>, {const!r}; "
                    f"{location.short()} -> {target} [slot {log_slot}]")
        if op in (opcodes.BINARY_BRANCH, opcodes.BINARY_BRANCH_BARE):
            operator, location, target = arg
            return f"{operator!r}; {location.short()} -> {target}"
        if op == opcodes.BINARY_BRANCH_LOGGED:
            operator, location, target, log_slot = arg
            return (f"{operator!r}; {location.short()} -> {target}"
                    f" [slot {log_slot}]")
        if op == opcodes.ENTRY_WARM:
            cell, _code = arg
            return f"countdown={cell[0]}"
        if op == opcodes.JUMP_WARM:
            target, cell, _code = arg
            return f"{target} countdown={cell[0]}"
        if op == opcodes.LOAD2_FAST:
            left, right = arg
            return f"{self._slot(left)}, {self._slot(right)}"
        if op in (opcodes.LOAD_INDEX_FAST, opcodes.STORE_INDEX_FAST):
            return f"[{self._slot(arg)}]"
        if op in (opcodes.LOAD_INDEX_FF, opcodes.STORE_INDEX_FF):
            base, index = arg
            return f"{self._slot(base)}[{self._slot(index)}]"
        if op == opcodes.BINOP_FC_CALL:
            operator, slot, const, callee, argc, _fc_line = arg
            return (f"{operator!r} {self._slot(slot)}, {const!r}; "
                    f"{callee.name}/{argc}")
        if op == opcodes.BINARY_RET:
            return f"{arg!r}"
        return repr(arg)


@dataclass
class CompiledProgram:
    """Every code object of one program, ready for the VM.

    When compiled for a specific :class:`~repro.instrument.plan.
    InstrumentationPlan` (*plan-specialized* code), ``plan_fingerprint``
    identifies the plan the instruction stream was specialized for and
    ``logged_locations`` maps every ``BRANCH_LOGGED`` slot index back to its
    :class:`~repro.lang.cfg.BranchLocation` (the VM keeps one inline counter
    per slot and merges them into the logger's per-location statistics at the
    end of the run).  Unspecialized code has ``plan_fingerprint is None`` and
    an empty slot table.
    """

    name: str
    functions: Dict[str, CodeObject] = field(default_factory=dict)
    globals_code: Optional[CodeObject] = None
    plan_fingerprint: Optional[Tuple] = None
    logged_locations: List[object] = field(default_factory=list)
    #: RESOLVER_VERSION the slot layout was produced by, or 0 when compiled
    #: without register allocation (every local on the named-cell path).
    resolver_version: int = 0

    @property
    def main(self) -> CodeObject:
        return self.functions["main"]

    def instruction_count(self) -> int:
        total = len(self.globals_code.instructions) if self.globals_code else 0
        return total + sum(len(code.instructions) for code in self.functions.values())

    def dis(self) -> str:
        parts = []
        if self.globals_code is not None and self.globals_code.instructions:
            parts.append(self.globals_code.dis())
        parts.extend(code.dis() for code in self.functions.values())
        return "\n\n".join(parts)
