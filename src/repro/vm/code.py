"""Code objects produced by the bytecode compiler.

A :class:`CodeObject` holds the instruction stream of one MiniC function (or
of the module-level global initializers).  A :class:`CompiledProgram` bundles
every code object of a :class:`~repro.lang.program.Program`; the compiler
caches one per program instance so the replay engine's hundreds of re-runs pay
for compilation exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.vm import opcodes
from repro.vm.opcodes import OPCODE_NAMES

Instruction = Tuple[int, object, int, int]
"""``(opcode, arg, charge, line)`` — see :mod:`repro.vm.opcodes`."""


@dataclass
class CodeObject:
    """The compiled body of one function.

    ``nlocals``/``slot_names`` describe the register-allocated frame layout
    (see :mod:`repro.lang.resolve`): the frame allocates ``nlocals`` flat
    slots and ``slot_names[i]`` is the source name living in slot ``i``
    (names repeat when distinct shadowing variables each got a slot).
    ``param_slots`` aligns with ``params``: the slot each parameter lands in,
    or ``None`` for parameters that fall back to the named-cell dict.
    """

    name: str
    params: List[str] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)
    source_line: int = 0
    nlocals: int = 0
    slot_names: List[str] = field(default_factory=list)
    param_slots: List[Optional[int]] = field(default_factory=list)
    #: True when every local is slotted: the frame's named-cell dict and
    #: scope undo log are provably never touched, so calls share one empty
    #: dict/undo instead of allocating them (see ``_Frame`` in the machine).
    bare_frame: bool = False

    def __len__(self) -> int:
        return len(self.instructions)

    # -- debugging ---------------------------------------------------------------

    def dis(self) -> str:
        """Human-readable disassembly (debugging and documentation aid)."""

        header = f"{self.name}({', '.join(self.params)}):"
        if self.nlocals:
            header += f"  ; nlocals={self.nlocals}"
        lines = [header]
        for pc, (op, arg, charge, line) in enumerate(self.instructions):
            operand = self._format_arg(op, arg)
            note = f"  ; steps+={charge}" if charge else ""
            src = f"  @L{line}" if line else ""
            lines.append(f"  {pc:4d}  {OPCODE_NAMES.get(op, op):<14}{operand}{note}{src}")
        return "\n".join(lines)

    def _slot(self, index: object) -> str:
        names = self.slot_names
        if isinstance(index, int) and 0 <= index < len(names):
            return f"{index} ({names[index]})"
        return repr(index)

    def _format_arg(self, op: int, arg: object) -> str:
        if arg is None:
            return ""
        if op in (opcodes.BRANCH, opcodes.BRANCH_BARE):
            location, target = arg
            return f"{location.short()} -> {target}"
        if op == opcodes.BRANCH_LOGGED:
            location, target, slot = arg
            return f"{location.short()} -> {target} [slot {slot}]"
        if op == opcodes.CALL:
            code, argc = arg
            return f"{code.name}/{argc}"
        if op == opcodes.CALL_BUILTIN:
            fn, argc, _node = arg
            return f"{getattr(fn, '__name__', fn)}/{argc}"
        if op in (opcodes.LOAD_FAST, opcodes.STORE_FAST, opcodes.LOAD_FAST_RET):
            return self._slot(arg)
        if op == opcodes.ADDR_FAST:
            slot, name = arg
            return f"{slot} (&{name})"
        if op == opcodes.BINOP_FC:
            operator, slot, const = arg
            return f"{operator!r} {self._slot(slot)}, {const!r}"
        if op == opcodes.BINOP_FF:
            operator, left, right = arg
            return f"{operator!r} {self._slot(left)}, {self._slot(right)}"
        if op == opcodes.BINOP_FC_STORE:
            operator, slot, const, target = arg
            return (f"{operator!r} {self._slot(slot)}, {const!r}"
                    f" -> {self._slot(target)}")
        if op == opcodes.BINOP_FF_STORE:
            operator, left, right, target = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}"
                    f" -> {self._slot(target)}")
        if op in (opcodes.BINOP_FF_BRANCH, opcodes.BINOP_FF_BRANCH_BARE):
            operator, left, right, location, target = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}; "
                    f"{location.short()} -> {target}")
        if op == opcodes.BINOP_FF_BRANCH_LOGGED:
            operator, left, right, location, target, slot = arg
            return (f"{operator!r} {self._slot(left)}, {self._slot(right)}; "
                    f"{location.short()} -> {target} [slot {slot}]")
        return repr(arg)


@dataclass
class CompiledProgram:
    """Every code object of one program, ready for the VM.

    When compiled for a specific :class:`~repro.instrument.plan.
    InstrumentationPlan` (*plan-specialized* code), ``plan_fingerprint``
    identifies the plan the instruction stream was specialized for and
    ``logged_locations`` maps every ``BRANCH_LOGGED`` slot index back to its
    :class:`~repro.lang.cfg.BranchLocation` (the VM keeps one inline counter
    per slot and merges them into the logger's per-location statistics at the
    end of the run).  Unspecialized code has ``plan_fingerprint is None`` and
    an empty slot table.
    """

    name: str
    functions: Dict[str, CodeObject] = field(default_factory=dict)
    globals_code: Optional[CodeObject] = None
    plan_fingerprint: Optional[Tuple] = None
    logged_locations: List[object] = field(default_factory=list)
    #: RESOLVER_VERSION the slot layout was produced by, or 0 when compiled
    #: without register allocation (every local on the named-cell path).
    resolver_version: int = 0

    @property
    def main(self) -> CodeObject:
        return self.functions["main"]

    def instruction_count(self) -> int:
        total = len(self.globals_code.instructions) if self.globals_code else 0
        return total + sum(len(code.instructions) for code in self.functions.values())

    def dis(self) -> str:
        parts = []
        if self.globals_code is not None and self.globals_code.instructions:
            parts.append(self.globals_code.dis())
        parts.extend(code.dis() for code in self.functions.values())
        return "\n\n".join(parts)
