"""The MiniC bytecode compiler.

Lowers the AST of every function in a :class:`~repro.lang.program.Program`
into the stack-machine instruction stream described in
:mod:`repro.vm.opcodes`.  The compiler is careful about three kinds of parity
with the tree-walking interpreter (which the differential tests in
``tests/test_vm_parity.py`` enforce):

* **evaluation order** — operands compile in exactly the interpreter's
  evaluation order, so branch events and syscalls fire in the same sequence;
* **step accounting** — every AST node the interpreter would visit (one
  ``_step()`` per statement execution and per expression evaluation) is
  charged onto the first instruction executed on that node's behalf, pre-order
  via a pending-charge counter.  Loop headers and other control-flow joins are
  preceded by a ``NOP`` so per-entry charges are not re-paid on every
  iteration;
* **failure behaviour** — invalid programs fail at *run* time with the same
  error type, message and source line as the interpreter (e.g. a call to an
  undefined function only fails if executed), never at compile time.

Compilation is cached per ``(Program, plan fingerprint)`` pair
(``compile_program``), so the replay engine's hundreds of re-runs compile once
per instrumentation plan.  Passing an :class:`~repro.instrument.plan.
InstrumentationPlan` produces *plan-specialized* code: branches the plan
instruments compile to ``BRANCH_LOGGED`` (the VM inlines the bitvector
append/compare) and every other branch compiles to the hook-free
``BRANCH_BARE`` — uninstrumented branches pay zero hook dispatch, mirroring
the paper's "overhead only where you instrument".  Without a plan the legacy
``BRANCH`` (every event dispatched to the hooks) is emitted, which any
:class:`~repro.interp.tracer.ExecutionHooks` implementation can observe.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List, Optional

from repro.interp.builtins import lookup_builtin
from repro.interp.values import ZERO, concrete
from repro.telemetry import runtime as telemetry_runtime
from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    AssignExpr,
    BinaryOp,
    Block,
    Break,
    Call,
    CharLiteral,
    Continue,
    Expr,
    ExprStmt,
    ForStmt,
    Identifier,
    IfStmt,
    IntLiteral,
    ReturnStmt,
    Stmt,
    StringLiteral,
    TernaryOp,
    UnaryOp,
    VarDecl,
    WhileStmt,
)
from repro.lang.cfg import branch_location_for
from repro.lang.errors import SemanticError
from repro.lang.program import Program
from repro.lang.resolve import (
    GLOBAL,
    RESOLVER_VERSION,
    SLOT,
    FunctionResolution,
    resolve_program,
)
from repro.vm import opcodes as op
from repro.vm import synth
from repro.vm.code import CodeObject, CompiledProgram

_CACHE_ATTR = "_vm_compiled_by_plan"

#: Operators eligible for compare-and-branch fusion (their concrete result is
#: the branch decision itself).
_COMPARISONS = frozenset(("<", ">", "<=", ">=", "==", "!="))

#: Operators the unboxed BINOP_II* forms implement inline.  Division and
#: modulo stay generic (their zero checks and C-style truncation live in
#: ``binary_int_op``); everything here is branch-free int arithmetic.
_II_OPS = frozenset(("+", "-", "*", "<", ">", "<=", ">=", "==", "!="))

#: Warm-up countdowns for the quickening triggers: function entries observe
#: more calls than loop backedges observe iterations before committing, so
#: both trigger after the frame's slots have realistic shapes.
_ENTRY_WARM_COUNT = 8
_JUMP_WARM_COUNT = 16

#: Generic site opcode -> its unboxed form (static emission and quickening).
_UNBOXED_OPCODES = {
    op.BINOP_FC: op.BINOP_IC,
    op.BINOP_FF: op.BINOP_II,
    op.BINOP_FC_STORE: op.BINOP_IC_STORE,
    op.BINOP_FF_STORE: op.BINOP_II_STORE,
    op.BINOP_FF_BRANCH: op.BINOP_II_BRANCH,
    op.BINOP_FF_BRANCH_BARE: op.BINOP_II_BRANCH_BARE,
    op.BINOP_FF_BRANCH_LOGGED: op.BINOP_II_BRANCH_LOGGED,
    op.BINOP_FC_BRANCH: op.BINOP_IC_BRANCH,
    op.BINOP_FC_BRANCH_BARE: op.BINOP_IC_BRANCH_BARE,
    op.BINOP_FC_BRANCH_LOGGED: op.BINOP_IC_BRANCH_LOGGED,
}

#: The slot-vs-const compare-and-branch flavour of each FF fused opcode.
#: Only emitted under the specialization tier (see ``_fuse_cmp_branch``).
_FC_BRANCH_FORMS = {
    op.BINOP_FF_BRANCH: op.BINOP_FC_BRANCH,
    op.BINOP_FF_BRANCH_BARE: op.BINOP_FC_BRANCH_BARE,
    op.BINOP_FF_BRANCH_LOGGED: op.BINOP_FC_BRANCH_LOGGED,
}

#: The stack-vs-const (``CONST;BINARY;BRANCH_*``) and stack-vs-stack
#: (``BINARY;BRANCH_*``) flavours; specialization tier only, same mapping key.
_SC_BRANCH_FORMS = {
    op.BINOP_FF_BRANCH: op.BINOP_SC_BRANCH,
    op.BINOP_FF_BRANCH_BARE: op.BINOP_SC_BRANCH_BARE,
    op.BINOP_FF_BRANCH_LOGGED: op.BINOP_SC_BRANCH_LOGGED,
}
_BINARY_BRANCH_FORMS = {
    op.BINOP_FF_BRANCH: op.BINARY_BRANCH,
    op.BINOP_FF_BRANCH_BARE: op.BINARY_BRANCH_BARE,
    op.BINOP_FF_BRANCH_LOGGED: op.BINARY_BRANCH_LOGGED,
}


def unboxed_form(instr: tuple) -> tuple:
    """The unboxed (BINOP_I*) instruction for a generic candidate site.

    The original instruction rides along as the last arg element: it is the
    deopt target the VM rewrites back on a type-guard violation, making
    deoptimization a one-slot list store.  FC consts unbox to the raw int
    here, so the hot arm never touches the ConcolicValue.
    """

    opcode, arg, charge, line = instr
    if opcode in (op.BINOP_FC, op.BINOP_FC_STORE, op.BINOP_FC_BRANCH,
                  op.BINOP_FC_BRANCH_BARE, op.BINOP_FC_BRANCH_LOGGED):
        arg = arg[:2] + (arg[2].concrete,) + arg[3:]
    return (_UNBOXED_OPCODES[opcode], tuple(arg) + (instr,), charge, line)

#: Process-wide compiled-code cache counters (all programs, all plans).
#: Guarded by a lock because replay workers construct VMs concurrently and
#: the counters are a diagnostic whose sums must add up.
_CACHE_STATS = {"hits": 0, "misses": 0}
_CACHE_STATS_LOCK = threading.Lock()


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the ``(Program, plan)`` compiled-code cache.

    .. deprecated:: 0.4
        Thin shim kept for pre-telemetry callers.  The same events flow into
        the active :mod:`repro.telemetry` registry as the timing-marked
        ``vm.compile_cache.hits`` / ``vm.compile_cache.misses`` counters
        (timing-marked because cache warmth is per-process, not a property
        of the committed run sequence).
    """

    with _CACHE_STATS_LOCK:
        return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    with _CACHE_STATS_LOCK:
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0


#: Per-thread scope for attributing cache events to one logical operation.
#: The process-wide counters above cannot tell concurrent replay workers
#: apart; a scope counts only the compile_program calls made by *this* thread
#: while it is active, which is exactly one pending-item evaluation in the
#: replay engine (worker threads and worker processes alike).
_SCOPE_TLS = threading.local()


@contextlib.contextmanager
def cache_scope() -> Iterator[Dict[str, int]]:
    """Count this thread's compile-cache hits/misses while the scope is open.

    .. deprecated:: 0.4
        Shim over the :mod:`repro.telemetry` runtime: a
        ``telemetry.scoped(registry)`` block now captures the same events as
        ``vm.compile_cache.*`` counters.  The replay engine still uses this
        scope to fill the legacy per-evaluation fields.
    """

    events = {"hits": 0, "misses": 0}
    previous = getattr(_SCOPE_TLS, "events", None)
    _SCOPE_TLS.events = events
    try:
        yield events
    finally:
        _SCOPE_TLS.events = previous


def _count_event(kind: str) -> None:
    with _CACHE_STATS_LOCK:
        _CACHE_STATS[kind] += 1
    events = getattr(_SCOPE_TLS, "events", None)
    if events is not None:
        events[kind] += 1
    # Mirror into the active telemetry registry (a shared no-op when
    # telemetry is off, so this costs one attribute lookup + method call).
    telemetry_runtime.active().counter(
        f"vm.compile_cache.{kind}", timing=True).inc()


def compile_program(program: Program, plan=None,
                    resolve: bool = True,
                    cmp_branch: bool = True,
                    specialize_ints: bool = False,
                    synth_fusions=None) -> CompiledProgram:
    """Compile *program* for *plan*, caching per ``(program, key)``.

    ``plan=None`` compiles unspecialized branch dispatch; a plan keys the
    cache on :meth:`~repro.instrument.plan.InstrumentationPlan.fingerprint`,
    so specialized code compiled for one plan can never be handed to a run
    using a different plan — two plans only share code when their
    instrumented branch sets are identical (in which case the code streams
    are, too).

    ``resolve`` enables register allocation (the static scope-resolution
    pass of :mod:`repro.lang.resolve`); the cache key incorporates
    :data:`~repro.lang.resolve.RESOLVER_VERSION` — and whether resolution
    was enabled at all — so a stale slot layout can never leak into a run
    compiled under different resolution rules.

    ``cmp_branch`` enables the compare-and-branch superinstructions
    (``BINOP_FF_BRANCH*``); disable to emit the unfused pair for comparison
    benchmarks.  Part of the cache key for the same staleness reason.

    ``specialize_ints`` enables the adaptive int specialization tier: the
    resolver's int-slot lattice drives static ``BINOP_II*`` emission and
    warm-up triggers mark the remaining candidate sites for runtime
    quickening.  Requires ``resolve``; keyed into the cache because the
    quickening pass mutates specialized streams in place and such code must
    never be handed to a run compiled with the knob off.

    ``synth_fusions`` is an ordered tuple of :data:`repro.vm.synth.
    PAIR_CATALOG` names to materialize (``None`` disables the pass); part of
    the cache key since each selection yields a distinct stream.
    """

    specialize_ints = bool(specialize_ints and resolve)
    fusion_key = tuple(synth_fusions) if synth_fusions else ()
    key = (RESOLVER_VERSION if resolve else 0,
           None if plan is None else plan.fingerprint(),
           cmp_branch, specialize_ints, fusion_key)
    cache = getattr(program, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(program, _CACHE_ATTR, cache)
    cached = cache.get(key)
    if cached is not None:
        _count_event("hits")
        return cached
    _count_event("misses")
    compiled = Compiler(program, plan=plan, resolve=resolve,
                        cmp_branch=cmp_branch,
                        specialize_ints=specialize_ints,
                        synth_fusions=fusion_key).compile()
    cache[key] = compiled
    return compiled


class _Label:
    """A forward-patchable jump target."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: Optional[int] = None


class Compiler:
    """Compiles every function of one program (optionally plan-specialized)."""

    def __init__(self, program: Program, plan=None, resolve: bool = True,
                 cmp_branch: bool = True, specialize_ints: bool = False,
                 synth_fusions=()) -> None:
        self.program = program
        self.plan = plan
        self.cmp_branch = cmp_branch
        self.resolution = resolve_program(program) if resolve else None
        self.specialize_ints = specialize_ints and self.resolution is not None
        self.synth_fusions = tuple(synth_fusions) if synth_fusions else ()
        # Slot table for BRANCH_LOGGED: slot index -> BranchLocation.  The VM
        # keeps one inline execution counter per slot.
        self.logged_locations: List[object] = []
        # Stubs first so recursive and mutual calls can reference callees.
        self.code_objects: Dict[str, CodeObject] = {}
        for name, fn in program.functions.items():
            code = CodeObject(name=name, params=[p.name for p in fn.params],
                              source_line=fn.line)
            fn_resolution = self._function_resolution(name)
            if fn_resolution is not None:
                code.nlocals = fn_resolution.nlocals
                code.slot_names = list(fn_resolution.slot_names)
                code.param_slots = list(fn_resolution.param_slots)
                code.bare_frame = fn_resolution.elide_scopes
            else:
                code.param_slots = [None] * len(code.params)
            self.code_objects[name] = code

    def _function_resolution(self, name: str) -> Optional[FunctionResolution]:
        if self.resolution is None:
            return None
        return self.resolution.for_function(name)

    def compile(self) -> CompiledProgram:
        globals_code = CodeObject(name="<globals>")
        emitter = _FunctionEmitter(self, "<globals>", globals_code)
        for decl in self.program.unit.globals:
            # The interpreter runs global initializers directly (no statement
            # step for the declaration itself), so only the initializer
            # expressions carry charges here.
            emitter.compile_vardecl(decl.decl, declare_global=True)
        emitter.finish()
        for name, fn in self.program.functions.items():
            body_emitter = _FunctionEmitter(self, name, self.code_objects[name],
                                            self._function_resolution(name))
            body_emitter.compile_stmt(fn.body)
            body_emitter.finish()
        return CompiledProgram(name=self.program.name,
                               functions=self.code_objects,
                               globals_code=globals_code,
                               plan_fingerprint=(None if self.plan is None
                                                 else self.plan.fingerprint()),
                               logged_locations=self.logged_locations,
                               resolver_version=(RESOLVER_VERSION
                                                 if self.resolution is not None
                                                 else 0))


class _FunctionEmitter:
    """Emits the instruction stream of a single function."""

    def __init__(self, compiler: Compiler, function_name: str,
                 code: CodeObject,
                 resolution: Optional[FunctionResolution] = None) -> None:
        self.compiler = compiler
        self.function_name = function_name
        self.code = code
        self.instructions = code.instructions
        self.resolution = resolution
        # A fully slotted function has no named cells, so scope push/pop
        # bookkeeping is observationally empty and is not emitted at all.
        self.elide_scopes = resolution is not None and resolution.elide_scopes
        self.pending = 0
        self.scope_depth = 0
        # (break_label, continue_label, scope_depth) for each enclosing loop.
        self.loops: List[tuple] = []
        self._labels: List[_Label] = []
        # Instruction indexes some already-bound label points at; peephole
        # fusion must not swallow a jump target.
        self._bound_positions: set = set()

    def _access(self, node) -> tuple:
        """The resolved access kind of an identifier/declarator node."""

        if self.resolution is None:
            return ("named",)
        return self.resolution.access(node.node_id)

    # -- emission helpers -------------------------------------------------------

    def emit(self, opcode: int, arg: object = None, line: int = 0) -> None:
        charge = self.pending
        self.pending = 0
        self.instructions.append((opcode, arg, charge, line))

    def new_label(self) -> _Label:
        label = _Label()
        self._labels.append(label)
        return label

    def bind(self, label: _Label) -> None:
        # Flush any pending charge so it is not re-paid by every path that
        # jumps here (loop headers, if/else joins).
        if self.pending:
            self.emit(op.NOP)
        label.pc = len(self.instructions)
        self._bound_positions.add(label.pc)

    def finish(self) -> None:
        if self.pending:
            self.emit(op.NOP)
        self.emit(op.CONST, ZERO)
        self.emit(op.RET)
        # Synthesized superinstructions first (they delete instructions and
        # remap labels), then the warm-up triggers (they insert and shift
        # labels) — both while branch args still hold patchable _Labels.
        if self.compiler.synth_fusions:
            self._apply_synth(self.compiler.synth_fusions)
            # Second round for catalog pairs whose first member is itself a
            # fusion product (LOAD2_FAST;LOAD_INDEX -> LOAD_INDEX_FF); a
            # no-op when nothing matches.
            self._apply_synth(self.compiler.synth_fusions)
        specialize = self.compiler.specialize_ints and self.resolution is not None
        if specialize and self._needs_quickening():
            self._insert_warm_triggers()
        self._patch_labels()
        if specialize:
            self._specialize_int_sites()

    def _patch_labels(self) -> None:
        jump_ops = (op.JUMP, op.AND_JUMP, op.OR_JUMP, op.TERN_FALSE)
        for pc, (opcode, arg, charge, line) in enumerate(self.instructions):
            if opcode in jump_ops and isinstance(arg, _Label):
                self.instructions[pc] = (opcode, arg.pc, charge, line)
            elif opcode == op.JUMP_WARM:
                label, cell, code = arg
                self.instructions[pc] = (opcode, (label.pc, cell, code),
                                         charge, line)
            elif opcode in (op.BRANCH, op.BRANCH_BARE):
                location, label = arg
                self.instructions[pc] = (opcode, (location, label.pc), charge, line)
            elif opcode == op.BRANCH_LOGGED:
                location, label, slot = arg
                self.instructions[pc] = (opcode, (location, label.pc, slot),
                                         charge, line)
            elif opcode in (op.BINOP_FF_BRANCH, op.BINOP_FF_BRANCH_BARE,
                            op.BINOP_FC_BRANCH, op.BINOP_FC_BRANCH_BARE):
                operator, left, right, location, label = arg
                self.instructions[pc] = (
                    opcode, (operator, left, right, location, label.pc),
                    charge, line)
            elif opcode in (op.BINOP_FF_BRANCH_LOGGED,
                            op.BINOP_FC_BRANCH_LOGGED):
                operator, left, right, location, label, slot = arg
                self.instructions[pc] = (
                    opcode, (operator, left, right, location, label.pc, slot),
                    charge, line)
            elif opcode in (op.BINOP_SC_BRANCH, op.BINOP_SC_BRANCH_BARE):
                operator, const, location, label = arg
                self.instructions[pc] = (
                    opcode, (operator, const, location, label.pc),
                    charge, line)
            elif opcode == op.BINOP_SC_BRANCH_LOGGED:
                operator, const, location, label, slot = arg
                self.instructions[pc] = (
                    opcode, (operator, const, location, label.pc, slot),
                    charge, line)
            elif opcode in (op.BINARY_BRANCH, op.BINARY_BRANCH_BARE):
                operator, location, label = arg
                self.instructions[pc] = (
                    opcode, (operator, location, label.pc), charge, line)
            elif opcode == op.BINARY_BRANCH_LOGGED:
                operator, location, label, slot = arg
                self.instructions[pc] = (
                    opcode, (operator, location, label.pc, slot), charge, line)

    # -- adaptive specialization passes ------------------------------------------

    def _apply_synth(self, selections) -> None:
        """Materialize the selected superinstruction pairs (pre-label-patch).

        One greedy left-to-right pass; a pair is declined when a bound label
        points at its second instruction (a jump could land mid-pattern).
        Deleting instructions shifts every later pc, so bound labels and
        positions are remapped through an old->new table.
        """

        instructions = self.instructions
        bound = self._bound_positions
        fused_stream: List = []
        pc_map: Dict[int, int] = {}
        index = 0
        count = len(instructions)
        while index < count:
            pc_map[index] = len(fused_stream)
            if index + 1 < count and (index + 1) not in bound:
                fused = synth.try_fuse(selections, instructions[index],
                                       instructions[index + 1])
                if fused is not None:
                    fused_stream.append(fused)
                    index += 2
                    continue
            fused_stream.append(instructions[index])
            index += 1
        pc_map[count] = len(fused_stream)
        for label in self._labels:
            if label.pc is not None:
                label.pc = pc_map[label.pc]
        self._bound_positions = {pc_map[position] for position in bound}
        instructions[:] = fused_stream

    def _site_slots(self, opcode: int, arg) -> Optional[tuple]:
        """``(operand_slots, target_slots)`` of an int-specializable site.

        Slot positions are identical pre- and post-label-patch (only branch
        targets change), so both the warm-trigger scan and the rewrite pass
        share this classification.  Returns ``None`` for non-candidates.
        """

        if opcode in (op.BINOP_FC, op.BINOP_FC_STORE):
            if arg[0] not in _II_OPS or arg[2].symbolic is not None:
                return None
            targets = (arg[3],) if opcode == op.BINOP_FC_STORE else ()
            return ((arg[1],), targets)
        if opcode in (op.BINOP_FF, op.BINOP_FF_STORE):
            if arg[0] not in _II_OPS:
                return None
            targets = (arg[3],) if opcode == op.BINOP_FF_STORE else ()
            return ((arg[1], arg[2]), targets)
        if opcode in (op.BINOP_FF_BRANCH, op.BINOP_FF_BRANCH_BARE,
                      op.BINOP_FF_BRANCH_LOGGED):
            return ((arg[1], arg[2]), ())
        if opcode in (op.BINOP_FC_BRANCH, op.BINOP_FC_BRANCH_BARE,
                      op.BINOP_FC_BRANCH_LOGGED):
            if arg[2].symbolic is not None:
                return None
            return ((arg[1],), ())
        return None

    def _needs_quickening(self) -> bool:
        """Whether any site must wait for runtime shape observation."""

        int_slots = self.resolution.int_slots
        never = self.resolution.pointer_slots
        for opcode, arg, _charge, _line in self.instructions:
            slots = self._site_slots(opcode, arg)
            if slots is None:
                continue
            operands, targets = slots
            if any(slot in never for slot in operands + targets):
                continue
            if not all(slot in int_slots for slot in operands):
                return True
        return False

    def _insert_warm_triggers(self) -> None:
        """Insert ENTRY_WARM at pc 0 and turn loop backedges into JUMP_WARM.

        Runs pre-label-patch: inserting at the front shifts every bound
        label and position by one, and backedge detection compares a JUMP's
        (already bound) label pc against its own index.  Charges are
        untouched — ENTRY_WARM carries zero and JUMP_WARM inherits its
        JUMP's — so step accounting is unchanged.
        """

        instructions = self.instructions
        instructions.insert(
            0, (op.ENTRY_WARM, ([_ENTRY_WARM_COUNT], self.code), 0, 0))
        for label in self._labels:
            if label.pc is not None:
                label.pc += 1
        self._bound_positions = {position + 1
                                 for position in self._bound_positions}
        for index, (opcode, arg, charge, line) in enumerate(instructions):
            if (opcode == op.JUMP and isinstance(arg, _Label)
                    and arg.pc is not None and arg.pc <= index):
                instructions[index] = (
                    op.JUMP_WARM, (arg, [_JUMP_WARM_COUNT], self.code),
                    charge, line)

    def _specialize_int_sites(self) -> None:
        """Rewrite provably-int sites to unboxed forms; mark the rest.

        Runs post-label-patch so the generic instruction embedded in each
        unboxed arg (the deopt target) is final.  Sites whose operand slots
        are not provably int but never pointers become quickening candidates
        on ``code.quicken_sites``.
        """

        resolution = self.resolution
        int_slots = resolution.int_slots
        never = resolution.pointer_slots
        instructions = self.instructions
        quicken: List[int] = []
        for index, instr in enumerate(instructions):
            opcode, arg, charge, line = instr
            slots = self._site_slots(opcode, arg)
            if slots is None:
                continue
            operands, targets = slots
            if any(slot in never for slot in operands + targets):
                continue
            if all(slot in int_slots for slot in operands):
                instructions[index] = unboxed_form(instr)
            else:
                quicken.append(index)
        self.code.quicken_sites = tuple(quicken)
        self.code.int_slots = int_slots

    def emit_branch(self, location, else_label: _Label) -> None:
        """Emit the branch flavour the compilation mode calls for."""

        plan = self.compiler.plan
        if plan is None:
            if self._fuse_cmp_branch(op.BINOP_FF_BRANCH,
                                     (location, else_label)):
                return
            self.emit(op.BRANCH, (location, else_label))
        elif plan.is_instrumented(location):
            slot = len(self.compiler.logged_locations)
            self.compiler.logged_locations.append(location)
            if self._fuse_cmp_branch(op.BINOP_FF_BRANCH_LOGGED,
                                     (location, else_label, slot)):
                return
            self.emit(op.BRANCH_LOGGED, (location, else_label, slot))
        else:
            if self._fuse_cmp_branch(op.BINOP_FF_BRANCH_BARE,
                                     (location, else_label)):
                return
            self.emit(op.BRANCH_BARE, (location, else_label))

    def _fuse_cmp_branch(self, fused_opcode: int, branch_arg: tuple) -> bool:
        """Peephole: collapse ``BINOP_FF;BRANCH_*`` (the ``while (i < n)``
        hot shape) into one compare-and-branch dispatch.

        Only comparison operators fuse: their concrete result *is* the branch
        decision, so the fused opcode skips materializing the intermediate
        truth value entirely.  Same label rules as :meth:`_fuse_binop_store`
        — declined when a bound label points at the would-be branch position
        (a jump could land there expecting the condition on the stack).
        """

        if not self.compiler.cmp_branch:
            return False
        instructions = self.instructions
        if not instructions or len(instructions) in self._bound_positions:
            return False
        opcode, arg, charge, line = instructions[-1]
        if opcode == op.BINOP_FC:
            # The slot-vs-const flavour belongs to the specialization tier:
            # it exists to be unboxed into BINOP_IC_BRANCH* (and to serve as
            # that form's deopt target), so it is only emitted when the tier
            # can consume it — the PR 5 instruction set stays byte-identical
            # with specialization off.
            if not self.compiler.specialize_ints:
                return False
            fused_opcode = _FC_BRANCH_FORMS[fused_opcode]
        elif opcode == op.BINARY:
            # Stack-condition comparisons (specialization tier only): the
            # result's truth value is the branch decision.  A CONST feeding
            # the right operand — the ``ch == 'X'`` parser shape — is
            # swallowed too, unless a bound label points at the BINARY
            # (a jump could land there expecting the const on the stack).
            if not self.compiler.specialize_ints or arg not in _COMPARISONS:
                return False
            if (len(instructions) >= 2
                    and instructions[-2][0] == op.CONST
                    and len(instructions) - 1 not in self._bound_positions):
                instructions.pop()
                _const_op, const, const_charge, _const_line = instructions[-1]
                charge += const_charge + self.pending
                self.pending = 0
                instructions[-1] = (_SC_BRANCH_FORMS[fused_opcode],
                                    (arg, const) + branch_arg, charge, line)
                return True
            charge += self.pending
            self.pending = 0
            instructions[-1] = (_BINARY_BRANCH_FORMS[fused_opcode],
                                (arg,) + branch_arg, charge, line)
            return True
        elif opcode != op.BINOP_FF:
            return False
        if arg[0] not in _COMPARISONS:
            return False
        charge += self.pending
        self.pending = 0
        instructions[-1] = (fused_opcode, arg + branch_arg, charge, line)
        return True

    # -- statements ------------------------------------------------------------

    def compile_stmt(self, stmt: Stmt) -> None:
        self.pending += 1  # the interpreter's _exec_stmt step
        if isinstance(stmt, Block):
            if self.elide_scopes:
                # No named cells in this function: the scope would only ever
                # be pushed and popped empty.  The pending charge flows to
                # the first instruction of the first child, preserving the
                # accumulated step totals exactly.
                for child in stmt.statements:
                    self.compile_stmt(child)
                return
            self.emit(op.SCOPE_PUSH)
            self.scope_depth += 1
            for child in stmt.statements:
                self.compile_stmt(child)
            self.emit(op.SCOPE_POP, 1)
            self.scope_depth -= 1
        elif isinstance(stmt, VarDecl):
            self.compile_vardecl(stmt)
        elif isinstance(stmt, Assign):
            self.compile_expr(stmt.value)
            self._compile_store(stmt.target)
        elif isinstance(stmt, ExprStmt):
            self.compile_expr(stmt.expr)
            self.emit(op.POP)
        elif isinstance(stmt, IfStmt):
            self._compile_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._compile_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._compile_for(stmt)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self.compile_expr(stmt.value)
            else:
                self.emit(op.CONST, ZERO)
            if not self._fuse_load_ret():
                self.emit(op.RET)
        elif isinstance(stmt, Break):
            self._compile_loop_exit(stmt, is_break=True)
        elif isinstance(stmt, Continue):
            self._compile_loop_exit(stmt, is_break=False)
        else:  # pragma: no cover - parser produces no other statement nodes
            raise SemanticError(
                f"unsupported statement {type(stmt).__name__}")

    def compile_vardecl(self, decl: VarDecl, declare_global: bool = False) -> None:
        declare = op.DECL_GLOBAL if declare_global else op.DECL_LOCAL
        for declarator in decl.declarators:
            if declarator.is_array:
                has_size = declarator.array_size is not None
                if has_size:
                    self.compile_expr(declarator.array_size)
                self.emit(op.NEW_ARRAY, (declarator.name, has_size))
            elif declarator.init is not None:
                self.compile_expr(declarator.init)
            else:
                self.emit(op.CONST, ZERO)
            if declare_global:
                self.emit(declare, declarator.name)
                continue
            access = self._access(declarator)
            if access[0] == SLOT:
                # Declaring a slotted variable is just a slot write: the
                # resolver proved no named cell can alias it, so there is
                # nothing to shadow or undo.
                self.emit(op.STORE_FAST, access[1])
            else:
                self.emit(declare, declarator.name)

    def _compile_if(self, stmt: IfStmt) -> None:
        else_label = self.new_label()
        self.compile_expr(stmt.cond)
        location = branch_location_for(self.function_name, stmt)
        self.emit_branch(location, else_label)
        self.compile_stmt(stmt.then)
        if stmt.otherwise is not None:
            end_label = self.new_label()
            self.emit(op.JUMP, end_label)
            self.bind(else_label)
            self.compile_stmt(stmt.otherwise)
            self.bind(end_label)
        else:
            self.bind(else_label)

    def _compile_while(self, stmt: WhileStmt) -> None:
        header = self.new_label()
        after = self.new_label()
        self.bind(header)  # flushes the while-statement charge before the loop
        self.compile_expr(stmt.cond)
        location = branch_location_for(self.function_name, stmt)
        self.emit_branch(location, after)
        self.loops.append((after, header, self.scope_depth))
        self.compile_stmt(stmt.body)
        self.loops.pop()
        self.emit(op.JUMP, header)
        self.bind(after)

    def _compile_for(self, stmt: ForStmt) -> None:
        if not self.elide_scopes:
            self.emit(op.SCOPE_PUSH)  # absorbs the for-statement charge
            self.scope_depth += 1
        if stmt.init is not None:
            self.compile_stmt(stmt.init)
        header = self.new_label()
        cont = self.new_label()
        after = self.new_label()
        self.bind(header)
        if stmt.cond is not None:
            self.compile_expr(stmt.cond)
            location = branch_location_for(self.function_name, stmt)
            self.emit_branch(location, after)
        self.loops.append((after, cont, self.scope_depth))
        self.compile_stmt(stmt.body)
        self.loops.pop()
        self.bind(cont)
        if stmt.update is not None:
            self.compile_stmt(stmt.update)
        self.emit(op.JUMP, header)
        self.bind(after)
        if not self.elide_scopes:
            self.emit(op.SCOPE_POP, 1)
            self.scope_depth -= 1

    def _compile_loop_exit(self, stmt: Stmt, is_break: bool) -> None:
        if not self.loops:
            # The interpreter's break/continue signal would escape the run
            # loop entirely here; no workload does this, but keep it a guest
            # error rather than a host crash.
            self.emit(op.CALL_UNDEF, "break" if is_break else "continue",
                      line=stmt.line)
            return
        break_label, continue_label, loop_depth = self.loops[-1]
        pops = self.scope_depth - loop_depth
        if pops:
            self.emit(op.SCOPE_POP, pops)
        self.emit(op.JUMP, break_label if is_break else continue_label)

    # -- lvalues ----------------------------------------------------------------

    def _compile_store(self, target: Expr, keep_value: bool = False) -> None:
        """Compile a store into *target*; the value is on the stack.

        With ``keep_value`` the stored value is left on the stack (assignment
        in expression position).
        """

        if keep_value:
            self.emit(op.DUP)
        if isinstance(target, Identifier):
            access = self._access(target)
            if access[0] == SLOT:
                slot = access[1]
                if keep_value or not self._fuse_binop_store_fast(slot):
                    self.emit(op.STORE_FAST, slot, line=target.line)
            elif access[0] == GLOBAL:
                self.emit(op.STORE_GLOBAL, target.name, line=target.line)
            elif keep_value or not self._fuse_binop_store(target):
                self.emit(op.STORE, target.name, line=target.line)
        elif isinstance(target, ArrayIndex):
            self.compile_expr(target.base)
            self.compile_expr(target.index)
            self.emit(op.STORE_INDEX, line=target.line)
        elif isinstance(target, UnaryOp) and target.op == "*":
            self.compile_expr(target.operand)
            self.emit(op.STORE_DEREF, line=target.line)
        else:
            self.emit(op.INVALID_TARGET, line=getattr(target, "line", 0))

    # -- expressions -------------------------------------------------------------

    def compile_expr(self, node: Expr) -> None:
        self.pending += 1  # the interpreter's _eval step
        if isinstance(node, IntLiteral):
            self.emit(op.CONST, concrete(node.value))
        elif isinstance(node, CharLiteral):
            self.emit(op.CONST, concrete(node.value))
        elif isinstance(node, StringLiteral):
            self.emit(op.STRING, (node.node_id, node.value))
        elif isinstance(node, Identifier):
            access = self._access(node)
            if access[0] == SLOT:
                self.emit(op.LOAD_FAST, access[1], line=node.line)
            elif access[0] == GLOBAL:
                self.emit(op.LOAD_GLOBAL, node.name, line=node.line)
            else:
                self.emit(op.LOAD, node.name, line=node.line)
        elif isinstance(node, ArrayIndex):
            self.compile_expr(node.base)
            self.compile_expr(node.index)
            self.emit(op.LOAD_INDEX, line=node.line)
        elif isinstance(node, UnaryOp):
            self._compile_unary(node)
        elif isinstance(node, BinaryOp):
            self._compile_binary(node)
        elif isinstance(node, TernaryOp):
            self._compile_ternary(node)
        elif isinstance(node, AssignExpr):
            self.compile_expr(node.value)
            self._compile_store(node.target, keep_value=True)
        elif isinstance(node, Call):
            self._compile_call(node)
        else:  # pragma: no cover - parser produces no other expression nodes
            raise SemanticError(
                f"unsupported expression {type(node).__name__}")

    def _compile_unary(self, node: UnaryOp) -> None:
        if node.op == "&":
            operand = node.operand
            if isinstance(operand, ArrayIndex):
                self.compile_expr(operand.base)
                self.compile_expr(operand.index)
                self.emit(op.ADDR_INDEX, line=operand.line)
            elif isinstance(operand, Identifier):
                access = self._access(operand)
                if access[0] == SLOT:
                    self.emit(op.ADDR_FAST, (access[1], operand.name),
                              line=node.line)
                else:
                    # Globals take the legacy chain (frame miss, global hit):
                    # a slotted local of the same name can never sit in the
                    # frame dict, so the chain result is exact.
                    self.emit(op.ADDR_NAME, operand.name, line=node.line)
            else:
                self.emit(op.ADDR_INVALID, line=node.line)
            return
        self.compile_expr(node.operand)
        if node.op == "*":
            self.emit(op.LOAD_DEREF, line=node.line)
        else:
            self.emit(op.UNARY, node.op, line=node.line)

    def _compile_binary(self, node: BinaryOp) -> None:
        if node.op == "&&":
            end = self.new_label()
            self.compile_expr(node.left)
            self.emit(op.AND_JUMP, end)
            self.compile_expr(node.right)
            self.emit(op.AND_END)
            self.bind(end)
            return
        if node.op == "||":
            end = self.new_label()
            self.compile_expr(node.left)
            self.emit(op.OR_JUMP, end)
            self.compile_expr(node.right)
            self.emit(op.OR_END)
            self.bind(end)
            return
        self.compile_expr(node.left)
        self.compile_expr(node.right)
        if not self._fuse_binary(node.op, node.line):
            self.emit(op.BINARY, node.op, line=node.line)

    def _fuse_binary(self, operator: str, line: int) -> bool:
        """Peephole: collapse ``LOAD;CONST;BINARY`` / ``LOAD;LOAD;BINARY``.

        These two operand shapes (``i < limit``, ``n - 1``, ``i = i + 1``)
        dominate hot loops; fusing them saves two dispatches per evaluation.
        Register-allocated operands fuse into the slot-indexed variants
        (``BINOP_FC``/``BINOP_FF``); mixed slot/named operand pairs are left
        unfused (three plain dispatches), which is rare outside code that
        mixes locals with fallback names.  Declined when a bound label points
        between the candidate instructions (a jump could then land
        mid-pattern) — the step charges of the fused instructions are summed,
        so the accounting stays exact.
        """

        instructions = self.instructions
        if len(instructions) < 2:
            return False
        end = len(instructions)
        if end in self._bound_positions or (end - 1) in self._bound_positions:
            return False
        first_op, first_arg, first_charge, first_line = instructions[-2]
        second_op, second_arg, second_charge, second_line = instructions[-1]
        if first_op == op.LOAD_FAST:
            if second_op == op.CONST:
                fused = (op.BINOP_FC, (operator, first_arg, second_arg))
            elif second_op == op.LOAD_FAST:
                fused = (op.BINOP_FF, (operator, first_arg, second_arg))
            else:
                return False
        elif first_op == op.LOAD:
            if second_op == op.CONST:
                fused = (op.BINOP_NC,
                         (operator, first_arg, second_arg, first_line))
            elif second_op == op.LOAD:
                fused = (op.BINOP_NN,
                         (operator, first_arg, second_arg,
                          first_line, second_line))
            else:
                return False
        else:
            return False
        charge = first_charge + second_charge + self.pending
        self.pending = 0
        del instructions[-2:]
        instructions.append((fused[0], fused[1], charge, line))
        return True

    def _fuse_binop_store(self, target: Identifier) -> bool:
        """Peephole: collapse ``BINOP_N*;STORE`` (the ``i = i + 1`` shape).

        The fused opcodes compute the fused binary operation and assign the
        result in one dispatch — the single hottest statement shape in every
        counting loop.  Declined when a bound label points at the would-be
        ``STORE`` position (a jump could then land expecting the store still
        to happen).  Fusing *onto* a label-bound position is fine: the fused
        instruction performs exactly what a jump there expected.
        """

        instructions = self.instructions
        if not instructions or len(instructions) in self._bound_positions:
            return False
        opcode, arg, charge, line = instructions[-1]
        if opcode == op.BINOP_NC:
            fused = op.BINOP_NC_STORE
        elif opcode == op.BINOP_NN:
            fused = op.BINOP_NN_STORE
        else:
            return False
        charge += self.pending
        self.pending = 0
        instructions[-1] = (fused, arg + (target.name,), charge, line)
        return True

    def _fuse_binop_store_fast(self, target_slot: int) -> bool:
        """Peephole: collapse ``BINOP_F*;STORE_FAST`` (slotted ``i = i + 1``).

        Same label rules as :meth:`_fuse_binop_store`.
        """

        instructions = self.instructions
        if not instructions or len(instructions) in self._bound_positions:
            return False
        opcode, arg, charge, line = instructions[-1]
        if opcode == op.BINOP_FC:
            fused = op.BINOP_FC_STORE
        elif opcode == op.BINOP_FF:
            fused = op.BINOP_FF_STORE
        else:
            return False
        charge += self.pending
        self.pending = 0
        instructions[-1] = (fused, arg + (target_slot,), charge, line)
        return True

    def _fuse_load_ret(self) -> bool:
        """Peephole: collapse ``LOAD;RET`` (the ``return x;`` shape)."""

        instructions = self.instructions
        if not instructions or len(instructions) in self._bound_positions:
            return False
        opcode, arg, charge, line = instructions[-1]
        if opcode == op.LOAD:
            fused = op.LOAD_RET
        elif opcode == op.LOAD_FAST:
            fused = op.LOAD_FAST_RET
        else:
            return False
        charge += self.pending
        self.pending = 0
        instructions[-1] = (fused, arg, charge, line)
        return True

    def _compile_ternary(self, node: TernaryOp) -> None:
        else_label = self.new_label()
        end_label = self.new_label()
        self.compile_expr(node.cond)
        self.emit(op.TERN_FALSE, else_label)
        self.compile_expr(node.then)
        self.emit(op.JUMP, end_label)
        self.bind(else_label)
        self.compile_expr(node.otherwise)
        self.bind(end_label)

    def _compile_call(self, node: Call) -> None:
        for arg in node.args:
            self.compile_expr(arg)
        argc = len(node.args)
        if node.name in self.compiler.code_objects:
            callee = self.compiler.code_objects[node.name]
            self.emit(op.CALL, (callee, argc), line=node.line)
            return
        builtin_fn = lookup_builtin(node.name)
        if builtin_fn is not None:
            # The AST node travels with the instruction because builtins
            # report crash lines via ``getattr(node, "line", 0)``.
            self.emit(op.CALL_BUILTIN, (builtin_fn, argc, node), line=node.line)
            return
        self.emit(op.CALL_UNDEF, node.name, line=node.line)
