"""Profile-driven superinstruction synthesis.

PR 6's zero-off-cost ``vm.opcode.*`` profiler records exact per-opcode
dispatch counts; this module turns those profiles into fusion decisions
instead of hand-picking superinstructions.  The pipeline:

1. :func:`static_pair_counts` counts adjacent opcode pairs in a compiled
   program's instruction streams (the candidate *sites*);
2. :func:`rank_candidates` scores every entry of :data:`PAIR_CATALOG` by
   combining static adjacency with the recorded dynamic dispatch counts
   (the score of a pair is bounded by its rarer member — a pair cannot
   execute more often than either opcode does);
3. :func:`select_fusions` keeps the top-scoring candidates, and the
   compiler's peephole fuser (:meth:`_FunctionEmitter._apply_synth`)
   materializes them via :func:`try_fuse`.

:data:`DEFAULT_FUSIONS` is the selection this procedure produces on the
shipped workloads' recorded profiles (fibonacci, microbench, userver), so
production runs get profile-driven fusion without carrying a live profile
around.  The catalog only contains pairs whose fusion is observation-
equivalent by construction: charges are summed (step parity), the source
line of each fusible-error part is preserved (crash-site parity), and no
pair crosses a branch-event boundary.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.vm import opcodes as op
from repro.vm.opcodes import OPCODE_NAMES

#: Fusible adjacent pairs: name -> (first opcode, second opcode).  RET-family
#: pairs are safe because RET carries no error of its own; the BINOP_FC;CALL
#: pair keeps the FC part's source line in its arg for exact crash sites.
PAIR_CATALOG: Dict[str, Tuple[int, int]] = {
    "load2_fast": (op.LOAD_FAST, op.LOAD_FAST),
    "load_index_fast": (op.LOAD_FAST, op.LOAD_INDEX),
    "store_index_fast": (op.LOAD_FAST, op.STORE_INDEX),
    "binop_fc_call": (op.BINOP_FC, op.CALL),
    "binary_ret": (op.BINARY, op.RET),
    "const_ret": (op.CONST, op.RET),
    # Second-round pairs: the first member is itself a fusion product, so
    # these only match on the fuser's second pass (an all-slot array access
    # collapses LOAD_FAST;LOAD_FAST;LOAD_INDEX into one dispatch).
    "load_index_ff": (op.LOAD2_FAST, op.LOAD_INDEX),
    "store_index_ff": (op.LOAD2_FAST, op.STORE_INDEX),
}

#: The selection :func:`select_fusions` yields on the shipped workloads'
#: recorded dispatch profiles (``python -m repro stats --opcodes`` over a
#: ``telemetry.profile_vm`` run of fibonacci/microbench/userver).  Kept as a
#: literal so every run benefits without re-profiling; re-derive after adding
#: workloads or opcodes.
DEFAULT_FUSIONS: Tuple[str, ...] = (
    "binop_fc_call", "binary_ret", "store_index_fast", "load_index_fast",
    "load2_fast", "const_ret", "load_index_ff", "store_index_ff")


def static_pair_counts(compiled) -> Counter:
    """Count adjacent ``(opcode, opcode)`` pairs across all code objects."""

    pairs: Counter = Counter()
    streams = [code.instructions for code in compiled.functions.values()]
    if compiled.globals_code is not None:
        streams.append(compiled.globals_code.instructions)
    for instructions in streams:
        for index in range(len(instructions) - 1):
            pairs[(instructions[index][0], instructions[index + 1][0])] += 1
    return pairs


def profile_from_records(records: Iterable[dict]) -> Dict[str, int]:
    """Extract ``vm.opcode.*`` dispatch counts from telemetry records.

    Accepts the dict stream of ``repro.telemetry.read_jsonl`` (or a registry
    snapshot's ``counters`` mapping re-shaped the same way) and returns
    ``{opcode name: count}``.
    """

    counts: Dict[str, int] = {}
    for record in records:
        name = record.get("name", "")
        if not name.startswith("vm.opcode."):
            continue
        value = record.get("value", record.get("count", 0))
        counts[name[len("vm.opcode."):]] = \
            counts.get(name[len("vm.opcode."):], 0) + int(value)
    return counts


def render_dispatch_table(counts: Dict[str, int], top: int = 12) -> str:
    """The ``python -m repro stats --opcodes`` view of a dispatch profile.

    Top-*top* opcodes by exact execution count, with each opcode's share of
    all dispatches and its observation class — ``logged`` (branch opcodes
    that append to the bitvector), ``bare`` (plan-specialized unlogged
    branches) or ``-`` (everything else).  The footer totals the
    logged-vs-bare split, which the distinct ``*_LOGGED`` / ``*_BARE``
    opcode forms make exact by construction.
    """

    if not counts:
        return "(no vm.opcode.* records)"
    total = sum(counts.values())
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    width = max(len(name) for name, _count in ranked[:top])
    lines = [f"{'opcode':<{width}}  {'count':>12}  {'share':>6}  class"]
    for name, count in ranked[:top]:
        if name.endswith("_LOGGED"):
            klass = "logged"
        elif name.endswith("_BARE"):
            klass = "bare"
        else:
            klass = "-"
        lines.append(f"{name:<{width}}  {count:>12}  "
                     f"{100.0 * count / total:>5.1f}%  {klass}")
    logged = sum(c for n, c in counts.items() if n.endswith("_LOGGED"))
    bare = sum(c for n, c in counts.items() if n.endswith("_BARE"))
    lines.append(f"total dispatches: {total}  "
                 f"(logged branches: {logged}, bare branches: {bare}, "
                 f"shown: {min(top, len(ranked))}/{len(ranked)} opcodes)")
    return "\n".join(lines)


def rank_candidates(static_pairs: Counter,
                    opcode_counts: Dict[str, int],
                    ) -> List[Tuple[str, int]]:
    """Score catalog entries; highest first.

    A pair only scores when it occurs statically (there is a site to fuse)
    and both members were dispatched; the dynamic score is the rarer
    member's count (an upper bound on how many dispatches fusion can save
    per occurrence chain).
    """

    scored: List[Tuple[str, int]] = []
    for name, (first, second) in PAIR_CATALOG.items():
        if not static_pairs.get((first, second)):
            continue
        dynamic = min(opcode_counts.get(OPCODE_NAMES[first], 0),
                      opcode_counts.get(OPCODE_NAMES[second], 0))
        if dynamic > 0:
            scored.append((name, dynamic))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def select_fusions(compiled, opcode_counts: Dict[str, int],
                   limit: int = 5) -> Tuple[str, ...]:
    """The top-*limit* fusions for this program under this profile."""

    ranked = rank_candidates(static_pair_counts(compiled), opcode_counts)
    return tuple(name for name, _score in ranked[:limit])


def try_fuse(selections: Sequence[str], first: tuple, second: tuple,
             ) -> Optional[tuple]:
    """Fuse two adjacent instructions if a selected pattern matches.

    Charges are summed so step accounting stays exact; the line of the part
    that can raise is kept (LOAD_INDEX errors at the index expression's
    line, BINARY division-by-zero at the operator's line, BINOP_FC errors at
    the FC line carried inside the fused arg).
    """

    first_op, first_arg, first_charge, first_line = first
    second_op, second_arg, second_charge, second_line = second
    charge = first_charge + second_charge
    for name in selections:
        pattern = PAIR_CATALOG.get(name)
        if pattern is None or pattern != (first_op, second_op):
            continue
        if name == "load2_fast":
            return (op.LOAD2_FAST, (first_arg, second_arg), charge,
                    first_line or second_line)
        if name == "load_index_fast":
            return (op.LOAD_INDEX_FAST, first_arg, charge, second_line)
        if name == "store_index_fast":
            return (op.STORE_INDEX_FAST, first_arg, charge, second_line)
        if name == "load_index_ff":
            return (op.LOAD_INDEX_FF, first_arg, charge, second_line)
        if name == "store_index_ff":
            return (op.STORE_INDEX_FF, first_arg, charge, second_line)
        if name == "binop_fc_call":
            callee, argc = second_arg
            return (op.BINOP_FC_CALL, first_arg + (callee, argc, first_line),
                    charge, second_line)
        if name == "binary_ret":
            return (op.BINARY_RET, first_arg, charge, first_line)
        if name == "const_ret":
            return (op.CONST_RET, first_arg, charge,
                    first_line or second_line)
    return None
