"""Opcode definitions for the MiniC bytecode VM.

The instruction stream is a flat list of 4-tuples::

    (opcode, arg, charge, line)

* ``opcode`` — one of the integer constants below;
* ``arg`` — the operand (a name, a prebuilt :class:`ConcolicValue`, a jump
  target, a ``(location, target)`` pair for branches, ...), or ``None``;
* ``charge`` — how many tree-walker *steps* this instruction accounts for.
  The compiler distributes AST-node visit counts over the instruction stream
  (pre-order, so ancestors are charged before their first descendant executes)
  which makes ``ExecutionResult.steps`` — and therefore the instrumentation
  overhead model and the step-budget cutoff — agree exactly with the
  tree-walking interpreter;
* ``line`` — the source line used for crash sites and error messages.

The machine is a straight stack machine: expression operands are pushed
left-to-right in the interpreter's evaluation order, so hook events (branches,
syscalls) fire in exactly the same order as in the tree-walker.
"""

from __future__ import annotations

# Control / bookkeeping -------------------------------------------------------
NOP = 0            # absorb a step charge at a control-flow join (loop headers)
JUMP = 1           # arg: target pc
POP = 2            # discard TOS
DUP = 3            # duplicate TOS
RET = 4            # return TOS from the current function

# Literals and variables ------------------------------------------------------
CONST = 5          # arg: prebuilt (immutable) ConcolicValue
STRING = 6         # arg: (cache_key, text) — per-run cached NUL-terminated array
LOAD = 7           # arg: name — frame scopes then globals
STORE = 8          # arg: name — assign, implicitly declaring an absent local
DECL_LOCAL = 9     # arg: name — declare in the innermost scope (pop value)
DECL_GLOBAL = 10   # arg: name — declare a global (pop value)
NEW_ARRAY = 11     # arg: (label, has_size) — optionally pop size, push pointer

# Memory ----------------------------------------------------------------------
LOAD_INDEX = 12    # pop index, base; push element
STORE_INDEX = 13   # pop index, base, value; store element
LOAD_DEREF = 14    # pop pointer; push pointed-to cell
STORE_DEREF = 15   # pop pointer, value; store through pointer
ADDR_NAME = 16     # arg: name — address of a variable (boxes scalars)
ADDR_INDEX = 17    # pop index, base; push pointer to the element
ADDR_INVALID = 18  # runtime error: operand cannot be addressed

# Operators -------------------------------------------------------------------
UNARY = 19         # arg: operator string
BINARY = 20        # arg: operator string (non-short-circuit)
BINOP_NC = 33      # arg: (op, name, const, load_line) — fused LOAD;CONST;BINARY
BINOP_NN = 34      # arg: (op, name1, name2, l1, l2) — fused LOAD;LOAD;BINARY
BINOP_NC_STORE = 35  # arg: (op, name, const, load_line, target) — ...;STORE
BINOP_NN_STORE = 36  # arg: (op, name1, name2, l1, l2, target) — ...;STORE
LOAD_RET = 37      # arg: name — fused LOAD;RET (the `return x;` shape)
AND_JUMP = 21      # arg: target — short-circuit the && when TOS is falsy
AND_END = 22       # combine the two operands of a fully evaluated &&
OR_JUMP = 23       # arg: target — short-circuit the || when TOS is truthy
OR_END = 24        # combine the two operands of a fully evaluated ||
TERN_FALSE = 25    # arg: target — ternary selector (no branch event)

# Control flow with events ----------------------------------------------------
BRANCH = 26        # arg: (BranchLocation, else_target) — pop cond, emit event
# Plan-specialized variants (only emitted when compiling for a specific
# InstrumentationPlan — see repro.vm.compiler.compile_program):
BRANCH_BARE = 38   # arg: (BranchLocation, else_target) — uninstrumented: no
                   # hook dispatch unless the condition is symbolic
BRANCH_LOGGED = 39  # arg: (BranchLocation, else_target, slot) — instrumented:
                    # inline bitvector append (record) / compare (replay)

# Calls -----------------------------------------------------------------------
CALL = 27          # arg: (CodeObject, argc) — call a user-defined function
CALL_BUILTIN = 28  # arg: (builtin_fn, argc, call_node)
CALL_UNDEF = 29    # arg: name — runtime "call to undefined function" error
INVALID_TARGET = 30  # runtime "invalid assignment target" error

# Scopes ----------------------------------------------------------------------
SCOPE_PUSH = 31    # open a lexical scope in the current frame
SCOPE_POP = 32     # arg: count — close that many scopes (break/continue exits)

# Register-allocated locals ---------------------------------------------------
# Emitted when the static resolution pass (repro.lang.resolve) proves an
# identifier denotes one specific local variable on every execution; the
# variable then lives in a numbered frame slot (a flat Python list) instead
# of the scope dict.  Slot loads can never fail: resolution guarantees the
# slot was written on every path reaching the load.
LOAD_FAST = 40       # arg: slot — push frame.slots[slot]
STORE_FAST = 41      # arg: slot — pop into frame.slots[slot] (also declares)
LOAD_FAST_RET = 42   # arg: slot — fused LOAD_FAST;RET (the `return x;` shape)
LOAD_GLOBAL = 43     # arg: name — resolved-global read (one dict probe)
STORE_GLOBAL = 44    # arg: name — resolved-global write
ADDR_FAST = 45       # arg: (slot, name) — address of a slotted variable
BINOP_FC = 46        # arg: (op, slot, const) — fused LOAD_FAST;CONST;BINARY
BINOP_FF = 47        # arg: (op, slot1, slot2) — fused LOAD_FAST;LOAD_FAST;BINARY
BINOP_FC_STORE = 48  # arg: (op, slot, const, target_slot) — ...;STORE_FAST
BINOP_FF_STORE = 49  # arg: (op, slot1, slot2, target_slot) — ...;STORE_FAST

# Compare-and-branch superinstructions -----------------------------------------
# Fused ``BINOP_FF;BRANCH_*`` for the ``while (i < n)`` hot shape: compare two
# slots and branch in one dispatch.  Only comparison operators fuse (their
# fully concrete result is the branch decision directly — no intermediate
# ConcolicValue is built); symbolic or pointer operands fall back to the exact
# slow path of the unfused pair.
BINOP_FF_BRANCH = 50         # arg: (op, slot1, slot2, location, else_target)
BINOP_FF_BRANCH_BARE = 51    # arg: (op, slot1, slot2, location, else_target)
BINOP_FF_BRANCH_LOGGED = 52  # arg: (op, slot1, slot2, location, else_target, slot)

# Adaptive specialization: unboxed integer slots ------------------------------
# Emitted (statically) when the resolver's int-slot lattice proves every
# operand slot only ever holds integers, or (dynamically) when the runtime
# quickening pass observed integer shapes at a generic site.  The arms operate
# on raw Python ints — slot reads accept both raw ints and fully concrete
# ConcolicValues, the ``*_STORE`` forms write raw ints back — and every form
# carries its generic origin instruction as the last element of ``arg``: a
# type-guard violation (symbolic value, pointer, string cell) rewrites the
# instruction back to that generic form in place and re-dispatches it, so the
# observable behaviour is the generic path's by construction.
BINOP_II = 53          # arg: (op, slot1, slot2, generic)
BINOP_IC = 54          # arg: (op, slot, raw_const, generic)
BINOP_II_STORE = 55    # arg: (op, slot1, slot2, target_slot, generic)
BINOP_IC_STORE = 56    # arg: (op, slot, raw_const, target_slot, generic)
BINOP_II_BRANCH = 57         # arg: (op, s1, s2, location, target, generic)
BINOP_II_BRANCH_BARE = 58    # arg: (op, s1, s2, location, target, generic)
BINOP_II_BRANCH_LOGGED = 59  # arg: (op, s1, s2, location, target, slot, generic)

# Slot-vs-const compare-and-branch (the ``while (i < 100)`` / ``if (c == 0)``
# hot shape).  The generic BINOP_FC_BRANCH* forms are only emitted when the
# specialization tier is on — they exist to be unboxed into BINOP_IC_BRANCH*
# (statically, or by quickening) and to serve as those forms' deopt targets.
BINOP_FC_BRANCH = 68         # arg: (op, slot, const, location, target)
BINOP_FC_BRANCH_BARE = 69    # arg: (op, slot, const, location, target)
BINOP_FC_BRANCH_LOGGED = 70  # arg: (op, slot, const, location, target, slot)
BINOP_IC_BRANCH = 71         # arg: (op, slot, raw_const, location, target, generic)
BINOP_IC_BRANCH_BARE = 72    # arg: (op, slot, raw_const, location, target, generic)
BINOP_IC_BRANCH_LOGGED = 73  # arg: (op, slot, raw_const, location, target,
                             #       slot, generic)

# Stack-condition compare-and-branch (specialization tier only, like the FC
# forms above).  SC fuses ``CONST;BINARY;BRANCH_*`` — the ``ch == 'X'``
# parser shape, one dispatch instead of three; BINARY_BRANCH fuses
# ``BINARY;BRANCH_*`` for comparisons of two stack operands.  Both operate on
# boxed stack values, so there is no unboxed variant and no deopt path.
BINOP_SC_BRANCH = 74         # arg: (op, const, location, target)
BINOP_SC_BRANCH_BARE = 75    # arg: (op, const, location, target)
BINOP_SC_BRANCH_LOGGED = 76  # arg: (op, const, location, target, slot)
BINARY_BRANCH = 77           # arg: (op, location, target)
BINARY_BRANCH_BARE = 78      # arg: (op, location, target)
BINARY_BRANCH_LOGGED = 79    # arg: (op, location, target, slot)

# Second-round fusions: the first member is itself a fusion product (the
# synth pass runs twice), collapsing an all-slot array access into one
# dispatch — ``buf[i]`` is LOAD_FAST;LOAD_FAST;LOAD_INDEX generically.
LOAD_INDEX_FF = 80   # arg: (base_slot, index_slot) — fused LOAD2_FAST;LOAD_INDEX
STORE_INDEX_FF = 81  # arg: (base_slot, index_slot) — fused LOAD2_FAST;STORE_INDEX

# Runtime quickening triggers --------------------------------------------------
# Inserted only when a function has quickening candidates (generic sites whose
# operand shapes the resolver could not prove).  Each trigger decrements its
# own counter cell and, at zero, runs the quickening pass over the code
# object's candidate sites — then rewrites itself to the plain opcode so the
# warm path pays nothing.
ENTRY_WARM = 60        # arg: (counter_cell, code) — at function entry
JUMP_WARM = 61         # arg: (target, counter_cell, code) — on loop backedges

# Profile-synthesized superinstructions ----------------------------------------
# Materialized by repro.vm.synth from adjacent-opcode pair frequencies in
# recorded ``vm.opcode.*`` dispatch profiles (see ``DEFAULT_FUSIONS`` there).
LOAD2_FAST = 62        # arg: (slot1, slot2) — fused LOAD_FAST;LOAD_FAST
CONST_RET = 63         # arg: prebuilt value — fused CONST;RET
LOAD_INDEX_FAST = 64   # arg: index slot — fused LOAD_FAST;LOAD_INDEX
BINOP_FC_CALL = 65     # arg: (op, slot, const, callee, argc, fc_line)
BINARY_RET = 66        # arg: operator — fused BINARY;RET
STORE_INDEX_FAST = 67  # arg: index slot — fused LOAD_FAST;STORE_INDEX

OPCODE_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if isinstance(value, int) and name.isupper() and not name.startswith("_")
}
