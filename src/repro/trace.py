"""Persistent trace format: a complete recording in one binary file.

The paper's workflow splits *record* (user machine) from *replay search*
(developer machine): the user site ships a compact bug report — the branch
bitvector, the selected syscall results, the crash site and the structural
shape of the inputs — and the developer reproduces the crash against their own
copy of the binary.  This module gives our recordings that second life: a
:class:`Trace` bundles everything the replay engine needs, and
:func:`save_trace` / :func:`load_trace` move it through a versioned binary
file so record and replay can run in different processes (or on different
machines).

Binary identity.  The paper assumes the user and the developer run *matched
binaries*: the bitvector is meaningless against a differently instrumented
build.  The file therefore stores the full instrumentation plan, and
:func:`load_trace` compares its :meth:`~repro.instrument.plan.
InstrumentationPlan.fingerprint` against the plan the developer supplies —
a mismatch raises :class:`TraceFingerprintMismatch` instead of silently
searching with a useless log.

Privacy.  By default :func:`trace_from_recording` stores the *scaffold* of the
recording environment (argument/file/request lengths with user data blanked
out, see :meth:`~repro.environment.Environment.scaffold`), matching the
paper's stance that input contents never leave the user machine.

File layout (version 1, little-endian)::

    magic "REPROTRC" | u32 version | u64 payload length | u32 crc32(payload)
    payload := sections, each: 4-byte tag | u64 body length | body

Sections: ``META`` (names), ``PLAN`` (method + branch sets), ``BITV``
(packed bitvector), ``SYSC`` (per-kind result lists), ``CRSH`` (crash site),
``ENVS`` (environment scaffold).  Every read is bounds-checked; truncation,
bit rot (CRC) and unknown versions raise :class:`TraceFormatError`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.environment import Environment
from repro.instrument.logger import BitvectorLog, SyscallResultLog
from repro.instrument.plan import InstrumentationPlan
from repro.interp.interpreter import CrashSite
from repro.osmodel.filesystem import FileSystem
from repro.osmodel.kernel import Kernel, KernelConfig
from repro.osmodel.network import NetworkModel, NetworkScript, ScriptedConnection

TRACE_MAGIC = b"REPROTRC"
TRACE_VERSION = 1


class TraceError(Exception):
    """Base class for trace persistence failures."""


class TraceFormatError(TraceError):
    """The file is not a readable trace (bad magic/version, truncated, corrupt)."""


class TraceFingerprintMismatch(TraceError):
    """The trace was recorded under a differently instrumented binary."""


# ---------------------------------------------------------------------------
# Environment specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnvironmentSpec:
    """A picklable, serializable description of an execution environment.

    :class:`~repro.environment.Environment` closes over a kernel factory,
    which neither pickles (process-pool replay workers) nor serializes (trace
    files).  The spec captures the factory's *output* instead — argv, stdin,
    filesystem entries, scripted connections and kernel tunables — and can
    rebuild a behaviourally identical environment anywhere.
    """

    argv: Tuple[str, ...]
    name: str = "scenario"
    stdin: bytes = b""
    read_chunk_limit: int = 0
    max_idle_selects: int = 16
    #: ``(path, data, kind, mode)`` per filesystem entry, in insertion order.
    files: Tuple[Tuple[str, bytes, str, int], ...] = ()
    #: ``(request, arrival_step, chunks)`` per scripted connection.
    connections: Tuple[Tuple[bytes, int, Tuple[int, ...]], ...] = ()

    @classmethod
    def capture(cls, environment: Environment) -> "EnvironmentSpec":
        """Snapshot one fresh kernel of *environment* into a spec."""

        kernel = environment.make_kernel()
        files = tuple((entry.path, bytes(entry.data), entry.kind, entry.mode)
                      for entry in kernel.fs.entries())
        connections = tuple(
            (bytes(conn.request), conn.arrival_step, tuple(conn.chunks))
            for conn in kernel.net.script.connections)
        return cls(argv=tuple(environment.argv), name=environment.name,
                   stdin=bytes(kernel.config.stdin_data),
                   read_chunk_limit=kernel.config.read_chunk_limit,
                   max_idle_selects=kernel.config.max_idle_selects,
                   files=files, connections=connections)

    def make_kernel(self) -> Kernel:
        fs = FileSystem()
        for path, data, kind, mode in self.files:
            fs.add_file(path, data, kind=kind, mode=mode)
        script = NetworkScript(connections=[
            ScriptedConnection(request=request, arrival_step=arrival,
                               chunks=list(chunks))
            for request, arrival, chunks in self.connections])
        return Kernel(filesystem=fs, network=NetworkModel(script),
                      config=KernelConfig(stdin_data=self.stdin,
                                          read_chunk_limit=self.read_chunk_limit,
                                          max_idle_selects=self.max_idle_selects))

    def to_environment(self) -> Environment:
        """An :class:`Environment` producing kernels identical to the capture.

        The kernel factory is a bound method of this (picklable) spec, so the
        returned environment crosses process boundaries intact.
        """

        return Environment(argv=list(self.argv), kernel_factory=self.make_kernel,
                           name=self.name)


# ---------------------------------------------------------------------------
# The trace bundle
# ---------------------------------------------------------------------------


@dataclass
class Trace:
    """One complete recording, ready to persist or to replay elsewhere."""

    plan: InstrumentationPlan
    bitvector: BitvectorLog
    syscall_log: Optional[SyscallResultLog]
    crash_site: Optional[CrashSite]
    environment_spec: EnvironmentSpec
    program_name: str = "program"
    scenario: str = ""

    def environment(self) -> Environment:
        return self.environment_spec.to_environment()

    def fingerprint(self) -> tuple:
        return self.plan.fingerprint()

    def describe(self) -> Dict[str, object]:
        """Human-readable summary (the ``trace_tool.py info`` payload)."""

        return {
            "program": self.program_name,
            "scenario": self.scenario,
            "method": self.plan.method,
            "instrumented_locations": len(self.plan.instrumented),
            "total_locations": len(self.plan.all_locations),
            "log_syscalls": self.plan.log_syscalls,
            "bits": len(self.bitvector),
            "bitvector_bytes": self.bitvector.storage_bytes(),
            "syscall_results": self.syscall_log.count() if self.syscall_log else 0,
            "crash_site": (f"{self.crash_site.function}:{self.crash_site.line}"
                           if self.crash_site else None),
            "argv": list(self.environment_spec.argv),
            "files": [path for path, _, _, _ in self.environment_spec.files],
            "connections": len(self.environment_spec.connections),
        }


def trace_from_recording(recording, scaffold: bool = True,
                         program_name: str = "program") -> Trace:
    """Package a :class:`~repro.core.results.RecordingResult` as a trace.

    ``scaffold=True`` (the default, and the paper's privacy stance) stores the
    blanked-out structural environment; ``scaffold=False`` keeps the real
    input data, which is occasionally useful for debugging the tooling itself.
    """

    environment = recording.environment.scaffold() if scaffold else recording.environment
    return Trace(plan=recording.plan,
                 bitvector=recording.bitvector,
                 syscall_log=recording.syscall_log if recording.plan.log_syscalls else None,
                 crash_site=recording.crash_site,
                 environment_spec=EnvironmentSpec.capture(environment),
                 program_name=program_name,
                 scenario=recording.environment.name)


def verify_fingerprint(trace: Trace, plan: InstrumentationPlan) -> None:
    """Raise :class:`TraceFingerprintMismatch` unless *plan* matches the trace."""

    recorded = trace.fingerprint()
    expected = plan.fingerprint()
    if recorded == expected:
        return
    only_recorded = sorted(set(recorded) - set(expected))[:3]
    only_expected = sorted(set(expected) - set(recorded))[:3]
    raise TraceFingerprintMismatch(
        "trace was recorded under a differently instrumented binary: "
        f"recorded plan has {len(recorded)} instrumented locations, "
        f"this plan has {len(expected)} "
        f"(e.g. only in trace: {only_recorded}, only here: {only_expected}). "
        "Record and replay must use matched binaries (same program, same "
        "instrumentation plan).")


# ---------------------------------------------------------------------------
# Binary encoding primitives
# ---------------------------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def u8(self, value: int) -> None:
        self._chunks.append(struct.pack("<B", value))

    def u32(self, value: int) -> None:
        self._chunks.append(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self._chunks.append(struct.pack("<Q", value))

    def i64(self, value: int) -> None:
        self._chunks.append(struct.pack("<q", value))

    def raw(self, data: bytes) -> None:
        self._chunks.append(data)

    def blob(self, data: bytes) -> None:
        self.u64(len(data))
        self.raw(data)

    def string(self, text: str) -> None:
        self.blob(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    def __init__(self, data: bytes, what: str = "trace") -> None:
        self._data = data
        self._pos = 0
        self._what = what

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise TraceFormatError(
                f"truncated {self._what}: wanted {count} bytes at offset "
                f"{self._pos}, only {len(self._data) - self._pos} left")
        piece = self._data[self._pos:self._pos + count]
        self._pos += count
        return piece

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u64())

    def string(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"corrupt string in {self._what}: {exc}")

    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def expect_end(self, where: str) -> None:
        if not self.exhausted():
            raise TraceFormatError(
                f"{len(self._data) - self._pos} unexpected trailing bytes in {where}")


# ---------------------------------------------------------------------------
# Section encoders/decoders
# ---------------------------------------------------------------------------


def _encode_meta(trace: Trace) -> bytes:
    writer = _Writer()
    writer.string(trace.program_name)
    writer.string(trace.scenario)
    return writer.getvalue()


def _encode_plan(plan: InstrumentationPlan) -> bytes:
    writer = _Writer()
    # plan.method is normally the InstrumentationMethod *value* string, but a
    # hand-built plan may carry the enum itself; serialize its value so the
    # decoded method always compares equal to the enum's value.
    method = plan.method
    writer.string(method if isinstance(method, str)
                  else getattr(method, "value", str(method)))
    writer.u8(1 if plan.log_syscalls else 0)
    rows = plan.location_tuples()
    for key in ("instrumented", "all_locations"):
        locations = rows[key]
        writer.u32(len(locations))
        for function, node_id, line, kind in locations:
            writer.string(function)
            writer.u32(node_id)
            writer.u32(line)
            writer.string(kind)
    return writer.getvalue()


def _decode_plan(body: bytes) -> InstrumentationPlan:
    reader = _Reader(body, "PLAN section")
    method = reader.string()
    log_syscalls = bool(reader.u8())
    sets = []
    for _ in range(2):
        count = reader.u32()
        sets.append([(reader.string(), reader.u32(), reader.u32(), reader.string())
                     for _ in range(count)])
    reader.expect_end("PLAN section")
    return InstrumentationPlan.from_location_tuples(
        method=method, instrumented=sets[0], all_locations=sets[1],
        log_syscalls=log_syscalls)


def _encode_bitvector(bitvector: BitvectorLog) -> bytes:
    writer = _Writer()
    writer.u64(len(bitvector))
    writer.u32(bitvector.flushes)
    writer.blob(bitvector.to_bytes())
    return writer.getvalue()


def _decode_bitvector(body: bytes) -> BitvectorLog:
    reader = _Reader(body, "BITV section")
    bit_count = reader.u64()
    flushes = reader.u32()
    packed = reader.blob()
    reader.expect_end("BITV section")
    try:
        log = BitvectorLog.from_bytes(packed, bit_count)
    except ValueError as exc:
        raise TraceFormatError(str(exc))
    log.flushes = flushes
    return log


def _encode_syscalls(log: Optional[SyscallResultLog]) -> bytes:
    writer = _Writer()
    writer.u8(1 if log is not None else 0)
    if log is None:
        return writer.getvalue()
    logged = sorted(kind.value for kind in log.logged_kinds)
    writer.u32(len(logged))
    for name in logged:
        writer.string(name)
    payload = log.to_payload()
    writer.u32(len(payload))
    for name in sorted(payload):
        writer.string(name)
        values = payload[name]
        writer.u32(len(values))
        for value in values:
            writer.i64(value)
    return writer.getvalue()


def _decode_syscalls(body: bytes) -> Optional[SyscallResultLog]:
    reader = _Reader(body, "SYSC section")
    if not reader.u8():
        reader.expect_end("SYSC section")
        return None
    logged = [reader.string() for _ in range(reader.u32())]
    payload: Dict[str, List[int]] = {}
    for _ in range(reader.u32()):
        name = reader.string()
        payload[name] = [reader.i64() for _ in range(reader.u32())]
    reader.expect_end("SYSC section")
    try:
        return SyscallResultLog.from_payload(payload, logged_kinds=logged)
    except ValueError as exc:
        raise TraceFormatError(f"unknown syscall kind in trace: {exc}")


def _encode_crash(crash: Optional[CrashSite]) -> bytes:
    writer = _Writer()
    writer.u8(1 if crash is not None else 0)
    if crash is not None:
        writer.string(crash.function)
        writer.u32(crash.line)
        writer.string(crash.message)
    return writer.getvalue()


def _decode_crash(body: bytes) -> Optional[CrashSite]:
    reader = _Reader(body, "CRSH section")
    if not reader.u8():
        reader.expect_end("CRSH section")
        return None
    crash = CrashSite(function=reader.string(), line=reader.u32(),
                      message=reader.string())
    reader.expect_end("CRSH section")
    return crash


def _encode_environment(spec: EnvironmentSpec) -> bytes:
    writer = _Writer()
    writer.u32(len(spec.argv))
    for arg in spec.argv:
        writer.string(arg)
    writer.string(spec.name)
    writer.blob(spec.stdin)
    writer.u32(spec.read_chunk_limit)
    writer.u32(spec.max_idle_selects)
    writer.u32(len(spec.files))
    for path, data, kind, mode in spec.files:
        writer.string(path)
        writer.blob(data)
        writer.string(kind)
        writer.u32(mode)
    writer.u32(len(spec.connections))
    for request, arrival_step, chunks in spec.connections:
        writer.blob(request)
        writer.u32(arrival_step)
        writer.u32(len(chunks))
        for chunk in chunks:
            writer.u32(chunk)
    return writer.getvalue()


def _decode_environment(body: bytes) -> EnvironmentSpec:
    reader = _Reader(body, "ENVS section")
    argv = tuple(reader.string() for _ in range(reader.u32()))
    name = reader.string()
    stdin = reader.blob()
    read_chunk_limit = reader.u32()
    max_idle_selects = reader.u32()
    files = tuple((reader.string(), reader.blob(), reader.string(), reader.u32())
                  for _ in range(reader.u32()))
    connections = tuple(
        (reader.blob(), reader.u32(),
         tuple(reader.u32() for _ in range(reader.u32())))
        for _ in range(reader.u32()))
    reader.expect_end("ENVS section")
    return EnvironmentSpec(argv=argv, name=name, stdin=stdin,
                           read_chunk_limit=read_chunk_limit,
                           max_idle_selects=max_idle_selects,
                           files=files, connections=connections)


# ---------------------------------------------------------------------------
# Whole-file encode / decode
# ---------------------------------------------------------------------------

_SECTION_ORDER = (b"META", b"PLAN", b"BITV", b"SYSC", b"CRSH", b"ENVS")


def encode_envelope(magic: bytes, version: int,
                    sections: Dict[bytes, bytes],
                    order: Sequence[bytes]) -> bytes:
    """Frame *sections* in the shared section-file envelope.

    The grammar every on-disk artifact of this project uses — trace files
    (``REPROTRC``) and search checkpoints (``REPROCKP``) alike::

        magic | u32 version | u64 payload length | u32 crc32(payload)
        payload := sections, each: 4-byte tag | u64 body length | body
    """

    payload_writer = _Writer()
    for tag in order:
        if len(tag) != 4:
            raise ValueError(f"section tag must be 4 bytes, got {tag!r}")
        payload_writer.raw(tag)
        payload_writer.blob(sections[tag])
    payload = payload_writer.getvalue()
    header = _Writer()
    header.raw(magic)
    header.u32(version)
    header.u64(len(payload))
    header.u32(zlib.crc32(payload) & 0xFFFFFFFF)
    return header.getvalue() + payload


def decode_envelope(data: bytes, magic: bytes, version: int,
                    what: str = "trace",
                    require: Sequence[bytes] = ()) -> Dict[bytes, bytes]:
    """Parse and verify a section-file envelope; returns ``{tag: body}``.

    Raises :class:`TraceFormatError` on bad magic, unknown version,
    truncation, checksum mismatch, trailing bytes, or any section from
    *require* missing — the single bounds-checked entry point both the
    trace reader and the checkpoint reader funnel through.
    """

    reader = _Reader(data, f"{what} header")
    found = reader._take(len(magic))
    if found != magic:
        raise TraceFormatError(
            f"not a {what} file: bad magic {found!r} (expected {magic!r})")
    got_version = reader.u32()
    if got_version != version:
        raise TraceFormatError(
            f"unsupported {what} version {got_version} (this build reads "
            f"version {version})")
    payload_len = reader.u64()
    crc_expected = reader.u32()
    payload = reader._take(payload_len)
    reader.expect_end(f"{what} file")
    crc_actual = zlib.crc32(payload) & 0xFFFFFFFF
    if crc_actual != crc_expected:
        raise TraceFormatError(
            f"{what} payload checksum mismatch: file says {crc_expected:#010x}, "
            f"payload hashes to {crc_actual:#010x} (corrupted file?)")
    sections: Dict[bytes, bytes] = {}
    body_reader = _Reader(payload, f"{what} payload")
    while not body_reader.exhausted():
        tag = body_reader._take(4)
        sections[tag] = body_reader.blob()
    missing = [tag.decode() for tag in require if tag not in sections]
    if missing:
        raise TraceFormatError(f"{what} is missing sections: {missing}")
    return sections


def dump_trace_bytes(trace: Trace) -> bytes:
    """Serialize *trace* into the version-1 binary form."""

    sections = {
        b"META": _encode_meta(trace),
        b"PLAN": _encode_plan(trace.plan),
        b"BITV": _encode_bitvector(trace.bitvector),
        b"SYSC": _encode_syscalls(trace.syscall_log),
        b"CRSH": _encode_crash(trace.crash_site),
        b"ENVS": _encode_environment(trace.environment_spec),
    }
    return encode_envelope(TRACE_MAGIC, TRACE_VERSION, sections, _SECTION_ORDER)


def load_trace_bytes(data: bytes,
                     expect_plan: Optional[InstrumentationPlan] = None) -> Trace:
    """Decode a trace from *data*, optionally enforcing binary identity.

    Raises :class:`TraceFormatError` on any structural problem and
    :class:`TraceFingerprintMismatch` when *expect_plan* does not match the
    recorded plan.
    """

    sections = decode_envelope(data, TRACE_MAGIC, TRACE_VERSION,
                               what="trace", require=_SECTION_ORDER)

    meta_reader = _Reader(sections[b"META"], "META section")
    program_name = meta_reader.string()
    scenario = meta_reader.string()
    meta_reader.expect_end("META section")

    trace = Trace(plan=_decode_plan(sections[b"PLAN"]),
                  bitvector=_decode_bitvector(sections[b"BITV"]),
                  syscall_log=_decode_syscalls(sections[b"SYSC"]),
                  crash_site=_decode_crash(sections[b"CRSH"]),
                  environment_spec=_decode_environment(sections[b"ENVS"]),
                  program_name=program_name,
                  scenario=scenario)
    if expect_plan is not None:
        verify_fingerprint(trace, expect_plan)
    return trace


def describe_sections(data: bytes) -> Dict[str, object]:
    """Per-section byte sizes and checksum of an encoded trace.

    The ``info --telemetry`` observability surface: where the bytes of a bug
    report go (bitvector vs syscall results vs input scaffold), plus the
    header facts a transport would care about.  Parses only the envelope —
    section bodies are *not* decoded, so this works on traces whose payload
    a newer writer extended, as long as the envelope grammar held.
    """

    reader = _Reader(data, "trace header")
    magic = reader._take(len(TRACE_MAGIC))
    if magic != TRACE_MAGIC:
        raise TraceFormatError(
            f"not a trace file: bad magic {magic!r} (expected {TRACE_MAGIC!r})")
    version = reader.u32()
    payload_len = reader.u64()
    crc_expected = reader.u32()
    payload = reader._take(payload_len)
    reader.expect_end("trace file")
    crc_actual = zlib.crc32(payload) & 0xFFFFFFFF
    sections = []
    body_reader = _Reader(payload, "trace payload")
    while not body_reader.exhausted():
        tag = body_reader._take(4)
        body = body_reader.blob()
        sections.append({"tag": tag.decode("ascii", "replace"),
                         "bytes": len(body)})
    header_bytes = len(data) - payload_len
    return {
        "version": version,
        "total_bytes": len(data),
        "header_bytes": header_bytes,
        "payload_bytes": payload_len,
        "crc32": f"{crc_expected:#010x}",
        "crc_ok": crc_actual == crc_expected,
        "sections": sections,
    }


def save_trace(path: str, trace: Trace) -> str:
    """Write *trace* to *path*; returns the path for convenience."""

    data = dump_trace_bytes(trace)
    with open(path, "wb") as handle:
        handle.write(data)
    return path


def load_trace(path: str,
               expect_plan: Optional[InstrumentationPlan] = None) -> Trace:
    """Read a trace file; see :func:`load_trace_bytes` for the checks applied."""

    with open(path, "rb") as handle:
        data = handle.read()
    return load_trace_bytes(data, expect_plan=expect_plan)
