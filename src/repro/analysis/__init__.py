"""Static analysis: interprocedural dataflow + points-to (§2.2 of the paper).

The analysis identifies the *sources* of input (argv and the input-returning
builtins), propagates "symbolic" through assignments, calls, globals and
pointer aliases, and labels every branch whose condition may depend on a
symbolic value.  Like the paper's CIL-based implementation it is deliberately
conservative: every truly symbolic branch is labelled symbolic, and imprecision
in the points-to analysis can only add concrete branches to the symbolic set,
never remove symbolic ones.
"""

from repro.analysis.pointsto import PointsToAnalysis, PointsToResult
from repro.analysis.dataflow import StaticAnalyzer, StaticAnalysisResult

__all__ = [
    "PointsToAnalysis",
    "PointsToResult",
    "StaticAnalysisResult",
    "StaticAnalyzer",
]
