"""Flow-insensitive, field-insensitive points-to analysis (Andersen style).

The analysis computes, for every pointer-valued variable in the program, the
set of *abstract objects* it may point to.  Abstract objects are:

* declared arrays (one object per declaration),
* ``malloc`` call sites (one object per site),
* string literals (one object per literal),
* the memory reachable from ``main``'s ``argv`` (a single summary object),
* a catch-all ``external`` object for pointers produced by builtins the
  analysis does not model precisely.

Whole arrays are modelled as single objects (no per-element precision), which
is exactly the kind of over-approximation the paper blames for static analysis
labelling some concrete branches symbolic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    AssignExpr,
    BinaryOp,
    Call,
    Declarator,
    Expr,
    FunctionDef,
    Identifier,
    Node,
    ReturnStmt,
    StringLiteral,
    TernaryOp,
    UnaryOp,
    VarDecl,
)
from repro.lang.program import Program

ARGV_OBJECT = "obj:argv"
EXTERNAL_OBJECT = "obj:external"

#: Builtins that return a pointer into one of their pointer arguments.
_RETURNS_ARGUMENT_POINTER = {"strchr": 0, "strcpy": 0, "strcat": 0, "memcpy": 0,
                             "memset": 0}
#: Builtins that return a fresh heap object.
_RETURNS_FRESH_OBJECT = {"malloc"}


def qualify(function: Optional[str], name: str) -> str:
    """Qualified variable name: ``function::name`` or ``::name`` for globals."""

    return f"{function}::{name}" if function else f"::{name}"


@dataclass
class PointsToResult:
    """The computed may-point-to sets."""

    points_to: Dict[str, Set[str]] = field(default_factory=dict)
    objects: Set[str] = field(default_factory=set)

    def pointees(self, qualified_name: str) -> Set[str]:
        return self.points_to.get(qualified_name, set())

    def may_alias(self, a: str, b: str) -> bool:
        return bool(self.pointees(a) & self.pointees(b))

    def object_count(self) -> int:
        return len(self.objects)


class PointsToAnalysis:
    """Computes :class:`PointsToResult` for a program."""

    def __init__(self, program: Program,
                 skip_functions: Optional[Set[str]] = None) -> None:
        self.program = program
        self.skip_functions = set(skip_functions or ())
        # Inclusion edges: dst ⊇ src  (both are variable keys).
        self._copy_edges: List[Tuple[str, str]] = []
        # Base facts: variable key -> set of objects.
        self._base: Dict[str, Set[str]] = {}
        # Return variables, one synthetic key per function.
        self._globals: Set[str] = set(program.global_names())

    # -- public API -------------------------------------------------------------------

    def run(self) -> PointsToResult:
        self._collect_constraints()
        points_to = self._solve()
        objects = set()
        for pointees in points_to.values():
            objects.update(pointees)
        return PointsToResult(points_to=points_to, objects=objects)

    # -- constraint generation ----------------------------------------------------------

    def _var_key(self, function: Optional[str], name: str) -> str:
        if function is not None and name in self._globals:
            # A name shadowed by a local declaration stays local; approximating
            # by preferring the local is safe for may-point-to purposes.
            for decl in self._declared_locals(function):
                if decl == name:
                    return qualify(function, name)
            return qualify(None, name)
        return qualify(function, name)

    def _declared_locals(self, function: str) -> Set[str]:
        names: Set[str] = set()
        fn = self.program.functions.get(function)
        if fn is None:
            return names
        for param in fn.params:
            names.add(param.name)
        for node in fn.body.walk():
            if isinstance(node, VarDecl):
                for declarator in node.declarators:
                    names.add(declarator.name)
        return names

    def _add_base(self, key: str, obj: str) -> None:
        self._base.setdefault(key, set()).add(obj)

    def _add_copy(self, dst: str, src: str) -> None:
        self._copy_edges.append((dst, src))

    def _collect_constraints(self) -> None:
        # Globals with array declarations produce objects.
        for global_decl in self.program.unit.globals:
            for declarator in global_decl.decl.declarators:
                key = qualify(None, declarator.name)
                if declarator.is_array:
                    self._add_base(key, f"obj:global:{declarator.name}")
                if declarator.init is not None:
                    self._handle_assignment(None, key, declarator.init)

        for function in self.program.unit.functions:
            if function.name in self.skip_functions:
                continue
            self._collect_function(function)

        # argv: main's second parameter points at the argv summary object.
        main = self.program.functions.get("main")
        if main is not None and len(main.params) >= 2:
            self._add_base(qualify("main", main.params[1].name), ARGV_OBJECT)

    def _collect_function(self, function: FunctionDef) -> None:
        name = function.name
        for node in function.body.walk():
            if isinstance(node, VarDecl):
                for declarator in node.declarators:
                    key = self._var_key(name, declarator.name)
                    if declarator.is_array:
                        self._add_base(key, f"obj:{name}:{declarator.name}")
                    if declarator.init is not None:
                        self._handle_assignment(name, key, declarator.init)
            elif isinstance(node, (Assign, AssignExpr)):
                target = node.target
                if isinstance(target, Identifier):
                    self._handle_assignment(name, self._var_key(name, target.name),
                                            node.value)
                # Stores through pointers do not change what pointers point to
                # in this field-insensitive model.
            elif isinstance(node, ReturnStmt) and node.value is not None:
                self._handle_assignment(name, f"ret::{name}", node.value)
            elif isinstance(node, Call):
                self._handle_call(name, None, node)

    def _handle_assignment(self, function: Optional[str], dst_key: str,
                           value: Expr) -> None:
        for src in self._pointer_sources(function, value):
            kind, payload = src
            if kind == "object":
                self._add_base(dst_key, payload)
            else:
                self._add_copy(dst_key, payload)

    def _handle_call(self, function: Optional[str], dst_key: Optional[str],
                     call: Call) -> None:
        callee = self.program.functions.get(call.name)
        if callee is not None and callee.name not in self.skip_functions:
            for index, param in enumerate(callee.params):
                if index >= len(call.args):
                    break
                param_key = qualify(callee.name, param.name)
                self._handle_assignment(function, param_key, call.args[index])
            if dst_key is not None:
                self._add_copy(dst_key, f"ret::{callee.name}")
            return
        if dst_key is None:
            return
        if call.name in _RETURNS_FRESH_OBJECT:
            self._add_base(dst_key, f"obj:malloc:{call.node_id}")
        elif call.name in _RETURNS_ARGUMENT_POINTER:
            arg_index = _RETURNS_ARGUMENT_POINTER[call.name]
            if arg_index < len(call.args):
                self._handle_assignment(function, dst_key, call.args[arg_index])
        else:
            self._add_base(dst_key, EXTERNAL_OBJECT)

    def _pointer_sources(self, function: Optional[str],
                         expr: Expr) -> List[Tuple[str, str]]:
        """Possible pointer values of *expr*: ("object", obj) or ("copy", key)."""

        sources: List[Tuple[str, str]] = []
        if isinstance(expr, Identifier):
            sources.append(("copy", self._var_key(function, expr.name)))
        elif isinstance(expr, StringLiteral):
            sources.append(("object", f"obj:literal:{expr.node_id}"))
        elif isinstance(expr, UnaryOp) and expr.op == "&":
            inner = expr.operand
            if isinstance(inner, Identifier):
                sources.append(("copy", self._var_key(function, inner.name)))
                sources.append(("object", f"obj:addr:{function}:{inner.name}"))
            elif isinstance(inner, ArrayIndex):
                sources.extend(self._pointer_sources(function, inner.base))
        elif isinstance(expr, BinaryOp) and expr.op in ("+", "-"):
            # Pointer arithmetic keeps pointing into the same objects.
            sources.extend(self._pointer_sources(function, expr.left))
            sources.extend(self._pointer_sources(function, expr.right))
        elif isinstance(expr, TernaryOp):
            sources.extend(self._pointer_sources(function, expr.then))
            sources.extend(self._pointer_sources(function, expr.otherwise))
        elif isinstance(expr, Call):
            callee = self.program.functions.get(expr.name)
            if callee is not None and callee.name not in self.skip_functions:
                for index, param in enumerate(callee.params):
                    if index >= len(expr.args):
                        break
                    self._handle_assignment(function, qualify(callee.name, param.name),
                                            expr.args[index])
                sources.append(("copy", f"ret::{expr.name}"))
            elif expr.name in _RETURNS_FRESH_OBJECT:
                sources.append(("object", f"obj:malloc:{expr.node_id}"))
            elif expr.name in _RETURNS_ARGUMENT_POINTER:
                arg_index = _RETURNS_ARGUMENT_POINTER[expr.name]
                if arg_index < len(expr.args):
                    sources.extend(self._pointer_sources(function, expr.args[arg_index]))
            else:
                sources.append(("object", EXTERNAL_OBJECT))
        elif isinstance(expr, (ArrayIndex,)):
            # Loading a pointer out of an array of pointers (e.g. argv[i]):
            # approximate by "points into whatever the array's object holds" —
            # modelled as the array object itself plus the external object.
            sources.extend(self._pointer_sources(function, expr.base))
        elif isinstance(expr, UnaryOp) and expr.op == "*":
            sources.extend(self._pointer_sources(function, expr.operand))
        return sources

    # -- constraint solving -----------------------------------------------------------------

    def _solve(self) -> Dict[str, Set[str]]:
        points_to: Dict[str, Set[str]] = {key: set(objs) for key, objs in self._base.items()}
        changed = True
        iterations = 0
        while changed and iterations < 1000:
            changed = False
            iterations += 1
            for dst, src in self._copy_edges:
                src_set = points_to.get(src)
                if not src_set:
                    continue
                dst_set = points_to.setdefault(dst, set())
                before = len(dst_set)
                dst_set.update(src_set)
                if len(dst_set) != before:
                    changed = True
        return points_to
