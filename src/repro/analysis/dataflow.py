"""Interprocedural dataflow analysis propagating "symbolic" (input-derived) facts.

This is the reproduction of the paper's Algorithms 1 and 2:

* the set of symbolic variables is seeded with ``argv`` and the return values
  of input-returning functions,
* assignments propagate the symbolic flag from right-hand sides to targets,
* function calls propagate it into formal parameters, out of return values,
  and through memory written via pointer parameters or globals,
* every branch whose condition may reference a symbolic value is labelled
  symbolic (Algorithm 2's ``logThisBranch``).

Aliasing questions are answered by the points-to analysis; its imprecision can
only make the result more conservative (extra branches labelled symbolic),
mirroring the behaviour the paper reports for its static method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.pointsto import (
    ARGV_OBJECT,
    EXTERNAL_OBJECT,
    PointsToAnalysis,
    PointsToResult,
    qualify,
)
from repro.interp.builtins import INPUT_RETURNING_BUILTINS
from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    AssignExpr,
    BinaryOp,
    Block,
    Call,
    CharLiteral,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Identifier,
    IfStmt,
    IntLiteral,
    Node,
    ReturnStmt,
    Stmt,
    StringLiteral,
    TernaryOp,
    UnaryOp,
    VarDecl,
    WhileStmt,
    iter_branch_statements,
)
from repro.lang.cfg import BranchLocation, branch_location_for
from repro.lang.program import Program

#: Builtins that copy bytes from their second argument into their first.
_COPYING_BUILTINS = {"strcpy", "strncpy", "strcat", "memcpy"}
#: Builtins that fill their second argument (a buffer) with fresh input bytes.
_INPUT_FILLING_BUILTINS = {"read", "recv", "read_line"}
#: Builtins whose integer result is derived from the bytes of their arguments.
_CONTENT_DERIVED_BUILTINS = {"strlen", "strcmp", "strncmp", "atoi", "strchr",
                             "isdigit", "isalpha", "isspace", "toupper",
                             "tolower", "abs"}


@dataclass
class StaticAnalysisResult:
    """Output of the static analysis."""

    symbolic_branches: Set[BranchLocation] = field(default_factory=set)
    concrete_branches: Set[BranchLocation] = field(default_factory=set)
    symbolic_variables: Set[str] = field(default_factory=set)
    symbolic_objects: Set[str] = field(default_factory=set)
    functions_returning_symbolic: Set[str] = field(default_factory=set)
    analyzed_functions: Set[str] = field(default_factory=set)
    skipped_functions: Set[str] = field(default_factory=set)
    passes: int = 0
    wall_seconds: float = 0.0
    points_to: Optional[PointsToResult] = None

    def counts(self) -> Dict[str, int]:
        return {
            "symbolic_branches": len(self.symbolic_branches),
            "concrete_branches": len(self.concrete_branches),
            "symbolic_variables": len(self.symbolic_variables),
            "functions_returning_symbolic": len(self.functions_returning_symbolic),
        }

    def summary(self) -> str:
        counts = self.counts()
        return (f"static analysis: {counts['symbolic_branches']} symbolic / "
                f"{counts['concrete_branches']} concrete branch locations, "
                f"{counts['symbolic_variables']} symbolic variables, "
                f"{self.passes} passes")


class StaticAnalyzer:
    """Runs the whole-program static analysis."""

    def __init__(self, program: Program,
                 skip_functions: Optional[Set[str]] = None,
                 extra_input_functions: Optional[Set[str]] = None,
                 max_passes: int = 50) -> None:
        """``skip_functions`` are treated like the uClibc library in the paper's
        uServer experiment: they are not analyzed and *all* their branches are
        conservatively labelled symbolic."""

        self.program = program
        self.skip_functions = set(skip_functions or ())
        self.input_functions = set(INPUT_RETURNING_BUILTINS) | set(extra_input_functions or ())
        self.max_passes = max_passes
        self._symbolic_vars: Set[str] = set()
        self._symbolic_objects: Set[str] = set()
        self._returns_symbolic: Set[str] = set()
        self._symbolic_branches: Set[BranchLocation] = set()
        self._points_to: Optional[PointsToResult] = None
        self._changed = False

    # -- public API ---------------------------------------------------------------------

    def run(self) -> StaticAnalysisResult:
        start = time.monotonic()
        self._points_to = PointsToAnalysis(self.program, self.skip_functions).run()
        self._seed()

        reachable = self.program.reachable_functions("main")
        worklist = [name for name in self.program.functions
                    if name in reachable and name not in self.skip_functions]
        passes = 0
        while passes < self.max_passes:
            passes += 1
            self._changed = False
            for name in worklist:
                self._analyze_function(self.program.functions[name])
            if not self._changed:
                break

        # Library functions: all branches conservatively symbolic.
        for name in self.skip_functions:
            function = self.program.functions.get(name)
            if function is None:
                continue
            for stmt in iter_branch_statements(function.body):
                self._symbolic_branches.add(branch_location_for(name, stmt))

        all_branches = set(self.program.branch_locations)
        result = StaticAnalysisResult(
            symbolic_branches=set(self._symbolic_branches),
            concrete_branches=all_branches - self._symbolic_branches,
            symbolic_variables=set(self._symbolic_vars),
            symbolic_objects=set(self._symbolic_objects),
            functions_returning_symbolic=set(self._returns_symbolic),
            analyzed_functions=set(worklist),
            skipped_functions=set(self.skip_functions) & set(self.program.functions),
            passes=passes,
            wall_seconds=time.monotonic() - start,
            points_to=self._points_to,
        )
        return result

    # -- seeding ---------------------------------------------------------------------------

    def _seed(self) -> None:
        main = self.program.functions.get("main")
        if main is None:
            return
        # argv (and argc, which is derived from the command line) are symbolic.
        for param in main.params:
            self._symbolic_vars.add(qualify("main", param.name))
        self._symbolic_objects.add(ARGV_OBJECT)

    # -- helpers ------------------------------------------------------------------------------

    def _mark_var(self, key: str) -> None:
        if key not in self._symbolic_vars:
            self._symbolic_vars.add(key)
            self._changed = True

    def _mark_object(self, obj: str) -> None:
        if obj not in self._symbolic_objects:
            self._symbolic_objects.add(obj)
            self._changed = True

    def _mark_returns(self, function: str) -> None:
        if function not in self._returns_symbolic:
            self._returns_symbolic.add(function)
            self._changed = True

    def _var_key(self, function: str, name: str) -> str:
        # Prefer the local binding; fall back to a global of the same name.
        return qualify(function, name)

    def _is_var_symbolic(self, function: str, name: str) -> bool:
        return (qualify(function, name) in self._symbolic_vars
                or qualify(None, name) in self._symbolic_vars)

    def _pointees(self, function: str, expr: Expr) -> Set[str]:
        """Abstract objects the pointer expression may reference."""

        if self._points_to is None:
            return set()
        if isinstance(expr, Identifier):
            pointees = set(self._points_to.pointees(qualify(function, expr.name)))
            pointees |= self._points_to.pointees(qualify(None, expr.name))
            return pointees
        if isinstance(expr, (ArrayIndex,)):
            return self._pointees(function, expr.base)
        if isinstance(expr, UnaryOp) and expr.op in ("*", "&"):
            return self._pointees(function, expr.operand)
        if isinstance(expr, BinaryOp) and expr.op in ("+", "-"):
            return self._pointees(function, expr.left) | self._pointees(function, expr.right)
        if isinstance(expr, Call):
            return {EXTERNAL_OBJECT}
        if isinstance(expr, StringLiteral):
            return {f"obj:literal:{expr.node_id}"}
        return set()

    def _points_to_symbolic(self, function: str, expr: Expr) -> bool:
        return bool(self._pointees(function, expr) & self._symbolic_objects)

    # -- expression symbolic-ness ------------------------------------------------------------------

    def _expr_symbolic(self, function: str, expr: Expr) -> bool:
        if isinstance(expr, (IntLiteral, CharLiteral, StringLiteral)):
            return False
        if isinstance(expr, Identifier):
            return self._is_var_symbolic(function, expr.name)
        if isinstance(expr, ArrayIndex):
            if self._points_to_symbolic(function, expr.base):
                return True
            if self._expr_symbolic(function, expr.base):
                return True
            # Conservative: a symbolic index selects input-dependent data.
            return self._expr_symbolic(function, expr.index)
        if isinstance(expr, UnaryOp):
            if expr.op == "*":
                return (self._points_to_symbolic(function, expr.operand)
                        or self._expr_symbolic(function, expr.operand))
            if expr.op == "&":
                return False
            return self._expr_symbolic(function, expr.operand)
        if isinstance(expr, BinaryOp):
            return (self._expr_symbolic(function, expr.left)
                    or self._expr_symbolic(function, expr.right))
        if isinstance(expr, TernaryOp):
            return (self._expr_symbolic(function, expr.cond)
                    or self._expr_symbolic(function, expr.then)
                    or self._expr_symbolic(function, expr.otherwise))
        if isinstance(expr, AssignExpr):
            return self._expr_symbolic(function, expr.value)
        if isinstance(expr, Call):
            return self._call_returns_symbolic(function, expr)
        return False

    def _call_returns_symbolic(self, function: str, call: Call) -> bool:
        self._apply_call_effects(function, call)
        if call.name in self.input_functions:
            return True
        callee = self.program.functions.get(call.name)
        if callee is not None:
            if call.name in self.skip_functions:
                # Library code is not analyzed: assume it may return input.
                return True
            return call.name in self._returns_symbolic
        if call.name in _CONTENT_DERIVED_BUILTINS:
            return any(self._expr_symbolic(function, arg)
                       or self._points_to_symbolic(function, arg)
                       for arg in call.args)
        return False

    # -- call side effects --------------------------------------------------------------------------

    def _apply_call_effects(self, function: str, call: Call) -> None:
        callee = self.program.functions.get(call.name)
        if callee is not None and call.name in self.skip_functions:
            # Library code is not analyzed; conservatively assume it may write
            # input-derived data through any pointer argument it receives.
            for actual in call.args:
                for obj in self._pointees(function, actual):
                    self._mark_object(obj)
            return
        if callee is not None:
            for index, param in enumerate(callee.params):
                if index >= len(call.args):
                    break
                actual = call.args[index]
                if (self._expr_symbolic(function, actual)
                        or self._points_to_symbolic(function, actual)):
                    self._mark_var(qualify(callee.name, param.name))
            return
        if call.name in _INPUT_FILLING_BUILTINS and len(call.args) >= 2:
            for obj in self._pointees(function, call.args[1]):
                self._mark_object(obj)
        if call.name in _COPYING_BUILTINS and len(call.args) >= 2:
            source_symbolic = (self._expr_symbolic(function, call.args[1])
                               or self._points_to_symbolic(function, call.args[1]))
            if source_symbolic:
                for obj in self._pointees(function, call.args[0]):
                    self._mark_object(obj)

    # -- per-function pass ------------------------------------------------------------------------------

    def _analyze_function(self, function: FunctionDef) -> None:
        name = function.name
        for node in function.body.walk():
            if isinstance(node, VarDecl):
                for declarator in node.declarators:
                    if declarator.init is not None and self._expr_symbolic(name, declarator.init):
                        self._mark_var(qualify(name, declarator.name))
            elif isinstance(node, (Assign, AssignExpr)):
                self._analyze_assignment(name, node.target, node.value)
            elif isinstance(node, ExprStmt):
                if isinstance(node.expr, Call):
                    self._call_returns_symbolic(name, node.expr)
            elif isinstance(node, Call):
                self._apply_call_effects(name, node)
            elif isinstance(node, ReturnStmt):
                if node.value is not None and self._expr_symbolic(name, node.value):
                    self._mark_returns(name)
            elif isinstance(node, (IfStmt, WhileStmt, ForStmt)):
                cond = node.cond
                if cond is not None and self._expr_symbolic(name, cond):
                    location = branch_location_for(name, node)
                    if location not in self._symbolic_branches:
                        self._symbolic_branches.add(location)
                        self._changed = True

    def _analyze_assignment(self, function: str, target: Expr, value: Expr) -> None:
        value_symbolic = self._expr_symbolic(function, value)
        if isinstance(target, Identifier):
            if value_symbolic:
                if self.program.functions.get(function) is not None and \
                        qualify(None, target.name) in self._symbolic_vars:
                    return
                # Globals assigned inside functions propagate program-wide.
                if target.name in self.program.global_names() and \
                        not self._is_local(function, target.name):
                    self._mark_var(qualify(None, target.name))
                else:
                    self._mark_var(qualify(function, target.name))
            return
        if isinstance(target, (ArrayIndex,)) or (isinstance(target, UnaryOp) and target.op == "*"):
            if value_symbolic:
                base = target.base if isinstance(target, ArrayIndex) else target.operand
                for obj in self._pointees(function, base):
                    self._mark_object(obj)

    def _is_local(self, function: str, name: str) -> bool:
        fn = self.program.functions.get(function)
        if fn is None:
            return False
        for param in fn.params:
            if param.name == name:
                return True
        for node in fn.body.walk():
            if isinstance(node, VarDecl):
                for declarator in node.declarators:
                    if declarator.name == name:
                        return True
        return False
