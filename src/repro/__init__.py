"""Reproduction of *Striking a New Balance Between Program Instrumentation and
Debugging Time* (Crameri, Bianchini, Zwaenepoel — EuroSys 2011).

The package is organised as a set of substrates (a small C-like language, a
symbolic expression layer with a constraint solver, a simulated OS, an
interpreter) on top of which the paper's contribution is implemented: the
dynamic/static/combined branch-instrumentation methods, the bitvector branch
logger, and the bitvector-guided replay (bug reproduction) engine.

The most convenient entry point for a single program is
:class:`repro.Pipeline`::

    from repro import InstrumentationMethod, Pipeline
    from repro.environment import simple_environment
    from repro.workloads import fibonacci

    pipeline = Pipeline.from_source(fibonacci.SOURCE, name="fib")
    env = fibonacci.scenario_b()
    analysis = pipeline.analyze(env)
    plan = pipeline.make_plan(InstrumentationMethod.DYNAMIC_PLUS_STATIC, analysis)
    recording = pipeline.record(plan, env)
    report = pipeline.reproduce(recording)

For batches of shipped bug reports — ingestion, ``(fingerprint, crash
site)`` deduplication and scheduled replay searches — use the service layer
(:class:`repro.ReproService` / :class:`repro.ReproConfig`, see
:mod:`repro.service`); ``python -m repro`` is its command-line face.
"""

from repro.core.config import ConcolicBudget, PipelineConfig, ReplayBudget
from repro.core.pipeline import Pipeline
from repro.core.results import (
    AnalysisResult,
    BranchLoggingStats,
    InstrumentationReport,
    RecordingResult,
    ReplayReport,
)
from repro.environment import Environment, simple_environment
from repro.instrument.methods import InstrumentationMethod
from repro.instrument.plan import InstrumentationPlan
from repro.service import (
    IngestResult,
    ReproConfig,
    ReproService,
    ReproSession,
    ReproductionReport,
    ServiceStats,
    TraceInbox,
)
from repro.trace import (
    EnvironmentSpec,
    Trace,
    TraceError,
    TraceFingerprintMismatch,
    TraceFormatError,
    load_trace,
    save_trace,
    trace_from_recording,
)

__all__ = [
    "AnalysisResult",
    "BranchLoggingStats",
    "ConcolicBudget",
    "Environment",
    "EnvironmentSpec",
    "IngestResult",
    "InstrumentationMethod",
    "InstrumentationPlan",
    "InstrumentationReport",
    "Pipeline",
    "PipelineConfig",
    "RecordingResult",
    "ReplayBudget",
    "ReplayReport",
    "ReproConfig",
    "ReproService",
    "ReproSession",
    "ReproductionReport",
    "ServiceStats",
    "Trace",
    "TraceInbox",
    "TraceError",
    "TraceFingerprintMismatch",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "simple_environment",
    "trace_from_recording",
]

__version__ = "0.3.0"
