"""The instrumentation overhead model.

The paper measures the branch-logging instrumentation at 17 instructions
(~3 ns at ~2.1 IPC on their Xeon) per instrumented branch, including the
amortised cost of flushing the 4 KB buffer, and reports CPU-time overheads
relative to an uninstrumented run (107 % for a tight counting loop, 31 % for
mkdir, ~17–20 % for the dynamic configurations of the uServer).

This reproduction executes MiniC on an interpreter, so absolute nanoseconds
would be meaningless.  Instead the model counts *interpreter work units*:

* the uninstrumented base cost of a run is its interpreter step count (one
  step per AST node evaluation, a reasonable stand-in for instructions),
* every executed instrumented branch adds ``branch_instructions`` units,
* every logged syscall result adds ``syscall_instructions`` units,
* every 4 KB buffer flush adds ``flush_instructions`` units.

CPU-time percentages are then reported exactly like the paper's figures:
instrumented cost divided by the uninstrumented cost of the same run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

BRANCH_LOG_INSTRUCTIONS = 17
"""Instructions charged per executed instrumented branch (paper §5.1)."""

NANOSECONDS_PER_BRANCH = 3.0
"""Wall-clock cost per instrumented branch measured by the paper."""

SYSCALL_LOG_INSTRUCTIONS = 25
"""Instructions charged per logged syscall result (a few stores plus the
amortised flush; the paper reports the total effect as ~0.2 % overhead)."""

FLUSH_INSTRUCTIONS = 400
"""Amortised cost of flushing the 4 KB log buffer to simulated disk."""


@dataclass
class OverheadReport:
    """Overhead of one instrumented execution relative to its baseline."""

    method: str
    base_units: int
    instrumented_branch_executions: int
    logged_syscall_results: int = 0
    buffer_flushes: int = 0
    storage_bytes: int = 0
    branch_instructions: int = BRANCH_LOG_INSTRUCTIONS
    syscall_instructions: int = SYSCALL_LOG_INSTRUCTIONS
    flush_instructions: int = FLUSH_INSTRUCTIONS

    @property
    def instrumentation_units(self) -> int:
        return (self.instrumented_branch_executions * self.branch_instructions
                + self.logged_syscall_results * self.syscall_instructions
                + self.buffer_flushes * self.flush_instructions)

    @property
    def total_units(self) -> int:
        return self.base_units + self.instrumentation_units

    @property
    def cpu_time_percent(self) -> float:
        """Instrumented CPU time as a percentage of the uninstrumented run
        (100.0 means "no overhead", matching the paper's figures)."""

        if self.base_units == 0:
            return 100.0
        return 100.0 * self.total_units / self.base_units

    @property
    def overhead_percent(self) -> float:
        return self.cpu_time_percent - 100.0

    @property
    def estimated_instrumentation_nanoseconds(self) -> float:
        """Wall-clock estimate using the paper's per-branch calibration."""

        return self.instrumented_branch_executions * NANOSECONDS_PER_BRANCH

    def describe(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "base_units": self.base_units,
            "instrumented_branch_executions": self.instrumented_branch_executions,
            "logged_syscall_results": self.logged_syscall_results,
            "cpu_time_percent": round(self.cpu_time_percent, 1),
            "overhead_percent": round(self.overhead_percent, 1),
            "storage_bytes": self.storage_bytes,
        }


@dataclass
class OverheadModel:
    """Builds :class:`OverheadReport` objects from recording statistics.

    The per-event charges default to the paper's calibration; ablation
    benchmarks can instantiate the model with different constants.
    """

    branch_instructions: int = BRANCH_LOG_INSTRUCTIONS
    syscall_instructions: int = SYSCALL_LOG_INSTRUCTIONS
    flush_instructions: int = FLUSH_INSTRUCTIONS

    def report(self, method: str, base_units: int,
               instrumented_branch_executions: int,
               logged_syscall_results: int = 0,
               buffer_flushes: int = 0,
               storage_bytes: int = 0) -> OverheadReport:
        return OverheadReport(
            method=method,
            base_units=base_units,
            instrumented_branch_executions=instrumented_branch_executions,
            logged_syscall_results=logged_syscall_results,
            buffer_flushes=buffer_flushes,
            storage_bytes=storage_bytes,
            branch_instructions=self.branch_instructions,
            syscall_instructions=self.syscall_instructions,
            flush_instructions=self.flush_instructions,
        )
