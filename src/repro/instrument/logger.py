"""Runtime logging: the branch bitvector and the selective syscall-result log.

The paper's instrumentation writes one bit per executed instrumented branch
into a 4 KB in-memory buffer that is flushed to disk when full (§4).  The
:class:`BranchLogger` reproduces that behaviour as an interpreter hook and
accounts for buffer flushes so the storage model can charge for them.

The :class:`SyscallResultLog` records the integer results of the syscalls in
:data:`repro.osmodel.syscalls.LOGGED_BY_DEFAULT` (``read``/``recv`` return
values, ``select`` ready descriptor, ``accept`` result) — never the transferred
data itself, matching the paper's privacy constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.instrument.plan import InstrumentationPlan
from repro.interp.tracer import BranchEvent, ExecutionHooks
from repro.lang.cfg import BranchLocation
from repro.osmodel.syscalls import LOGGED_BY_DEFAULT, SyscallEvent, SyscallKind

LOG_BUFFER_BYTES = 4096
"""Size of the in-memory branch-log buffer before it is flushed (the paper
uses a 4 KB buffer)."""


@dataclass
class BitvectorLog:
    """The branch log: one bit per executed instrumented branch, in order."""

    bits: List[bool] = field(default_factory=list)
    flushes: int = 0

    def append(self, taken: bool) -> None:
        self.bits.append(bool(taken))
        if len(self.bits) % (LOG_BUFFER_BYTES * 8) == 0:
            self.flushes += 1

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self) -> Iterator[bool]:
        return iter(self.bits)

    def __getitem__(self, index: int) -> bool:
        return self.bits[index]

    def storage_bytes(self) -> int:
        """Bytes needed to store the bitvector (rounded up to whole bytes)."""

        return (len(self.bits) + 7) // 8

    def to_bytes(self) -> bytes:
        """Pack the bitvector into bytes (LSB-first within each byte)."""

        out = bytearray((len(self.bits) + 7) // 8)
        for index, bit in enumerate(self.bits):
            if bit:
                out[index // 8] |= 1 << (index % 8)
        return bytes(out)

    @classmethod
    def from_bits(cls, bits: Sequence[bool]) -> "BitvectorLog":
        log = cls()
        for bit in bits:
            log.append(bool(bit))
        return log

    @classmethod
    def from_bytes(cls, data: bytes, bit_count: int) -> "BitvectorLog":
        """Inverse of :meth:`to_bytes`: unpack *bit_count* LSB-first bits.

        Rebuilds the flush count the way :meth:`append` would have, so a
        round-tripped log is indistinguishable from the original (the trace
        serializer and the process-pool replay workers rely on this).
        """

        if bit_count > len(data) * 8:
            raise ValueError(
                f"bitvector payload too short: {len(data)} bytes cannot hold "
                f"{bit_count} bits")
        log = cls()
        log.bits = [bool(data[index // 8] & (1 << (index % 8)))
                    for index in range(bit_count)]
        log.flushes = bit_count // (LOG_BUFFER_BYTES * 8)
        return log


@dataclass
class SyscallResultLog:
    """Ordered per-kind log of syscall results (integers only, never data)."""

    results: Dict[SyscallKind, List[int]] = field(default_factory=dict)
    logged_kinds: frozenset = LOGGED_BY_DEFAULT

    def record(self, event: SyscallEvent) -> None:
        if event.kind in self.logged_kinds:
            self.results.setdefault(event.kind, []).append(event.result)

    def count(self) -> int:
        return sum(len(values) for values in self.results.values())

    def storage_bytes(self) -> int:
        """4 bytes per logged result (a 32-bit integer each)."""

        return 4 * self.count()

    def of_kind(self, kind: SyscallKind) -> List[int]:
        return list(self.results.get(kind, ()))

    def cursor(self) -> "SyscallLogCursor":
        return SyscallLogCursor(self)

    def to_payload(self) -> Dict[str, List[int]]:
        """Plain ``{kind name: [results]}`` map for serialization."""

        return {kind.value: list(values) for kind, values in self.results.items()}

    @classmethod
    def from_payload(cls, payload: Dict[str, List[int]],
                     logged_kinds: Optional[Sequence[str]] = None) -> "SyscallResultLog":
        """Inverse of :meth:`to_payload` (kind names back to ``SyscallKind``)."""

        log = cls(results={SyscallKind(name): list(values)
                           for name, values in payload.items()})
        if logged_kinds is not None:
            log.logged_kinds = frozenset(SyscallKind(name) for name in logged_kinds)
        return log


class SyscallLogCursor:
    """Sequential reader used by the replay engine to consume logged results."""

    def __init__(self, log: SyscallResultLog) -> None:
        self._log = log
        self._positions: Dict[SyscallKind, int] = {}

    def next_result(self, kind: SyscallKind) -> Optional[int]:
        values = self._log.results.get(kind)
        if values is None:
            return None
        position = self._positions.get(kind, 0)
        if position >= len(values):
            return None
        self._positions[kind] = position + 1
        return values[position]

    def remaining(self, kind: SyscallKind) -> int:
        values = self._log.results.get(kind, [])
        return len(values) - self._positions.get(kind, 0)


class BranchLogger(ExecutionHooks):
    """Interpreter hook implementing the user-site instrumentation runtime.

    With the tree-walking interpreter (or the VM on unspecialized code) the
    logger filters every :meth:`on_branch` event against the plan.  The
    bytecode VM instead recognises ``vm_inline = "record"`` and runs
    plan-specialized code that appends bits straight onto
    ``self.bitvector.bits`` and counts per-slot executions inline, calling
    :meth:`vm_merge` once at the end of the run — same observable state, no
    per-branch hook dispatch.
    """

    #: Opt-in marker for the VM's inline record fast path.
    vm_inline = "record"

    def __init__(self, plan: InstrumentationPlan) -> None:
        self.plan = plan
        self.bitvector = BitvectorLog()
        self.syscall_log = SyscallResultLog()
        self.instrumented_executions = 0
        self.total_branch_executions = 0
        self.per_location_executions: Dict[BranchLocation, int] = {}

    def on_branch(self, event: BranchEvent) -> None:
        self.total_branch_executions += 1
        if not self.plan.is_instrumented(event.location):
            return
        self.instrumented_executions += 1
        self.per_location_executions[event.location] = (
            self.per_location_executions.get(event.location, 0) + 1)
        self.bitvector.append(event.taken)

    def on_syscall(self, event: SyscallEvent) -> None:
        if self.plan.log_syscalls:
            self.syscall_log.record(event)

    # -- VM inline-record integration ---------------------------------------------------

    def vm_can_inline(self) -> bool:
        """The inline fast path requires a fresh logger (one logger per run)."""

        return (not self.bitvector.bits and not self.total_branch_executions
                and not self.instrumented_executions
                and not self.per_location_executions)

    def vm_merge(self, total_branch_executions: int, locations: Sequence,
                 slot_counts: Sequence[int]) -> None:
        """Fold the VM's inline per-run state into the logger's statistics.

        The VM appended bits directly onto ``self.bitvector.bits`` (bypassing
        :meth:`BitvectorLog.append` and its flush bookkeeping) and counted
        executions per ``BRANCH_LOGGED`` slot; this recomputes the flush count
        and rebuilds the per-location tallies exactly as per-event dispatch
        would have.
        """

        self.total_branch_executions += total_branch_executions
        self.bitvector.flushes = len(self.bitvector.bits) // (LOG_BUFFER_BYTES * 8)
        per_location = self.per_location_executions
        for slot, count in enumerate(slot_counts):
            if count:
                self.instrumented_executions += count
                location = locations[slot]
                per_location[location] = per_location.get(location, 0) + count

    # -- storage accounting ------------------------------------------------------------

    def storage_bytes(self) -> int:
        total = self.bitvector.storage_bytes()
        if self.plan.log_syscalls:
            total += self.syscall_log.storage_bytes()
        return total

    def instrumented_locations_executed(self) -> int:
        return len(self.per_location_executions)
