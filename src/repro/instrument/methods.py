"""The four instrumentation methods (§2.3) plus an ablation variant.

Given the outputs of the dynamic analysis (branch labels: symbolic / concrete /
unvisited) and the static analysis (symbolic / concrete), each method selects
the set of branch locations to instrument:

* ``DYNAMIC`` — only branches the dynamic analysis labelled symbolic,
* ``STATIC`` — every branch the static analysis labelled symbolic,
* ``DYNAMIC_PLUS_STATIC`` — the paper's combined rule: branches visited by the
  dynamic analysis keep its label; unvisited branches fall back to the static
  label,
* ``ALL_BRANCHES`` — the naive baseline,
* ``STATIC_UNION`` — ablation only (not in the paper): the union of the two
  symbolic sets, i.e. dynamic labels are never allowed to override static ones.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Set

from repro.analysis.dataflow import StaticAnalysisResult
from repro.concolic.labels import BranchLabels
from repro.instrument.plan import InstrumentationPlan
from repro.lang.cfg import BranchLocation


class InstrumentationMethod(enum.Enum):
    """How the set of instrumented branch locations is chosen."""

    NONE = "none"
    DYNAMIC = "dynamic"
    STATIC = "static"
    DYNAMIC_PLUS_STATIC = "dynamic+static"
    ALL_BRANCHES = "all branches"
    STATIC_UNION = "static-union"  # ablation, not part of the paper

    @classmethod
    def paper_methods(cls) -> Iterable["InstrumentationMethod"]:
        """The four instrumented configurations evaluated in the paper."""

        return (cls.DYNAMIC, cls.DYNAMIC_PLUS_STATIC, cls.STATIC, cls.ALL_BRANCHES)


def _require(value, what: str):
    if value is None:
        raise ValueError(f"{what} is required for this instrumentation method")
    return value


def select_branches(method: InstrumentationMethod,
                    all_locations: Set[BranchLocation],
                    dynamic_labels: Optional[BranchLabels] = None,
                    static_result: Optional[StaticAnalysisResult] = None) -> Set[BranchLocation]:
    """Compute the instrumented branch-location set for *method*."""

    if method is InstrumentationMethod.NONE:
        return set()
    if method is InstrumentationMethod.ALL_BRANCHES:
        return set(all_locations)
    if method is InstrumentationMethod.DYNAMIC:
        labels = _require(dynamic_labels, "dynamic analysis labels")
        return set(labels.symbolic)
    if method is InstrumentationMethod.STATIC:
        static = _require(static_result, "static analysis result")
        return set(static.symbolic_branches)
    if method is InstrumentationMethod.STATIC_UNION:
        labels = _require(dynamic_labels, "dynamic analysis labels")
        static = _require(static_result, "static analysis result")
        return set(labels.symbolic) | set(static.symbolic_branches)
    if method is InstrumentationMethod.DYNAMIC_PLUS_STATIC:
        labels = _require(dynamic_labels, "dynamic analysis labels")
        static = _require(static_result, "static analysis result")
        # Branches labelled symbolic by the dynamic analysis are always
        # instrumented.  Branches labelled symbolic by the static analysis are
        # instrumented unless the dynamic analysis visited them and found them
        # concrete (dynamic overrides static on visited branches).
        selected = set(labels.symbolic)
        for location in static.symbolic_branches:
            if location in labels.concrete:
                continue
            selected.add(location)
        return selected
    raise ValueError(f"unknown instrumentation method: {method!r}")


def build_plan(method: InstrumentationMethod,
               all_locations: Iterable[BranchLocation],
               dynamic_labels: Optional[BranchLabels] = None,
               static_result: Optional[StaticAnalysisResult] = None,
               log_syscalls: bool = True) -> InstrumentationPlan:
    """Build the :class:`InstrumentationPlan` for *method*."""

    locations = set(all_locations)
    instrumented = select_branches(method, locations, dynamic_labels, static_result)
    metadata = {}
    if dynamic_labels is not None:
        metadata["dynamic_labels"] = dynamic_labels.counts()
        metadata["dynamic_coverage"] = dynamic_labels.coverage()
    if static_result is not None:
        metadata["static_counts"] = static_result.counts()
    return InstrumentationPlan.from_sets(method.value, instrumented, locations,
                                         log_syscalls=log_syscalls,
                                         analysis_metadata=metadata)
