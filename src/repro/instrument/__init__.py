"""Branch instrumentation: deciding what to log and logging it.

This package implements §2.3 of the paper:

* :mod:`repro.instrument.methods` — the four instrumentation methods
  (*dynamic*, *static*, *dynamic+static*, *all branches*) that turn analysis
  results into an :class:`~repro.instrument.plan.InstrumentationPlan`,
* :mod:`repro.instrument.logger` — the runtime branch logger (one bit per
  executed instrumented branch, 4 KB buffer flushed to simulated disk) and the
  selective syscall-result logger,
* :mod:`repro.instrument.overhead` — the CPU/storage overhead model calibrated
  against the paper's microbenchmark measurements (17 instructions ≈ 3 ns per
  instrumented branch).
"""

from repro.instrument.methods import InstrumentationMethod, build_plan
from repro.instrument.plan import InstrumentationPlan
from repro.instrument.logger import BitvectorLog, BranchLogger, SyscallResultLog
from repro.instrument.overhead import OverheadModel, OverheadReport

__all__ = [
    "BitvectorLog",
    "BranchLogger",
    "InstrumentationMethod",
    "InstrumentationPlan",
    "OverheadModel",
    "OverheadReport",
    "SyscallResultLog",
    "build_plan",
]
