"""The instrumentation plan: which branch locations are logged.

The developer keeps the plan (the ordered list of instrumented branch
locations) because the replay engine needs it to interpret the bitvector
received with a bug report (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.lang.cfg import BranchLocation


@dataclass
class InstrumentationPlan:
    """The set of instrumented branch locations plus logging options."""

    method: str
    instrumented: FrozenSet[BranchLocation]
    all_locations: FrozenSet[BranchLocation]
    log_syscalls: bool = True
    analysis_metadata: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_sets(cls, method: str, instrumented: Iterable[BranchLocation],
                  all_locations: Iterable[BranchLocation],
                  log_syscalls: bool = True,
                  analysis_metadata: Optional[Dict[str, object]] = None) -> "InstrumentationPlan":
        return cls(method=method,
                   instrumented=frozenset(instrumented),
                   all_locations=frozenset(all_locations),
                   log_syscalls=log_syscalls,
                   analysis_metadata=dict(analysis_metadata or {}))

    # -- queries --------------------------------------------------------------------

    def is_instrumented(self, location: BranchLocation) -> bool:
        return location in self.instrumented

    def fingerprint(self) -> tuple:
        """Stable identity of the *instrumented branch set* of this plan.

        Two plans with the same instrumented locations produce the same
        fingerprint regardless of method or syscall-logging options, because
        only the branch set affects plan-specialized code generation.  Used
        as the compiled-code cache key (:mod:`repro.vm.compiler`) and to
        detect a stale specialization before reusing compiled code.
        """

        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = tuple(sorted((loc.function, loc.node_id)
                                  for loc in self.instrumented))
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def instrumented_count(self) -> int:
        return len(self.instrumented)

    def instrumented_in(self, functions: Iterable[str]) -> Set[BranchLocation]:
        wanted = set(functions)
        return {loc for loc in self.instrumented if loc.function in wanted}

    def fraction_instrumented(self) -> float:
        if not self.all_locations:
            return 0.0
        return len(self.instrumented) / len(self.all_locations)

    # -- serialization ----------------------------------------------------------------

    def location_tuples(self) -> Dict[str, List[tuple]]:
        """The plan's branch sets as sorted plain tuples (for the trace format).

        Each location becomes ``(function, node_id, line, kind)``; sorting makes
        the serialized form canonical for a given plan (the sets are frozen, so
        iteration order is arbitrary).
        """

        def rows(locations: Iterable[BranchLocation]) -> List[tuple]:
            return [(loc.function, loc.node_id, loc.line, loc.kind)
                    for loc in sorted(locations)]

        return {"instrumented": rows(self.instrumented),
                "all_locations": rows(self.all_locations)}

    @classmethod
    def from_location_tuples(cls, method: str, instrumented: Iterable[tuple],
                             all_locations: Iterable[tuple],
                             log_syscalls: bool = True) -> "InstrumentationPlan":
        """Rebuild a plan from :meth:`location_tuples` rows.

        The rebuilt plan has the same :meth:`fingerprint` as the original;
        ``analysis_metadata`` is not serialized (it never affects replay).
        """

        def build(rows: Iterable[tuple]) -> FrozenSet[BranchLocation]:
            return frozenset(BranchLocation(function=f, node_id=n, line=l, kind=k)
                             for f, n, l, k in rows)

        return cls(method=method, instrumented=build(instrumented),
                   all_locations=build(all_locations), log_syscalls=log_syscalls)

    def without_syscall_logging(self) -> "InstrumentationPlan":
        """The same branch set, but with syscall-result logging disabled."""

        return InstrumentationPlan(method=self.method,
                                   instrumented=self.instrumented,
                                   all_locations=self.all_locations,
                                   log_syscalls=False,
                                   analysis_metadata=dict(self.analysis_metadata))

    def describe(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "instrumented_branch_locations": len(self.instrumented),
            "total_branch_locations": len(self.all_locations),
            "fraction": round(self.fraction_instrumented(), 4),
            "log_syscalls": self.log_syscalls,
        }
