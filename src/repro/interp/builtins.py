"""Builtin functions available to MiniC programs.

Three groups:

* a small libc subset (string/memory/ctype helpers, ``printf``, ``malloc``),
* program-control helpers (``assert``, ``crash``, ``abort``, ``exit``),
* syscall wrappers backed by the simulated kernel (``open``, ``read``,
  ``select``, ``accept``, ``recv``, ``mkdir``, ...).

The syscall wrappers are where input becomes symbolic: bytes read from argv,
stdin, files and sockets are bound through the interpreter's
:class:`~repro.interp.inputs.InputBinder`, and in ``ANALYZE``/``REPLAY`` mode
the syscall *return values* of input-returning calls are bound as well (unless
a replay syscall log forces them).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.interp.values import (
    ArrayObject,
    ConcolicValue,
    Pointer,
    Value,
    ZERO,
    array_to_bytes,
    array_to_string,
    as_int,
    binary_int_op,
    concrete,
    is_null,
    string_to_array,
)
from repro.lang.errors import ExitProgram, ProgramCrash, RuntimeMiniCError
from repro.osmodel.syscalls import SyscallKind

BuiltinFn = Callable[["Interpreter", List[Value], object], Value]  # noqa: F821

_REGISTRY: Dict[str, BuiltinFn] = {}

#: Builtins whose return value (or output buffer) carries program input.  The
#: static analysis treats calls to these as sources of symbolic data.
INPUT_RETURNING_BUILTINS = frozenset({
    "getchar",
    "read_option",
    "read",
    "recv",
    "accept",
    "select_fd",
    "net_select",
    "read_line",
})


def builtin(name: str) -> Callable[[BuiltinFn], BuiltinFn]:
    def register(fn: BuiltinFn) -> BuiltinFn:
        _REGISTRY[name] = fn
        return fn
    return register


def lookup_builtin(name: str) -> Optional[BuiltinFn]:
    return _REGISTRY.get(name)


BUILTIN_NAMES = _REGISTRY.keys()


def _int_arg(args: List[Value], index: int, default: int = 0) -> ConcolicValue:
    if index >= len(args):
        return concrete(default)
    return as_int(args[index])


def _pointer_arg(args: List[Value], index: int, node, what: str) -> Pointer:
    if index >= len(args) or not isinstance(args[index], Pointer):
        line = getattr(node, "line", 0)
        raise ProgramCrash(f"{what}: expected a pointer argument", line)
    return args[index]


# ---------------------------------------------------------------------------
# libc subset: strings and memory
# ---------------------------------------------------------------------------


@builtin("strlen")
def _strlen(interp, args, node) -> Value:
    pointer = _pointer_arg(args, 0, node, "strlen")
    length = 0
    index = pointer.offset
    block = pointer.block
    while index < len(block) and as_int(block.get(index)).concrete != 0:
        length += 1
        index += 1
    return concrete(length)


@builtin("strcmp")
def _strcmp(interp, args, node) -> Value:
    a = _pointer_arg(args, 0, node, "strcmp")
    b = _pointer_arg(args, 1, node, "strcmp")
    text_a = array_to_string(a)
    text_b = array_to_string(b)
    if text_a == text_b:
        return concrete(0)
    return concrete(-1 if text_a < text_b else 1)


@builtin("strncmp")
def _strncmp(interp, args, node) -> Value:
    a = _pointer_arg(args, 0, node, "strncmp")
    b = _pointer_arg(args, 1, node, "strncmp")
    n = _int_arg(args, 2).concrete
    text_a = array_to_string(a)[:n]
    text_b = array_to_string(b)[:n]
    if text_a == text_b:
        return concrete(0)
    return concrete(-1 if text_a < text_b else 1)


@builtin("strcpy")
def _strcpy(interp, args, node) -> Value:
    dest = _pointer_arg(args, 0, node, "strcpy")
    src = _pointer_arg(args, 1, node, "strcpy")
    index = 0
    while True:
        cell = src.block.get(src.offset + index) if src.block.in_bounds(src.offset + index) else ZERO
        target = dest.offset + index
        if not dest.block.in_bounds(target):
            raise ProgramCrash("strcpy: destination overflow", getattr(node, "line", 0))
        dest.block.set(target, cell)
        if as_int(cell).concrete == 0:
            break
        index += 1
    return dest


@builtin("strcat")
def _strcat(interp, args, node) -> Value:
    dest = _pointer_arg(args, 0, node, "strcat")
    length = as_int(_strlen(interp, [dest], node)).concrete
    shifted = Pointer(dest.block, dest.offset + length)
    _strcpy(interp, [shifted, args[1]], node)
    return dest


@builtin("strchr")
def _strchr(interp, args, node) -> Value:
    pointer = _pointer_arg(args, 0, node, "strchr")
    target = _int_arg(args, 1).concrete
    index = pointer.offset
    block = pointer.block
    while block.in_bounds(index):
        code = as_int(block.get(index)).concrete
        if code == target:
            return Pointer(block, index)
        if code == 0:
            break
        index += 1
    return ZERO


@builtin("atoi")
def _atoi(interp, args, node) -> Value:
    pointer = _pointer_arg(args, 0, node, "atoi")
    block, index = pointer.block, pointer.offset
    result: Value = concrete(0)
    sign = 1
    if block.in_bounds(index) and as_int(block.get(index)).concrete == ord("-"):
        sign = -1
        index += 1
    seen_digit = False
    while block.in_bounds(index):
        cell = as_int(block.get(index))
        code = cell.concrete
        if not (ord("0") <= code <= ord("9")):
            break
        seen_digit = True
        digit = binary_int_op("-", cell, concrete(ord("0")))
        result = binary_int_op("+", binary_int_op("*", as_int(result), concrete(10)), digit)
        index += 1
    if not seen_digit:
        return concrete(0)
    if sign < 0:
        result = binary_int_op("*", as_int(result), concrete(-1))
    return result


@builtin("memcpy")
def _memcpy(interp, args, node) -> Value:
    dest = _pointer_arg(args, 0, node, "memcpy")
    src = _pointer_arg(args, 1, node, "memcpy")
    count = _int_arg(args, 2).concrete
    for index in range(count):
        if not dest.block.in_bounds(dest.offset + index):
            raise ProgramCrash("memcpy: destination overflow", getattr(node, "line", 0))
        cell = src.block.get(src.offset + index) if src.block.in_bounds(src.offset + index) else ZERO
        dest.block.set(dest.offset + index, cell)
    return dest


@builtin("memset")
def _memset(interp, args, node) -> Value:
    dest = _pointer_arg(args, 0, node, "memset")
    value = _int_arg(args, 1)
    count = _int_arg(args, 2).concrete
    for index in range(count):
        if not dest.block.in_bounds(dest.offset + index):
            raise ProgramCrash("memset: destination overflow", getattr(node, "line", 0))
        dest.block.set(dest.offset + index, ConcolicValue(value.concrete, value.symbolic))
    return dest


@builtin("malloc")
def _malloc(interp, args, node) -> Value:
    size = max(1, _int_arg(args, 0, 1).concrete)
    return Pointer(ArrayObject(size, label="malloc"), 0)


@builtin("free")
def _free(interp, args, node) -> Value:
    return ZERO


# ---------------------------------------------------------------------------
# ctype helpers
# ---------------------------------------------------------------------------


def _ctype(predicate):
    def fn(interp, args, node) -> Value:
        value = _int_arg(args, 0)
        result = int(predicate(value.concrete))
        if value.symbolic is None:
            return concrete(result)
        # Keep the dependence on input: express the common predicates as
        # comparisons so the result stays symbolic and solvable.
        return ConcolicValue(result, value.symbolic and _symbolic_ctype(value, predicate))
    return fn


def _symbolic_ctype(value: ConcolicValue, predicate):
    from repro.symbolic.expr import SymBinOp, sym_const

    expr = value.expr()
    if predicate is _IS_DIGIT:
        return SymBinOp("&&", SymBinOp(">=", expr, sym_const(ord("0"))),
                        SymBinOp("<=", expr, sym_const(ord("9"))))
    if predicate is _IS_SPACE:
        return SymBinOp("||", SymBinOp("==", expr, sym_const(ord(" "))),
                        SymBinOp("||", SymBinOp("==", expr, sym_const(ord("\t"))),
                                 SymBinOp("==", expr, sym_const(ord("\n")))))
    if predicate is _IS_ALPHA:
        lower = SymBinOp("&&", SymBinOp(">=", expr, sym_const(ord("a"))),
                         SymBinOp("<=", expr, sym_const(ord("z"))))
        upper = SymBinOp("&&", SymBinOp(">=", expr, sym_const(ord("A"))),
                         SymBinOp("<=", expr, sym_const(ord("Z"))))
        return SymBinOp("||", lower, upper)
    return None


def _IS_DIGIT(code: int) -> bool:
    return ord("0") <= code <= ord("9")


def _IS_ALPHA(code: int) -> bool:
    return (ord("a") <= code <= ord("z")) or (ord("A") <= code <= ord("Z"))


def _IS_SPACE(code: int) -> bool:
    return code in (ord(" "), ord("\t"), ord("\n"), ord("\r"))


_REGISTRY["isdigit"] = _ctype(_IS_DIGIT)
_REGISTRY["isalpha"] = _ctype(_IS_ALPHA)
_REGISTRY["isspace"] = _ctype(_IS_SPACE)


@builtin("toupper")
def _toupper(interp, args, node) -> Value:
    value = _int_arg(args, 0)
    code = value.concrete
    if ord("a") <= code <= ord("z"):
        return binary_int_op("-", value, concrete(32))
    return value


@builtin("tolower")
def _tolower(interp, args, node) -> Value:
    value = _int_arg(args, 0)
    code = value.concrete
    if ord("A") <= code <= ord("Z"):
        return binary_int_op("+", value, concrete(32))
    return value


@builtin("abs")
def _abs(interp, args, node) -> Value:
    value = _int_arg(args, 0)
    if value.concrete < 0:
        return binary_int_op("*", value, concrete(-1))
    return value


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------


def _format_printf(interp, args: List[Value], node) -> str:
    fmt = array_to_string(_pointer_arg(args, 0, node, "printf"))
    out: List[str] = []
    arg_index = 1
    position = 0
    while position < len(fmt):
        ch = fmt[position]
        if ch != "%" or position + 1 >= len(fmt):
            out.append(ch)
            position += 1
            continue
        spec = fmt[position + 1]
        position += 2
        if spec == "%":
            out.append("%")
        elif spec in ("d", "i", "u", "x"):
            value = as_int(args[arg_index]).concrete if arg_index < len(args) else 0
            out.append(format(value, "x") if spec == "x" else str(value))
            arg_index += 1
        elif spec == "c":
            value = as_int(args[arg_index]).concrete if arg_index < len(args) else 0
            out.append(chr(value & 0xFF))
            arg_index += 1
        elif spec == "s":
            if arg_index < len(args) and isinstance(args[arg_index], Pointer):
                out.append(array_to_string(args[arg_index]))
            arg_index += 1
        else:
            out.append("%" + spec)
    return "".join(out)


@builtin("printf")
def _printf(interp, args, node) -> Value:
    text = _format_printf(interp, args, node)
    interp.kernel.sys_write(1, text.encode("utf-8"))
    return concrete(len(text))


@builtin("puts")
def _puts(interp, args, node) -> Value:
    text = array_to_string(_pointer_arg(args, 0, node, "puts"))
    interp.kernel.sys_write(1, (text + "\n").encode("utf-8"))
    return concrete(len(text) + 1)


@builtin("putchar")
def _putchar(interp, args, node) -> Value:
    code = _int_arg(args, 0).concrete & 0xFF
    interp.kernel.sys_write(1, bytes([code]))
    return concrete(code)


@builtin("fprintf_err")
def _fprintf_err(interp, args, node) -> Value:
    text = _format_printf(interp, args, node)
    interp.kernel.sys_write(2, text.encode("utf-8"))
    return concrete(len(text))


# ---------------------------------------------------------------------------
# Program control
# ---------------------------------------------------------------------------


@builtin("assert")
def _assert(interp, args, node) -> Value:
    value = _int_arg(args, 0)
    if value.concrete == 0:
        raise ProgramCrash("assertion failure", getattr(node, "line", 0),
                           interp.current_function_name())
    return concrete(1)


@builtin("crash")
def _crash(interp, args, node) -> Value:
    message = "explicit crash"
    if args and isinstance(args[0], Pointer):
        message = array_to_string(args[0]) or message
    raise ProgramCrash(message, getattr(node, "line", 0), interp.current_function_name())


@builtin("abort")
def _abort(interp, args, node) -> Value:
    raise ProgramCrash("abort()", getattr(node, "line", 0), interp.current_function_name())


@builtin("exit")
def _exit(interp, args, node) -> Value:
    raise ExitProgram(_int_arg(args, 0).concrete)


# ---------------------------------------------------------------------------
# Input and syscalls
# ---------------------------------------------------------------------------


def _channel_for_fd(interp, fd: int) -> str:
    descriptor = interp.kernel.descriptor(fd)
    if descriptor is None:
        return f"fd{fd}"
    if descriptor.kind == "stdin":
        return "stdin"
    if descriptor.kind == "conn" and descriptor.connection is not None:
        return f"conn{descriptor.connection.conn_id}"
    if descriptor.kind == "file":
        return "file_" + descriptor.path.replace("/", "_")
    return f"fd{fd}"


def _bind_count(interp, kind: SyscallKind, channel: str, env_count: int,
                requested: int) -> ConcolicValue:
    """Bind a syscall return value, honouring the replay syscall log."""

    forced = interp.forced_syscall_result(kind)
    if forced is not None:
        return concrete(forced)
    name = f"ret_{kind.value}_{channel}_{interp.binder.next_index('ret_' + kind.value + '_' + channel)}"
    upper = max(requested, 0)
    return interp.binder.bind_int(name, env_count, lo=-1, hi=max(upper, 1),
                                  default=min(upper, max(upper, 1)))


def _fill_buffer(interp, buffer: Pointer, channel: str, data: bytes, count: int,
                 node) -> None:
    """Copy *count* input bytes into the guest buffer, binding each one."""

    for index in range(count):
        env_value = data[index] if index < len(data) else None
        name = f"{channel}_{interp.binder.next_index(channel)}"
        value = interp.binder.bind_byte(name, env_value)
        target = buffer.offset + index
        if not buffer.block.in_bounds(target):
            raise ProgramCrash("read: buffer overflow", getattr(node, "line", 0),
                               interp.current_function_name())
        buffer.block.set(target, value)


@builtin("getchar")
def _getchar(interp, args, node) -> Value:
    result = interp.kernel.sys_getchar()
    interp.notify_syscall()
    if result < 0:
        return concrete(-1)
    name = f"stdin_{interp.binder.next_index('stdin')}"
    return interp.binder.bind_byte(name, result)


@builtin("read_option")
def _read_option(interp, args, node) -> Value:
    """Listing 1's ``read_option(input)``: one option character from stdin."""

    return _getchar(interp, args, node)


@builtin("open")
def _open(interp, args, node) -> Value:
    path = array_to_string(_pointer_arg(args, 0, node, "open"))
    flags = _int_arg(args, 1).concrete
    fd = interp.kernel.sys_open(path, flags)
    interp.notify_syscall()
    return concrete(fd)


@builtin("read")
def _read(interp, args, node) -> Value:
    fd = _int_arg(args, 0).concrete
    buffer = _pointer_arg(args, 1, node, "read")
    requested = _int_arg(args, 2).concrete
    channel = _channel_for_fd(interp, fd)
    env_count, data = interp.kernel.sys_read(fd, requested)
    interp.notify_syscall()
    count_value = _bind_count(interp, SyscallKind.READ, channel, env_count, requested)
    count = count_value.concrete
    if count > 0:
        _fill_buffer(interp, buffer, channel, data, min(count, requested), node)
    return count_value


@builtin("read_line")
def _read_line(interp, args, node) -> Value:
    """Read one LF-terminated line from a file descriptor into a buffer.

    Returns the number of bytes stored (excluding the terminating NUL), or -1
    at end of input.  Used by the diff workload.
    """

    fd = _int_arg(args, 0).concrete
    buffer = _pointer_arg(args, 1, node, "read_line")
    capacity = _int_arg(args, 2).concrete
    channel = _channel_for_fd(interp, fd)
    stored = 0
    while stored < capacity - 1:
        env_count, data = interp.kernel.sys_read(fd, 1)
        interp.notify_syscall()
        if env_count <= 0:
            break
        name = f"{channel}_{interp.binder.next_index(channel)}"
        value = interp.binder.bind_byte(name, data[0])
        buffer.block.set(buffer.offset + stored, value)
        stored += 1
        if value.concrete == ord("\n"):
            break
    buffer.block.set(buffer.offset + stored, ZERO)
    if stored == 0:
        return concrete(-1)
    return concrete(stored)


@builtin("write")
def _write(interp, args, node) -> Value:
    fd = _int_arg(args, 0).concrete
    buffer = _pointer_arg(args, 1, node, "write")
    count = _int_arg(args, 2).concrete
    data = array_to_bytes(buffer, count)
    result = interp.kernel.sys_write(fd, data)
    interp.notify_syscall()
    return concrete(result)


@builtin("close")
def _close(interp, args, node) -> Value:
    result = interp.kernel.sys_close(_int_arg(args, 0).concrete)
    interp.notify_syscall()
    return concrete(result)


@builtin("mkdir")
def _mkdir(interp, args, node) -> Value:
    path = array_to_string(_pointer_arg(args, 0, node, "mkdir"))
    mode = _int_arg(args, 1, 0o755).concrete
    result = interp.kernel.sys_mkdir(path, mode)
    interp.notify_syscall()
    return concrete(result)


@builtin("mknod")
def _mknod(interp, args, node) -> Value:
    path = array_to_string(_pointer_arg(args, 0, node, "mknod"))
    mode = _int_arg(args, 1, 0o644).concrete
    result = interp.kernel.sys_mknod(path, mode)
    interp.notify_syscall()
    return concrete(result)


@builtin("mkfifo")
def _mkfifo(interp, args, node) -> Value:
    path = array_to_string(_pointer_arg(args, 0, node, "mkfifo"))
    mode = _int_arg(args, 1, 0o644).concrete
    result = interp.kernel.sys_mkfifo(path, mode)
    interp.notify_syscall()
    return concrete(result)


@builtin("unlink")
def _unlink(interp, args, node) -> Value:
    path = array_to_string(_pointer_arg(args, 0, node, "unlink"))
    result = interp.kernel.sys_unlink(path)
    interp.notify_syscall()
    return concrete(result)


@builtin("file_exists")
def _file_exists(interp, args, node) -> Value:
    path = array_to_string(_pointer_arg(args, 0, node, "file_exists"))
    result = interp.kernel.sys_stat(path)
    interp.notify_syscall()
    return concrete(1 if result == 0 else 0)


# ---------------------------------------------------------------------------
# Network syscalls (the uServer substrate)
# ---------------------------------------------------------------------------


@builtin("net_listen")
def _net_listen(interp, args, node) -> Value:
    fd = interp.kernel.sys_listen()
    interp.notify_syscall()
    return concrete(fd)


@builtin("net_select")
def _net_select(interp, args, node) -> Value:
    """Return one ready descriptor or -1; the select() analogue."""

    env_fd = interp.kernel.sys_select()
    interp.notify_syscall()
    forced = interp.forced_syscall_result(SyscallKind.SELECT)
    if forced is not None:
        return concrete(forced)
    if interp.binder.mode.symbolic_inputs:
        name = f"ret_select_{interp.binder.next_index('ret_select')}"
        return interp.binder.bind_int(name, env_fd, lo=-1, hi=64, default=env_fd if env_fd >= 0 else -1)
    return concrete(env_fd)


# Alias kept because the paper's text talks about select() directly.
_REGISTRY["select_fd"] = _REGISTRY["net_select"]


@builtin("workload_done")
def _workload_done(interp, args, node) -> Value:
    """True when the scripted client workload has been fully served."""

    return concrete(1 if interp.kernel.workload_finished() else 0)


@builtin("accept")
def _accept(interp, args, node) -> Value:
    listen_fd = _int_arg(args, 0).concrete
    env_fd = interp.kernel.sys_accept(listen_fd)
    interp.notify_syscall()
    forced = interp.forced_syscall_result(SyscallKind.ACCEPT)
    if forced is not None:
        return concrete(forced)
    return concrete(env_fd)


@builtin("recv")
def _recv(interp, args, node) -> Value:
    fd = _int_arg(args, 0).concrete
    buffer = _pointer_arg(args, 1, node, "recv")
    requested = _int_arg(args, 2).concrete
    channel = _channel_for_fd(interp, fd)
    env_count, data = interp.kernel.sys_recv(fd, requested)
    interp.notify_syscall()
    count_value = _bind_count(interp, SyscallKind.RECV, channel, env_count, requested)
    count = count_value.concrete
    if count > 0:
        _fill_buffer(interp, buffer, channel, data, min(count, requested), node)
    return count_value


@builtin("send")
def _send(interp, args, node) -> Value:
    fd = _int_arg(args, 0).concrete
    buffer = _pointer_arg(args, 1, node, "send")
    count = _int_arg(args, 2).concrete
    data = array_to_bytes(buffer, count)
    result = interp.kernel.sys_send(fd, data)
    interp.notify_syscall()
    return concrete(result)


@builtin("send_str")
def _send_str(interp, args, node) -> Value:
    fd = _int_arg(args, 0).concrete
    text = array_to_string(_pointer_arg(args, 1, node, "send_str"))
    result = interp.kernel.sys_send(fd, text.encode("utf-8"))
    interp.notify_syscall()
    return concrete(result)
