"""Variable environments (scopes and call frames) for the interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.interp.values import Value, ZERO
from repro.lang.errors import RuntimeMiniCError


class Scope:
    """A single lexical scope mapping names to values."""

    __slots__ = ("bindings",)

    def __init__(self) -> None:
        self.bindings: Dict[str, Value] = {}

    def declare(self, name: str, value: Value) -> None:
        self.bindings[name] = value

    def has(self, name: str) -> bool:
        return name in self.bindings


class Frame:
    """One function invocation: a stack of scopes plus bookkeeping."""

    def __init__(self, function_name: str) -> None:
        self.function_name = function_name
        self.scopes: List[Scope] = [Scope()]
        self.return_value: Value = ZERO

    def push_scope(self) -> None:
        self.scopes.append(Scope())

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, value: Value) -> None:
        self.scopes[-1].declare(name, value)

    def lookup_scope(self, name: str) -> Optional[Scope]:
        for scope in reversed(self.scopes):
            if scope.has(name):
                return scope
        return None


class Environment:
    """Global variables plus the call stack."""

    def __init__(self) -> None:
        self.globals: Dict[str, Value] = {}
        self.frames: List[Frame] = []

    # -- frames ------------------------------------------------------------------

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    def push_frame(self, function_name: str) -> Frame:
        frame = Frame(function_name)
        self.frames.append(frame)
        return frame

    def pop_frame(self) -> Frame:
        return self.frames.pop()

    @property
    def call_depth(self) -> int:
        return len(self.frames)

    # -- variables ----------------------------------------------------------------

    def declare_local(self, name: str, value: Value) -> None:
        self.current_frame.declare(name, value)

    def declare_global(self, name: str, value: Value) -> None:
        self.globals[name] = value

    def get(self, name: str, line: int = 0) -> Value:
        if self.frames:
            scope = self.current_frame.lookup_scope(name)
            if scope is not None:
                return scope.bindings[name]
        if name in self.globals:
            return self.globals[name]
        raise RuntimeMiniCError(f"undefined variable '{name}'", line)

    def set(self, name: str, value: Value, line: int = 0) -> None:
        if self.frames:
            scope = self.current_frame.lookup_scope(name)
            if scope is not None:
                scope.bindings[name] = value
                return
        if name in self.globals:
            self.globals[name] = value
            return
        raise RuntimeMiniCError(f"assignment to undefined variable '{name}'", line)

    def is_defined(self, name: str) -> bool:
        if self.frames and self.current_frame.lookup_scope(name) is not None:
            return True
        return name in self.globals
