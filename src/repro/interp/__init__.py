"""The MiniC interpreter.

A single tree-walking interpreter serves every stage of the pipeline:

* **recording** at the simulated user site (values are plain integers, the
  branch logger observes instrumented branches),
* **dynamic analysis** (inputs carry symbolic expressions; the concolic engine
  observes path constraints),
* **replay** at the developer site (inputs are symbolic, concrete values come
  from the solver, the replay engine aborts runs that deviate from the
  recorded bitvector).

The interpreter always computes with :class:`~repro.interp.values.ConcolicValue`
objects; "concrete execution" is simply the case where no value carries a
symbolic expression.
"""

from repro.interp.backend import BACKENDS, Backend, create_backend
from repro.interp.builtins import BUILTIN_NAMES, INPUT_RETURNING_BUILTINS
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import ExecutionConfig, ExecutionResult, Interpreter
from repro.interp.tracer import BranchEvent, ExecutionHooks, NullHooks, TraceRecorder
from repro.interp.values import ArrayObject, ConcolicValue, Pointer

__all__ = [
    "ArrayObject",
    "BACKENDS",
    "BUILTIN_NAMES",
    "Backend",
    "BranchEvent",
    "ConcolicValue",
    "ExecutionConfig",
    "ExecutionHooks",
    "ExecutionMode",
    "ExecutionResult",
    "INPUT_RETURNING_BUILTINS",
    "InputBinder",
    "Interpreter",
    "NullHooks",
    "Pointer",
    "TraceRecorder",
    "create_backend",
]
