"""The execution-backend protocol and factory.

Two engines can execute a MiniC program run: the tree-walking
:class:`~repro.interp.interpreter.Interpreter` and the bytecode
:class:`~repro.vm.machine.VirtualMachine`.  Both satisfy the same
:class:`Backend` protocol — construct with ``(program, kernel, hooks, binder,
config)``, call :meth:`run`, observe identical events — so every pipeline
stage (recording, replay search, concolic analysis) is backend-agnostic.

:func:`create_backend` picks the engine from
:attr:`~repro.interp.interpreter.ExecutionConfig.backend`; the pipeline
threads :attr:`~repro.core.config.PipelineConfig.backend` into it.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.interp.inputs import InputBinder
from repro.interp.interpreter import ExecutionConfig, ExecutionResult, Interpreter
from repro.interp.tracer import ExecutionHooks
from repro.lang.program import Program
from repro.osmodel.kernel import Kernel
from repro.osmodel.syscalls import SyscallKind

#: The selectable execution backends.
BACKENDS = ("interp", "vm")


def compile_cache_stats() -> dict:
    """Hit/miss counters of the VM's ``(Program, plan)`` compiled-code cache.

    The replay engine's hundreds of re-runs must hit this cache after the
    first run of each plan; a miss-heavy profile means plans are being
    rebuilt with differing fingerprints.  Counters are process-wide.
    """

    from repro.vm.compiler import cache_stats

    return cache_stats()


@runtime_checkable
class Backend(Protocol):
    """What every execution engine exposes.

    Beyond :meth:`run`, the attributes listed here are relied on by the
    shared builtin functions (:mod:`repro.interp.builtins`), which receive
    the executing backend as their first argument.
    """

    program: Program
    kernel: Kernel
    hooks: ExecutionHooks
    binder: InputBinder
    config: ExecutionConfig

    def run(self, argv: Sequence[str]) -> ExecutionResult:
        """Execute ``main`` with *argv* and return the run summary."""

    def current_function_name(self) -> str:
        """Name of the function currently executing (``<global>`` outside)."""

    def notify_syscall(self) -> None:
        """Report newly recorded kernel syscalls to the hooks."""

    def forced_syscall_result(self, kind: SyscallKind) -> Optional[int]:
        """Next replay-logged result for *kind*, if a log is installed."""


def create_backend(program: Program, kernel: Optional[Kernel] = None,
                   hooks: Optional[ExecutionHooks] = None,
                   binder: Optional[InputBinder] = None,
                   config: Optional[ExecutionConfig] = None) -> Backend:
    """Build the execution engine selected by ``config.backend``."""

    config = config or ExecutionConfig()
    name = config.backend or "interp"
    if name == "vm":
        from repro.vm.machine import VirtualMachine

        return VirtualMachine(program, kernel=kernel, hooks=hooks,
                              binder=binder, config=config)
    if name != "interp":
        raise ValueError(f"unknown execution backend {name!r}; "
                         f"expected one of {BACKENDS}")
    return Interpreter(program, kernel=kernel, hooks=hooks,
                       binder=binder, config=config)
