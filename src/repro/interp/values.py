"""Runtime values for the MiniC interpreter.

The value model is deliberately small:

* :class:`ConcolicValue` — an integer with an optional symbolic expression
  attached.  All MiniC scalars (int, char) are ConcolicValues.
* :class:`ArrayObject` — a fixed-size block of cells.  Strings are arrays of
  character codes terminated by a 0 cell, exactly like C.
* :class:`Pointer` — a reference to a cell inside an :class:`ArrayObject`
  (block + offset).  The null pointer is represented by the integer 0, so
  ``p == 0`` behaves as in C.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.lang.errors import RuntimeMiniCError
from repro.symbolic.expr import SymBinOp, SymConst, SymExpr, SymUnOp
from repro.symbolic.simplify import simplify

_ARRAY_IDS = itertools.count(1)


@dataclass(frozen=True)
class ConcolicValue:
    """An integer value, optionally shadowed by a symbolic expression."""

    concrete: int
    symbolic: Optional[SymExpr] = None

    @property
    def is_symbolic(self) -> bool:
        return self.symbolic is not None

    def expr(self) -> SymExpr:
        """The symbolic expression for this value (a constant if concrete)."""

        return self.symbolic if self.symbolic is not None else SymConst(self.concrete)

    def truthy(self) -> bool:
        return self.concrete != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.symbolic is not None:
            return f"ConcolicValue({self.concrete}, {self.symbolic})"
        return f"ConcolicValue({self.concrete})"


ZERO = ConcolicValue(0)
ONE = ConcolicValue(1)


def concrete(value: int) -> ConcolicValue:
    """Build a purely concrete value."""

    return ConcolicValue(int(value))


class ArrayObject:
    """A block of mutable cells, each holding a runtime value."""

    __slots__ = ("array_id", "cells", "label")

    def __init__(self, size: int, label: str = "") -> None:
        self.array_id = next(_ARRAY_IDS)
        self.cells: List[Value] = [ZERO] * size
        self.label = label

    def __len__(self) -> int:
        return len(self.cells)

    def get(self, index: int) -> "Value":
        return self.cells[index]

    def set(self, index: int, value: "Value") -> None:
        self.cells[index] = value

    def in_bounds(self, index: int) -> bool:
        return 0 <= index < len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ArrayObject(#{self.array_id}, size={len(self.cells)}, {self.label!r})"


@dataclass(frozen=True)
class Pointer:
    """A pointer to a cell inside an :class:`ArrayObject`."""

    block: ArrayObject
    offset: int = 0

    def deref_index(self, extra: int = 0) -> int:
        return self.offset + extra

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.block, self.offset + delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Pointer(#{self.block.array_id}+{self.offset})"


Value = Union[ConcolicValue, Pointer]


def is_null(value: Value) -> bool:
    """True when the value is the C null pointer (integer 0)."""

    return isinstance(value, ConcolicValue) and value.concrete == 0


def as_int(value: Value) -> ConcolicValue:
    """Coerce a value to an integer ConcolicValue.

    Pointers coerce to a non-zero address-like integer; this is only used for
    truthiness and (in)equality against 0, never for arithmetic on addresses.
    """

    if isinstance(value, ConcolicValue):
        return value
    return ConcolicValue(value.block.array_id * 1_000_003 + value.offset + 1)


def string_to_array(text: Union[str, bytes], label: str = "") -> ArrayObject:
    """Build a NUL-terminated character array from Python text or bytes."""

    if isinstance(text, str):
        data = text.encode("utf-8")
    else:
        data = bytes(text)
    array = ArrayObject(len(data) + 1, label=label or "string")
    for index, byte in enumerate(data):
        array.cells[index] = ConcolicValue(byte)
    array.cells[len(data)] = ZERO
    return array


def array_to_string(pointer: Pointer, max_length: int = 1 << 16) -> str:
    """Read a NUL-terminated string starting at *pointer* (concrete bytes only)."""

    out: List[str] = []
    block, offset = pointer.block, pointer.offset
    for index in range(offset, min(len(block), offset + max_length)):
        cell = block.get(index)
        code = as_int(cell).concrete
        if code == 0:
            break
        out.append(chr(code & 0xFF))
    return "".join(out)


def array_to_bytes(pointer: Pointer, length: int) -> bytes:
    """Read *length* raw bytes starting at *pointer* (concrete parts only)."""

    block, offset = pointer.block, pointer.offset
    data = bytearray()
    for index in range(offset, min(len(block), offset + length)):
        data.append(as_int(block.get(index)).concrete & 0xFF)
    return bytes(data)


# ---------------------------------------------------------------------------
# Concolic arithmetic
# ---------------------------------------------------------------------------


def _combine(op: str, left: ConcolicValue, right: ConcolicValue,
             concrete_result: int) -> ConcolicValue:
    """Build the result value, propagating symbolic expressions when present."""

    if left.symbolic is None and right.symbolic is None:
        return ConcolicValue(concrete_result)
    expr = simplify(SymBinOp(op, left.expr(), right.expr()))
    return ConcolicValue(concrete_result, expr)


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


def binary_int_op(op: str, left: ConcolicValue, right: ConcolicValue) -> ConcolicValue:
    """Apply a binary operator to two integer values with concolic tracking.

    Division and modulo by zero raise ``ZeroDivisionError``; the interpreter
    converts that into a guest :class:`~repro.lang.errors.DivisionByZeroError`.
    """

    a, b = left.concrete, right.concrete
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op == "/":
        if b == 0:
            raise ZeroDivisionError("division by zero")
        result = _c_div(a, b)
    elif op == "%":
        if b == 0:
            raise ZeroDivisionError("modulo by zero")
        result = _c_mod(a, b)
    elif op == "<<":
        result = a << (b & 63)
    elif op == ">>":
        result = a >> (b & 63)
    elif op == "&":
        result = a & b
    elif op == "|":
        result = a | b
    elif op == "^":
        result = a ^ b
    elif op == "==":
        result = int(a == b)
    elif op == "!=":
        result = int(a != b)
    elif op == "<":
        result = int(a < b)
    elif op == "<=":
        result = int(a <= b)
    elif op == ">":
        result = int(a > b)
    elif op == ">=":
        result = int(a >= b)
    elif op == "&&":
        result = int(bool(a) and bool(b))
    elif op == "||":
        result = int(bool(a) or bool(b))
    else:
        raise ValueError(f"unsupported binary operator {op!r}")
    return _combine(op, left, right, result)


def unary_int_op(op: str, operand: ConcolicValue) -> ConcolicValue:
    """Apply a unary operator with concolic tracking."""

    if op == "-":
        result = -operand.concrete
    elif op == "!":
        result = int(not operand.concrete)
    elif op == "~":
        result = ~operand.concrete
    elif op == "+":
        return operand
    else:
        raise ValueError(f"unsupported unary operator {op!r}")
    if operand.symbolic is None:
        return ConcolicValue(result)
    if op == "+":
        return operand
    expr = simplify(SymUnOp(op, operand.expr()))
    return ConcolicValue(result, expr)


def compare_values(op: str, left: Value, right: Value) -> ConcolicValue:
    """Equality/relational comparison that also understands pointers."""

    if isinstance(left, Pointer) or isinstance(right, Pointer):
        return binary_int_op(op, as_int(left), as_int(right))
    return binary_int_op(op, left, right)


def pointer_binary_op(op: str, left: Value, right: Value, line: int = 0) -> Value:
    """Binary operation with at least one pointer operand.

    Shared by both execution backends so pointer semantics cannot drift:
    same-block comparisons compare offsets, mixed comparisons fall back to
    address-like integers, ``+``/``-`` move pointers, and pointer difference
    works within one block.
    """

    if op in ("==", "!=", "<", "<=", ">", ">="):
        if isinstance(left, Pointer) and isinstance(right, Pointer) \
                and left.block is right.block:
            return binary_int_op(op, concrete(left.offset), concrete(right.offset))
        return compare_values(op, left, right)
    if op == "+":
        if isinstance(left, Pointer) and isinstance(right, ConcolicValue):
            return left.moved(right.concrete)
        if isinstance(right, Pointer) and isinstance(left, ConcolicValue):
            return right.moved(left.concrete)
    if op == "-":
        if isinstance(left, Pointer) and isinstance(right, ConcolicValue):
            return left.moved(-right.concrete)
        if isinstance(left, Pointer) and isinstance(right, Pointer) \
                and left.block is right.block:
            return concrete(left.offset - right.offset)
    raise RuntimeMiniCError(f"unsupported pointer operation {op!r}", line)
