"""The MiniC tree-walking interpreter.

One interpreter instance executes one run of a program.  The interpreter:

* computes with :class:`~repro.interp.values.ConcolicValue` objects so the same
  code path serves concrete recording, dynamic analysis and replay;
* reports every branch execution and syscall to the installed
  :class:`~repro.interp.tracer.ExecutionHooks`;
* counts "instructions" (interpreter steps) so the instrumentation overhead
  model has a base cost to compare against;
* converts guest-level failures (out-of-bounds accesses, null dereferences,
  explicit ``crash()``/``abort()``/failed ``assert``) into a
  :class:`~repro.lang.errors.ProgramCrash` recorded in the
  :class:`ExecutionResult` — the simulated equivalent of the segfault that
  triggers a bug report in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.interp.builtins import lookup_builtin
from repro.interp.environment import Environment
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.tracer import BranchEvent, ExecutionHooks, NullHooks
from repro.interp.values import (
    ArrayObject,
    ConcolicValue,
    Pointer,
    Value,
    ZERO,
    as_int,
    binary_int_op,
    concrete,
    pointer_binary_op,
    string_to_array,
    unary_int_op,
)
from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    AssignExpr,
    BinaryOp,
    Block,
    Break,
    Call,
    CharLiteral,
    Continue,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Identifier,
    IfStmt,
    IntLiteral,
    ReturnStmt,
    Stmt,
    StringLiteral,
    TernaryOp,
    UnaryOp,
    VarDecl,
    WhileStmt,
)
from repro.lang.cfg import branch_location_for
from repro.lang.errors import (
    DivisionByZeroError,
    ExitProgram,
    ProgramCrash,
    RuntimeMiniCError,
    StepLimitExceeded,
)
from repro.lang.program import Program
from repro.osmodel.kernel import Kernel
from repro.osmodel.syscalls import SyscallKind
from repro.symbolic.expr import as_condition


class _ReturnSignal(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


@dataclass
class CrashSite:
    """Identity of a crash location: what the bug report pinpoints."""

    function: str
    line: int
    message: str = ""

    def same_location(self, other: "CrashSite") -> bool:
        return self.function == other.function and self.line == other.line


@dataclass
class ExecutionConfig:
    """Per-run execution limits and mode switches (backend-independent)."""

    mode: ExecutionMode = ExecutionMode.RECORD
    max_steps: int = 5_000_000
    max_call_depth: int = 256
    # Provider used during replay when syscall results were logged: given a
    # syscall kind, return the next recorded result (or None to fall through
    # to the symbolic model).
    syscall_result_provider: Optional[Callable[[SyscallKind], Optional[int]]] = None
    # Which execution engine runs the program: the tree-walking interpreter
    # ("interp") or the bytecode VM ("vm").  See repro.interp.backend.
    backend: str = "interp"
    # Allow the VM to run plan-specialized bytecode when the installed hooks
    # support it (BranchLogger / ReplayRunHooks).  Ignored by the interpreter;
    # disable to force the legacy one-BRANCH-opcode dispatch for comparison.
    specialize_plans: bool = True
    # Let the VM run register-allocated code: locals the static resolution
    # pass (repro.lang.resolve) can prove pure live in numbered frame slots
    # instead of the scope dict.  Ignored by the interpreter; disable to
    # force every local onto the named-cell path (the pre-slot VM) for
    # comparison benchmarks and differential tests.
    register_allocation: bool = True
    # Let the VM fuse ``BINOP_FF;BRANCH_*`` into one compare-and-branch
    # dispatch (the ``while (i < n)`` hot shape).  Ignored by the
    # interpreter; disable to emit the unfused pair for comparison.
    fuse_compare_branch: bool = True
    # Run the VM's per-opcode profiling dispatch loop: exact execution
    # counts per opcode, merged into the active repro.telemetry registry
    # after the run.  The profiled loop is generated mechanically from the
    # shipped loop's source (see repro.vm.machine), so with this off the VM
    # executes literally unmodified code.  Ignored by the interpreter.
    profile_opcodes: bool = False
    # Let the VM specialize int-typed slots: locals the resolver's type
    # lattice proves integer-only run on unboxed raw ints via the BINOP_II
    # opcode family, and generic sites that merely *look* int at runtime
    # are quickened in place after a short warm-up.  Guard violations
    # deoptimize the site back to its generic form, so every observable
    # (steps, events, crash sites) is identical with this on or off.
    # Requires register_allocation; ignored by the interpreter.
    specialize_ints: bool = True
    # Let the VM fuse profile-selected adjacent opcode pairs into
    # superinstructions (repro.vm.synth).  Observation-equivalent by
    # construction; disable to emit the unfused stream for comparison.
    synth_superinstructions: bool = True


@dataclass
class ExecutionResult:
    """Everything a single run produced."""

    exit_code: int = 0
    steps: int = 0
    branch_executions: int = 0
    symbolic_branch_executions: int = 0
    syscall_count: int = 0
    crashed: bool = False
    crash: Optional[CrashSite] = None
    step_limit_hit: bool = False
    stdout: str = ""
    wall_seconds: float = 0.0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def completed(self) -> bool:
        return not self.crashed and not self.step_limit_hit and not self.aborted


class AbortRun(Exception):
    """Raised by replay hooks when the run deviates from the recorded path."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "run aborted")
        self.reason = reason


#: Every guest-level exception a run can end with; both backends catch
#: exactly this tuple and classify with :func:`classify_run_exception`.
GUEST_EXCEPTIONS = (ExitProgram, DivisionByZeroError, RuntimeMiniCError, AbortRun)


def classify_run_exception(result: ExecutionResult, exc: Exception,
                           current_function: str) -> None:
    """Map a guest exception onto the :class:`ExecutionResult` fields.

    Shared by the interpreter and the VM so run classification (exit codes,
    crash sites, budget cutoffs, replay aborts) cannot drift between
    backends.  ``current_function`` is evaluated *after* stack unwinding, so
    crashes without an explicit function fall back to ``<global>`` on both.
    """

    if isinstance(exc, ExitProgram):
        result.exit_code = exc.code
    elif isinstance(exc, ProgramCrash):
        result.crashed = True
        result.crash = CrashSite(exc.function or current_function,
                                 exc.line, str(exc))
        result.exit_code = 139  # SIGSEGV analogue
    elif isinstance(exc, StepLimitExceeded):
        result.step_limit_hit = True
        result.exit_code = 124
    elif isinstance(exc, (DivisionByZeroError, RuntimeMiniCError)):
        result.crashed = True
        result.crash = CrashSite(current_function, getattr(exc, "line", 0),
                                 str(exc))
        result.exit_code = 139
    elif isinstance(exc, AbortRun):
        result.aborted = True
        result.abort_reason = exc.reason
    else:  # pragma: no cover - guarded by GUEST_EXCEPTIONS
        raise exc


def build_main_args(param_count: int, argv: List[str],
                    binder: InputBinder) -> List[Value]:
    """Marshal argv into guest values for ``main`` (shared by both backends).

    argv[0] is the program name (concrete); the bytes of argv[1..] are bound
    through the :class:`InputBinder` so they can be symbolic.
    """

    args: List[Value] = []
    if param_count >= 1:
        args.append(concrete(len(argv)))
    if param_count >= 2:
        argv_array = ArrayObject(len(argv) + 1, label="argv")
        for index, arg in enumerate(argv):
            argv_array.set(index, Pointer(_make_arg_array(binder, index, arg), 0))
        argv_array.set(len(argv), ZERO)
        args.append(Pointer(argv_array, 0))
    return args


def _make_arg_array(binder: InputBinder, index: int, text: str) -> ArrayObject:
    data = text.encode("utf-8")
    array = ArrayObject(len(data) + 1, label=f"argv[{index}]")
    if index == 0:
        for position, byte in enumerate(data):
            array.set(position, concrete(byte))
    else:
        channel = f"arg{index}"
        for position, byte in enumerate(data):
            name = f"{channel}_{position}"
            # argv bytes are structural: during replay their concrete values
            # come from the environment scaffold (which decides what is
            # blanked), not from the hidden user data.
            array.set(position, binder.bind_byte(name, byte, structural=True))
    array.set(len(data), ZERO)
    return array


class Interpreter:
    """Executes one MiniC program run."""

    def __init__(self, program: Program, kernel: Optional[Kernel] = None,
                 hooks: Optional[ExecutionHooks] = None,
                 binder: Optional[InputBinder] = None,
                 config: Optional[ExecutionConfig] = None) -> None:
        self.program = program
        self.kernel = kernel or Kernel()
        self.hooks = hooks or NullHooks()
        self.config = config or ExecutionConfig()
        self.binder = binder or InputBinder(mode=self.config.mode)
        self.env = Environment()
        self.steps = 0
        self.branch_counter = 0
        self.symbolic_branch_counter = 0
        self._string_cache: Dict[int, ArrayObject] = {}
        self._syscall_seen = 0

    # -- bookkeeping ------------------------------------------------------------

    def current_function_name(self) -> str:
        if self.env.frames:
            return self.env.current_frame.function_name
        return "<global>"

    def _step(self, node=None) -> None:
        self.steps += 1
        if self.steps > self.config.max_steps:
            raise StepLimitExceeded("interpreter step budget exhausted",
                                    getattr(node, "line", 0))

    def notify_syscall(self) -> None:
        """Report any newly recorded kernel syscalls to the hooks."""

        events = self.kernel.trace.events
        while self._syscall_seen < len(events):
            self.hooks.on_syscall(events[self._syscall_seen])
            self._syscall_seen += 1

    def forced_syscall_result(self, kind: SyscallKind) -> Optional[int]:
        """Ask the replay syscall log (if any) for the next result of *kind*."""

        provider = self.config.syscall_result_provider
        if provider is None:
            return None
        return provider(kind)

    # -- program entry ------------------------------------------------------------

    def run(self, argv: Sequence[str]) -> ExecutionResult:
        """Execute ``main`` with the given argv and return the run summary."""

        start = time.monotonic()
        result = ExecutionResult()
        try:
            self._init_globals()
            exit_value = self._call_main(list(argv))
            result.exit_code = as_int(exit_value).concrete
        except GUEST_EXCEPTIONS as exc:
            classify_run_exception(result, exc, self.current_function_name())
        result.steps = self.steps
        result.branch_executions = self.branch_counter
        result.symbolic_branch_executions = self.symbolic_branch_counter
        result.syscall_count = len(self.kernel.trace)
        result.stdout = self.kernel.stdout_text()
        result.wall_seconds = time.monotonic() - start
        return result

    def _init_globals(self) -> None:
        for global_decl in self.program.unit.globals:
            self._exec_vardecl(global_decl.decl, declare_global=True)

    def _call_main(self, argv: List[str]) -> Value:
        main = self.program.main
        args = build_main_args(len(main.params), argv, self.binder)
        return self._call_function(main, args, main)

    # -- functions -------------------------------------------------------------

    def _call_function(self, function: FunctionDef, args: List[Value], node) -> Value:
        if self.env.call_depth >= self.config.max_call_depth:
            raise ProgramCrash("call stack overflow", getattr(node, "line", 0),
                               self.current_function_name())
        self.env.push_frame(function.name)
        try:
            for index, param in enumerate(function.params):
                value = args[index] if index < len(args) else ZERO
                self.env.declare_local(param.name, value)
            try:
                self._exec_stmt(function.body)
            except _ReturnSignal as signal:
                return signal.value
            return ZERO
        finally:
            self.env.pop_frame()

    # -- statements --------------------------------------------------------------

    def _exec_stmt(self, stmt: Stmt) -> None:
        self._step(stmt)
        if isinstance(stmt, Block):
            self.env.current_frame.push_scope()
            try:
                for child in stmt.statements:
                    self._exec_stmt(child)
            finally:
                self.env.current_frame.pop_scope()
        elif isinstance(stmt, VarDecl):
            self._exec_vardecl(stmt)
        elif isinstance(stmt, Assign):
            value = self._eval(stmt.value)
            self._store(stmt.target, value)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._exec_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._exec_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._exec_for(stmt)
        elif isinstance(stmt, ReturnStmt):
            value = self._eval(stmt.value) if stmt.value is not None else ZERO
            raise _ReturnSignal(value)
        elif isinstance(stmt, Break):
            raise _BreakSignal()
        elif isinstance(stmt, Continue):
            raise _ContinueSignal()
        else:
            raise RuntimeMiniCError(f"unsupported statement {type(stmt).__name__}",
                                    getattr(stmt, "line", 0))

    def _exec_vardecl(self, decl: VarDecl, declare_global: bool = False) -> None:
        for declarator in decl.declarators:
            if declarator.is_array:
                size = 1
                if declarator.array_size is not None:
                    size = max(1, as_int(self._eval(declarator.array_size)).concrete)
                value: Value = Pointer(ArrayObject(size, label=declarator.name), 0)
            elif declarator.init is not None:
                value = self._eval(declarator.init)
            else:
                value = ZERO
            if declare_global:
                self.env.declare_global(declarator.name, value)
            else:
                self.env.declare_local(declarator.name, value)

    # -- branches -----------------------------------------------------------------

    def _evaluate_branch(self, stmt: Stmt, cond: Expr) -> bool:
        value = self._eval(cond)
        int_value = as_int(value)
        taken = int_value.concrete != 0
        symbolic = isinstance(value, ConcolicValue) and value.is_symbolic
        condition = None
        if symbolic:
            expr = as_condition(value.symbolic)
            condition = expr if taken else expr.negated()
        location = branch_location_for(self.current_function_name(), stmt)
        event = BranchEvent(location=location, taken=taken, symbolic=symbolic,
                            condition=condition, index=self.branch_counter)
        self.branch_counter += 1
        if symbolic:
            self.symbolic_branch_counter += 1
        self.hooks.on_branch(event)
        return taken

    def _exec_if(self, stmt: IfStmt) -> None:
        if self._evaluate_branch(stmt, stmt.cond):
            self._exec_stmt(stmt.then)
        elif stmt.otherwise is not None:
            self._exec_stmt(stmt.otherwise)

    def _exec_while(self, stmt: WhileStmt) -> None:
        while self._evaluate_branch(stmt, stmt.cond):
            try:
                self._exec_stmt(stmt.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_for(self, stmt: ForStmt) -> None:
        self.env.current_frame.push_scope()
        try:
            if stmt.init is not None:
                self._exec_stmt(stmt.init)
            while True:
                if stmt.cond is not None and not self._evaluate_branch(stmt, stmt.cond):
                    break
                try:
                    self._exec_stmt(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.update is not None:
                    self._exec_stmt(stmt.update)
        finally:
            self.env.current_frame.pop_scope()

    # -- lvalues ---------------------------------------------------------------------

    def _store(self, target: Expr, value: Value) -> None:
        if isinstance(target, Identifier):
            if self.env.is_defined(target.name):
                self.env.set(target.name, value, target.line)
            else:
                # C would reject this; MiniC treats it as an implicit local so
                # terse workload code stays readable.
                self.env.declare_local(target.name, value)
            return
        if isinstance(target, ArrayIndex):
            pointer, index = self._resolve_element(target)
            pointer.block.set(index, value)
            return
        if isinstance(target, UnaryOp) and target.op == "*":
            pointer = self._eval(target.operand)
            if not isinstance(pointer, Pointer):
                raise ProgramCrash("null or invalid pointer dereference",
                                   target.line, self.current_function_name())
            if not pointer.block.in_bounds(pointer.offset):
                raise ProgramCrash("pointer store out of bounds", target.line,
                                   self.current_function_name())
            pointer.block.set(pointer.offset, value)
            return
        raise RuntimeMiniCError("invalid assignment target", getattr(target, "line", 0))

    def _resolve_element(self, node: ArrayIndex) -> (Pointer, int):
        base = self._eval(node.base)
        index_value = as_int(self._eval(node.index)).concrete
        if not isinstance(base, Pointer):
            raise ProgramCrash("indexing a non-pointer value", node.line,
                               self.current_function_name())
        index = base.offset + index_value
        if not base.block.in_bounds(index):
            raise ProgramCrash(
                f"array index out of bounds ({index} not in 0..{len(base.block) - 1})",
                node.line, self.current_function_name())
        return base, index

    # -- expressions -------------------------------------------------------------------

    def _eval(self, node: Expr) -> Value:
        self._step(node)
        if isinstance(node, IntLiteral):
            return concrete(node.value)
        if isinstance(node, CharLiteral):
            return concrete(node.value)
        if isinstance(node, StringLiteral):
            cached = self._string_cache.get(node.node_id)
            if cached is None:
                cached = string_to_array(node.value, label="literal")
                self._string_cache[node.node_id] = cached
            return Pointer(cached, 0)
        if isinstance(node, Identifier):
            return self.env.get(node.name, node.line)
        if isinstance(node, ArrayIndex):
            pointer, index = self._resolve_element(node)
            return pointer.block.get(index)
        if isinstance(node, UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, BinaryOp):
            return self._eval_binary(node)
        if isinstance(node, TernaryOp):
            cond = as_int(self._eval(node.cond))
            return self._eval(node.then) if cond.concrete != 0 else self._eval(node.otherwise)
        if isinstance(node, AssignExpr):
            value = self._eval(node.value)
            self._store(node.target, value)
            return value
        if isinstance(node, Call):
            return self._eval_call(node)
        raise RuntimeMiniCError(f"unsupported expression {type(node).__name__}",
                                getattr(node, "line", 0))

    def _eval_unary(self, node: UnaryOp) -> Value:
        if node.op == "&":
            if isinstance(node.operand, ArrayIndex):
                pointer, index = self._resolve_element(node.operand)
                return Pointer(pointer.block, index)
            if isinstance(node.operand, Identifier):
                value = self.env.get(node.operand.name, node.line)
                if isinstance(value, Pointer):
                    return value
                # Taking the address of a scalar boxes it into a one-cell
                # array; writes through the pointer update the box, and the
                # variable is rebound to read through it as well.
                box = ArrayObject(1, label=f"&{node.operand.name}")
                box.set(0, value)
                boxed = Pointer(box, 0)
                self.env.set(node.operand.name, boxed, node.line)
                return boxed
            raise RuntimeMiniCError("cannot take the address of this expression",
                                    node.line)
        operand = self._eval(node.operand)
        if node.op == "*":
            if not isinstance(operand, Pointer):
                raise ProgramCrash("null or invalid pointer dereference",
                                   node.line, self.current_function_name())
            if not operand.block.in_bounds(operand.offset):
                raise ProgramCrash("pointer read out of bounds", node.line,
                                   self.current_function_name())
            return operand.block.get(operand.offset)
        if isinstance(operand, Pointer):
            if node.op == "!":
                return concrete(0)
            raise RuntimeMiniCError(f"unary {node.op!r} applied to a pointer", node.line)
        try:
            return unary_int_op(node.op, operand)
        except ZeroDivisionError:
            raise DivisionByZeroError("division by zero", node.line)

    def _eval_binary(self, node: BinaryOp) -> Value:
        if node.op == "&&":
            left = as_int(self._eval(node.left))
            if left.concrete == 0:
                # Short-circuit: the value of the conjunction is determined by
                # the (false) left operand, so the symbolic value of the whole
                # expression is the left condition itself.
                return ConcolicValue(0, as_condition(left.symbolic)
                                     if left.symbolic is not None else None)
            right = as_int(self._eval(node.right))
            return binary_int_op("&&", left, right)
        if node.op == "||":
            left = as_int(self._eval(node.left))
            if left.concrete != 0:
                return ConcolicValue(1, as_condition(left.symbolic)
                                     if left.symbolic is not None else None)
            right = as_int(self._eval(node.right))
            return binary_int_op("||", left, right)

        left = self._eval(node.left)
        right = self._eval(node.right)
        # Pointer arithmetic and comparisons.
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            return pointer_binary_op(node.op, left, right, node.line)
        try:
            return binary_int_op(node.op, left, right)
        except ZeroDivisionError:
            raise DivisionByZeroError("division by zero", node.line)

    def _eval_call(self, node: Call) -> Value:
        args = [self._eval(arg) for arg in node.args]
        function = self.program.functions.get(node.name)
        if function is not None:
            return self._call_function(function, args, node)
        builtin_fn = lookup_builtin(node.name)
        if builtin_fn is not None:
            return builtin_fn(self, args, node)
        raise RuntimeMiniCError(f"call to undefined function '{node.name}'", node.line)
