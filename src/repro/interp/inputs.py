"""Input binding: which bytes are symbolic, and what concrete value they take.

The same interpreter runs in three modes (the paper's three sites):

* ``RECORD`` — the user site.  Inputs are whatever the environment provides;
  nothing is symbolic.
* ``ANALYZE`` — pre-deployment dynamic analysis.  Inputs are symbolic; their
  concrete values come from the environment for the first run and from the
  constraint solver afterwards.
* ``REPLAY`` — the developer site.  Inputs are symbolic; their concrete values
  come from the solver, and the *actual* user data is never consulted (the
  binder substitutes a neutral default when no override exists), preserving the
  paper's privacy property.

The :class:`InputBinder` gives every input byte a stable name based on its
channel and offset (``arg1_0``, ``conn0_17``, ``file_/a.txt_3``, ``stdin_5``),
so constraints collected in one run can be solved and re-injected in the next.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.interp.values import ConcolicValue
from repro.symbolic.expr import SymVar, sym_var


class ExecutionMode(enum.Enum):
    """The three sites at which the instrumented program runs."""

    RECORD = "record"
    ANALYZE = "analyze"
    REPLAY = "replay"

    @property
    def symbolic_inputs(self) -> bool:
        return self is not ExecutionMode.RECORD

    @property
    def hides_environment_data(self) -> bool:
        """REPLAY must not look at real user input bytes."""

        return self is ExecutionMode.REPLAY


#: Default concrete value for a replayed input byte with no solver override.
_REPLAY_DEFAULT_BYTE = ord("A")


@dataclass
class InputBinder:
    """Creates symbolic variables for consumed input and tracks their values."""

    mode: ExecutionMode = ExecutionMode.RECORD
    overrides: Dict[str, int] = field(default_factory=dict)
    variables: Dict[str, SymVar] = field(default_factory=dict)
    concrete_values: Dict[str, int] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)

    # -- naming -------------------------------------------------------------------

    def next_index(self, channel: str) -> int:
        index = self._counters.get(channel, 0)
        self._counters[channel] = index + 1
        return index

    # -- binding -------------------------------------------------------------------

    def bind_byte(self, name: str, env_value: Optional[int],
                  structural: bool = False) -> ConcolicValue:
        """Bind one input byte.

        ``env_value`` is what the real environment would provide (or ``None``
        when the environment has nothing, e.g. reading past the end of the
        scripted request during replay with a solver-chosen longer length).

        ``structural`` marks bytes whose environment value comes from the
        replay *scaffold* rather than from private user data — argv bytes,
        whose blanking is decided by :meth:`~repro.environment.Environment.
        scaffold` (file-path arguments stay verbatim there).  Structural
        bytes consult ``env_value`` even in ``REPLAY`` mode; everything else
        (stdin, file and network contents) stays hidden.
        """

        return self._bind(name, env_value, lo=0, hi=255,
                          default=_REPLAY_DEFAULT_BYTE, structural=structural)

    def bind_int(self, name: str, env_value: Optional[int], lo: int, hi: int,
                 default: Optional[int] = None) -> ConcolicValue:
        """Bind an integer-valued input (e.g. a syscall return value)."""

        if default is None:
            default = hi
        return self._bind(name, env_value, lo=lo, hi=hi, default=default)

    def _bind(self, name: str, env_value: Optional[int], lo: int, hi: int,
              default: int, structural: bool = False) -> ConcolicValue:
        if not self.mode.symbolic_inputs:
            value = env_value if env_value is not None else default
            return ConcolicValue(value)
        if name in self.overrides:
            value = self.overrides[name]
        elif env_value is None or (self.mode.hides_environment_data
                                   and not structural):
            value = default
        else:
            value = env_value
        value = max(lo, min(hi, value))
        var = self.variables.get(name)
        if var is None:
            var = sym_var(name, lo, hi)
            self.variables[name] = var
        self.concrete_values[name] = value
        return ConcolicValue(value, var)

    # -- introspection ----------------------------------------------------------------

    def assignment(self) -> Dict[str, int]:
        """The concrete values actually used for every bound input."""

        return dict(self.concrete_values)

    def all_variables(self) -> List[SymVar]:
        return list(self.variables.values())

    def merged_with(self, solution: Mapping[str, int]) -> Dict[str, int]:
        """Produce the override map for the *next* run: this run's values
        updated with the solver's solution."""

        merged = dict(self.concrete_values)
        merged.update(self.overrides)
        merged.update(solution)
        return merged
