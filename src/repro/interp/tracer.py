"""Execution hooks and trace recording.

The interpreter reports two kinds of events:

* every executed branch (its static :class:`BranchLocation`, the direction
  taken, whether the condition depended on symbolic input, and the symbolic
  condition for the direction actually taken), and
* every executed syscall (as a :class:`~repro.osmodel.syscalls.SyscallEvent`).

Different pipeline stages plug in different hook implementations: the branch
logger during recording, the concolic engine during dynamic analysis, and the
replay engine during bug reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang.cfg import BranchLocation
from repro.osmodel.syscalls import SyscallEvent
from repro.symbolic.expr import SymExpr


@dataclass
class BranchEvent:
    """One dynamic execution of a branch location."""

    location: BranchLocation
    taken: bool
    symbolic: bool
    condition: Optional[SymExpr]
    """The path condition for the direction actually taken (``None`` when the
    condition did not depend on input)."""

    index: int = 0
    """Sequence number of this branch execution within the run."""


class ExecutionHooks:
    """Interface observed by the interpreter.  All methods are optional."""

    def on_branch(self, event: BranchEvent) -> None:
        """Called after every branch evaluation (before the body executes)."""

    def on_syscall(self, event: SyscallEvent) -> None:
        """Called after every syscall the guest performs."""

    def on_step(self, count: int = 1) -> None:
        """Called periodically with the number of interpreter steps executed."""


class NullHooks(ExecutionHooks):
    """Hooks that ignore every event (plain execution)."""


class TraceRecorder(ExecutionHooks):
    """Hooks that remember every branch event and per-location statistics.

    This is what the branch-behaviour experiments (the paper's Figures 1
    and 3) use: for every branch *location* it records how many times it
    executed and how many of those executions had a symbolic condition.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.events: List[BranchEvent] = []
        self.executions: Dict[BranchLocation, int] = {}
        self.symbolic_executions: Dict[BranchLocation, int] = {}
        self.syscalls: List[SyscallEvent] = []
        self.total_branches = 0
        self.total_symbolic = 0

    def on_branch(self, event: BranchEvent) -> None:
        self.total_branches += 1
        self.executions[event.location] = self.executions.get(event.location, 0) + 1
        if event.symbolic:
            self.total_symbolic += 1
            self.symbolic_executions[event.location] = (
                self.symbolic_executions.get(event.location, 0) + 1)
        if self.keep_events:
            self.events.append(event)

    def on_syscall(self, event: SyscallEvent) -> None:
        self.syscalls.append(event)

    # -- derived statistics -------------------------------------------------------

    def visited_locations(self) -> List[BranchLocation]:
        return sorted(self.executions)

    def symbolic_locations(self) -> List[BranchLocation]:
        return sorted(self.symbolic_executions)

    def location_stats(self) -> List[Dict[str, object]]:
        """Per-location rows used by the Figure 1 / Figure 3 benchmarks."""

        rows = []
        for location in self.visited_locations():
            rows.append({
                "location": location.short(),
                "function": location.function,
                "line": location.line,
                "executions": self.executions[location],
                "symbolic_executions": self.symbolic_executions.get(location, 0),
            })
        return rows

    def mixed_locations(self) -> List[BranchLocation]:
        """Locations executed sometimes with symbolic and sometimes with
        concrete conditions — the paper observes these are rare."""

        mixed = []
        for location, count in self.executions.items():
            symbolic = self.symbolic_executions.get(location, 0)
            if 0 < symbolic < count:
                mixed.append(location)
        return sorted(mixed)


class CompositeHooks(ExecutionHooks):
    """Fan events out to several hook objects."""

    def __init__(self, *hooks: ExecutionHooks) -> None:
        self.hooks = [h for h in hooks if h is not None]

    def on_branch(self, event: BranchEvent) -> None:
        for hook in self.hooks:
            hook.on_branch(event)

    def on_syscall(self, event: SyscallEvent) -> None:
        for hook in self.hooks:
            hook.on_syscall(event)

    def on_step(self, count: int = 1) -> None:
        for hook in self.hooks:
            hook.on_step(count)
