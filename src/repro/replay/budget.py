"""Replay budget: how long the developer site is willing to search.

The paper gives every reproduction attempt one hour and reports ``∞`` when the
attempt does not finish.  The reproduction uses wall-clock seconds and a cap on
the number of concolic runs; benchmarks translate "budget exhausted" into the
paper's time-out marker.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReplayBudget:
    """Limits for one bug-reproduction attempt."""

    max_runs: int = 400
    max_seconds: float = 30.0
    max_steps_per_run: int = 2_000_000
    max_pending: int = 5_000

    @classmethod
    def generous(cls) -> "ReplayBudget":
        """A budget large enough for every experiment expected to succeed."""

        return cls(max_runs=2_000, max_seconds=120.0)

    @classmethod
    def quick(cls) -> "ReplayBudget":
        """A small budget used by unit tests."""

        return cls(max_runs=40, max_seconds=5.0)
