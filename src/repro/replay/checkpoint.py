"""On-disk search checkpoints: pause a replay search, resume it anywhere.

The commit discipline of :class:`~repro.replay.engine.ReplayEngine` makes
this cheap and exact: results are folded into the outcome in serial pop
order, so at every commit boundary the triple *(engine spec, pending set,
outcome-so-far)* fully determines the rest of the search.  A checkpoint is
that triple — plus the merged telemetry snapshot and the elapsed budget
clock — framed in the same versioned, CRC-checked section envelope as trace
files (magic ``REPROCKP`` instead of ``REPROTRC``) and written atomically
(tmp file, fsync, ``os.replace``).  Resuming from a checkpoint taken at
*any* commit index therefore reproduces a byte-identical explored set and
:class:`~repro.service.service.ReproductionReport` versus the uninterrupted
run; the differential tests in ``tests/test_checkpoint.py`` hold this for
every workload in the suite.

Corruption is loud: truncation, bit rot (CRC), a bad pickle or an unknown
version all raise :class:`CheckpointFormatError`.  The supervisor treats a
corrupt checkpoint as poison — the cluster is quarantined with the typed
error, never silently restarted into a possibly-wrong report.

Section bodies are pickles (the spec and pending items already cross
process-pool boundaries by pickle), so the envelope contributes the
integrity story — magic, version, length and checksum — while pickle
contributes fidelity.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

from repro.trace import TraceFormatError, _Writer, _Reader, \
    decode_envelope, encode_envelope

__all__ = [
    "CHECKPOINT_MAGIC", "CHECKPOINT_VERSION", "CheckpointError",
    "CheckpointFormatError", "CheckpointPolicy", "SearchCheckpoint",
    "dump_checkpoint_bytes", "load_checkpoint", "load_checkpoint_bytes",
    "save_checkpoint",
]

CHECKPOINT_MAGIC = b"REPROCKP"
CHECKPOINT_VERSION = 1

_SECTION_ORDER = (b"META", b"SPEC", b"PEND", b"OUTC", b"TELE")


class CheckpointError(Exception):
    """Base class for search-checkpoint failures."""


class CheckpointFormatError(CheckpointError):
    """The file is not a readable checkpoint (truncated, corrupt, bad pickle)."""


@dataclass
class CheckpointPolicy:
    """When and where a running engine checkpoints, and how it is observed.

    Attached to an engine with
    :meth:`~repro.replay.engine.ReplayEngine.attach_checkpointing`; the
    engine consults it once per committed item, so every field is a
    commit-boundary behaviour:

    * ``path`` — where snapshots land (atomic replace, last write wins);
    * ``every_commits`` — cadence; ``0`` disables periodic snapshots
      (preemption still writes one);
    * ``preempt_flag`` — a file whose existence asks the search to
      checkpoint and stop (the supervisor's cooperative preemption lever);
    * ``preempt_after_commits`` — deterministic self-preemption after
      exactly N commits (differential tests and the overhead experiment);
    * ``heartbeat_path`` — a file the engine touches per commit so a
      supervisor can tell a slow search from a wedged one;
    * ``fault_spec`` — a :class:`~repro.service.faults.FaultSpec` driving
      the seeded ``worker_kill`` / ``checkpoint_fail`` streams.
    """

    path: str = ""
    every_commits: int = 0
    preempt_flag: str = ""
    preempt_after_commits: int = 0
    heartbeat_path: str = ""
    fault_spec: Optional[Any] = None


@dataclass
class SearchCheckpoint:
    """Everything needed to continue a search from one commit boundary."""

    #: The picklable engine recipe (``ReplayEngine.to_spec()``).
    spec: Any
    #: Committed items so far — the commit index this snapshot pauses at.
    commits: int
    #: Budget clock already consumed; folded into ``max_seconds`` on resume.
    elapsed_seconds: float
    #: The live pending items, in list order (the search frontier).
    pending_items: List[Any] = field(default_factory=list)
    #: Every signature ever pushed — includes popped items, so resumed
    #: deduplication matches the uninterrupted run exactly.
    seen_signatures: Set[Tuple] = field(default_factory=set)
    dropped: int = 0
    duplicates: int = 0
    #: The outcome-so-far (a ``ReplayOutcome`` with telemetry stripped).
    outcome_state: Any = None
    #: Merged telemetry registry snapshot at the commit boundary, or None.
    telemetry: Optional[Any] = None


def _pickle(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _unpickle(body: bytes, what: str) -> Any:
    try:
        return pickle.loads(body)
    except Exception as exc:  # corrupt pickles raise a zoo of types
        raise CheckpointFormatError(
            f"corrupt {what} section in checkpoint: "
            f"{type(exc).__name__}: {exc}")


def dump_checkpoint_bytes(checkpoint: SearchCheckpoint) -> bytes:
    """Serialize *checkpoint* into the version-1 binary form."""

    meta = _Writer()
    meta.u64(checkpoint.commits)
    meta.u64(max(0, int(checkpoint.elapsed_seconds * 1_000_000)))
    meta.u64(len(checkpoint.pending_items))
    sections = {
        b"META": meta.getvalue(),
        b"SPEC": _pickle(checkpoint.spec),
        b"PEND": _pickle({
            "items": checkpoint.pending_items,
            "seen": checkpoint.seen_signatures,
            "dropped": checkpoint.dropped,
            "duplicates": checkpoint.duplicates,
        }),
        b"OUTC": _pickle(checkpoint.outcome_state),
        b"TELE": _pickle(checkpoint.telemetry),
    }
    return encode_envelope(CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                           sections, _SECTION_ORDER)


def load_checkpoint_bytes(data: bytes) -> SearchCheckpoint:
    """Decode a checkpoint; raises :class:`CheckpointFormatError` loudly."""

    try:
        sections = decode_envelope(data, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                                   what="checkpoint", require=_SECTION_ORDER)
    except TraceFormatError as exc:
        raise CheckpointFormatError(str(exc))
    meta = _Reader(sections[b"META"], "checkpoint META section")
    try:
        commits = meta.u64()
        elapsed = meta.u64() / 1_000_000.0
        meta.u64()  # pending count, informational
        meta.expect_end("checkpoint META section")
    except TraceFormatError as exc:
        raise CheckpointFormatError(str(exc))
    pend = _unpickle(sections[b"PEND"], "PEND")
    return SearchCheckpoint(
        spec=_unpickle(sections[b"SPEC"], "SPEC"),
        commits=commits,
        elapsed_seconds=elapsed,
        pending_items=pend["items"],
        seen_signatures=pend["seen"],
        dropped=pend["dropped"],
        duplicates=pend["duplicates"],
        outcome_state=_unpickle(sections[b"OUTC"], "OUTC"),
        telemetry=_unpickle(sections[b"TELE"], "TELE"),
    )


def save_checkpoint(path: str, checkpoint: SearchCheckpoint) -> str:
    """Atomically persist *checkpoint* at *path* (tmp, fsync, replace).

    A reader never observes a torn checkpoint: either the previous complete
    snapshot or this one.  Raises ``OSError`` on write failure — callers
    treat a failed checkpoint as lost work insurance, not a failed search.
    """

    data = dump_checkpoint_bytes(checkpoint)
    tmp = f"{path}.part"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str) -> SearchCheckpoint:
    """Read a checkpoint file; see :func:`load_checkpoint_bytes`."""

    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    return load_checkpoint_bytes(data)
