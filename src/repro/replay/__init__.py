"""Bug reproduction: bitvector-guided concolic replay (§3 of the paper).

Given the instrumentation plan (kept by the developer), the branch bitvector
and optional syscall-result log received with a bug report, and the crash site
from the report, the replay engine searches for a program input that drives
execution to the same crash.  The partial branch trace prunes the search: a
run is aborted as soon as it deviates from the recorded path, and alternatives
are explored through a pending list of constraint sets.

Long searches are interruptible: the engine checkpoints its frontier at
commit boundaries (:mod:`repro.replay.checkpoint`) and resumes — in another
process, on another worker, or after a service restart — with a
byte-identical explored set.
"""

from repro.replay.budget import ReplayBudget
from repro.replay.checkpoint import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointPolicy,
    SearchCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.replay.engine import (
    ReplayEngine,
    ReplayOutcome,
    WorkerCrashError,
)
from repro.replay.hooks import ReplayRunHooks, RunDeviation
from repro.replay.pending import PendingList, PendingItem

__all__ = [
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointPolicy",
    "PendingItem",
    "PendingList",
    "ReplayBudget",
    "ReplayEngine",
    "ReplayOutcome",
    "ReplayRunHooks",
    "RunDeviation",
    "SearchCheckpoint",
    "WorkerCrashError",
    "load_checkpoint",
    "save_checkpoint",
]
