"""The replay engine: searching for an input that reproduces the crash.

The engine repeatedly runs the program in ``REPLAY`` mode.  Each run is driven
by a concrete input assignment produced by the constraint solver; the
:class:`~repro.replay.hooks.ReplayRunHooks` compare the run against the
recorded bitvector and either let it reach the crash or abort it and schedule
alternative constraint sets on the pending list.  Reproduction succeeds when a
run crashes at the recorded crash site; the input assignment of that run is
the "set of inputs that activate the bug" the paper promises the developer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.environment import Environment
from repro.instrument.logger import BitvectorLog, SyscallResultLog
from repro.instrument.plan import InstrumentationPlan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import (
    CrashSite,
    ExecutionConfig,
    ExecutionResult,
)
from repro.lang.program import Program
from repro.osmodel.syscalls import SyscallKind
from repro.replay.budget import ReplayBudget
from repro.replay.hooks import ReplayRunHooks
from repro.replay.pending import PendingItem, PendingList
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.solver import solve


@dataclass
class ReplayRunRecord:
    """Summary of one replay run (kept for diagnostics and tests)."""

    index: int
    outcome: str  # "reproduced" | "aborted" | "finished" | "crashed-elsewhere" | "step-limit"
    consumed_bits: int
    constraints: int
    deviation: str = ""


@dataclass
class ReplayOutcome:
    """Result of a bug-reproduction attempt."""

    reproduced: bool
    runs: int = 0
    wall_seconds: float = 0.0
    timed_out: bool = False
    crash_site: Optional[CrashSite] = None
    found_input: Dict[str, int] = field(default_factory=dict)
    solver_calls: int = 0
    pending_stats: Dict[str, int] = field(default_factory=dict)
    run_records: List[ReplayRunRecord] = field(default_factory=list)
    symbolic_logged_locations: int = 0
    symbolic_logged_executions: int = 0
    symbolic_not_logged_locations: int = 0
    symbolic_not_logged_executions: int = 0

    @property
    def replay_time(self) -> float:
        """Replay time in seconds, the paper's Table 3/5/6 metric."""

        return self.wall_seconds

    def summary(self) -> str:
        status = "reproduced" if self.reproduced else (
            "timed out" if self.timed_out else "not reproduced")
        return (f"{status} after {self.runs} runs in {self.wall_seconds:.2f}s "
                f"({self.symbolic_not_logged_locations} unlogged symbolic locations)")


class ReplayEngine:
    """Searches for an input reproducing a recorded crash."""

    def __init__(self, program: Program, plan: InstrumentationPlan,
                 bitvector: BitvectorLog,
                 syscall_log: Optional[SyscallResultLog],
                 crash_site: Optional[CrashSite],
                 environment: Environment,
                 budget: Optional[ReplayBudget] = None,
                 search_order: str = "dfs",
                 require_full_log_match: bool = True,
                 backend: str = "interp") -> None:
        self.program = program
        self.plan = plan
        self.bitvector = bitvector
        self.syscall_log = syscall_log
        self.crash_site = crash_site
        self.environment = environment
        self.budget = budget or ReplayBudget()
        self.search_order = search_order
        self.backend = backend
        # When True (the default), a run only counts as a reproduction if it
        # crashes at the recorded site *and* its instrumented branch directions
        # match the recorded bitvector exactly.  This is what "finding the
        # direction of all branches taken so that they lead the execution to
        # the bug" means for externally-induced crashes (the uServer SIGSEGV
        # scenarios), where the crash location alone carries no information.
        self.require_full_log_match = require_full_log_match

    # -- public API -----------------------------------------------------------------------

    def reproduce(self) -> ReplayOutcome:
        """Run the guided search until the bug is reproduced or the budget ends."""

        start = time.monotonic()
        outcome = ReplayOutcome(reproduced=False)
        pending = PendingList(order=self.search_order, max_size=self.budget.max_pending)
        pending.push(PendingItem(ConstraintSet(), hint={}, reason="initial run"))

        while True:
            if outcome.runs >= self.budget.max_runs:
                outcome.timed_out = True
                break
            if time.monotonic() - start > self.budget.max_seconds:
                outcome.timed_out = True
                break
            item = pending.pop()
            if item is None:
                # Nothing left to explore: the search failed outright.
                break

            overrides = self._solve_item(item, outcome)
            if overrides is None:
                continue

            hooks, result, binder = self._run_once(overrides)
            record = self._classify_run(outcome.runs, hooks, result)
            outcome.runs += 1
            outcome.run_records.append(record)
            self._update_not_logged(outcome, hooks)

            if record.outcome == "reproduced":
                outcome.reproduced = True
                outcome.crash_site = result.crash
                outcome.found_input = binder.assignment()
                break

            # Merge the alternatives this run discovered.
            for constraints, reason in hooks.alternatives:
                pending.push(PendingItem(constraints=constraints,
                                         hint=binder.assignment(),
                                         depth=len(constraints),
                                         origin_run=outcome.runs,
                                         reason=reason))

        outcome.wall_seconds = time.monotonic() - start
        outcome.pending_stats = pending.stats()
        return outcome

    # -- internals --------------------------------------------------------------------------

    def _solve_item(self, item: PendingItem, outcome: ReplayOutcome) -> Optional[Dict[str, int]]:
        if len(item.constraints) == 0:
            return dict(item.hint)
        solution = solve(item.constraints, hint=item.hint)
        outcome.solver_calls += 1
        if not solution.satisfiable or solution.assignment is None:
            return None
        merged = dict(item.hint)
        merged.update(solution.assignment)
        return merged

    def _run_once(self, overrides: Dict[str, int]):
        kernel = self.environment.make_kernel()
        binder = InputBinder(mode=ExecutionMode.REPLAY, overrides=dict(overrides))
        hooks = ReplayRunHooks(self.plan, self.bitvector)
        provider = None
        if self.plan.log_syscalls and self.syscall_log is not None:
            cursor = self.syscall_log.cursor()

            def provider(kind: SyscallKind, _cursor=cursor) -> Optional[int]:
                return _cursor.next_result(kind)

        config = ExecutionConfig(mode=ExecutionMode.REPLAY,
                                 max_steps=self.budget.max_steps_per_run,
                                 syscall_result_provider=provider,
                                 backend=self.backend)
        executor = create_backend(self.program, kernel=kernel, hooks=hooks,
                                  binder=binder, config=config)
        result = executor.run(self.environment.argv)
        return hooks, result, binder

    def _classify_run(self, index: int, hooks: ReplayRunHooks,
                      result: ExecutionResult) -> ReplayRunRecord:
        deviation = hooks.deviation.kind if hooks.deviation else ""
        if result.aborted:
            outcome = "aborted"
        elif result.step_limit_hit:
            outcome = "step-limit"
        elif result.crashed and self._matches_crash(result):
            full_match = (hooks.deviation is None
                          and hooks.consumed_bits() == len(self.bitvector))
            if full_match or not self.require_full_log_match:
                outcome = "reproduced"
            else:
                outcome = "crashed-partial-match"
        elif result.crashed:
            outcome = "crashed-elsewhere"
        else:
            outcome = "finished"
        return ReplayRunRecord(index=index, outcome=outcome,
                               consumed_bits=hooks.consumed_bits(),
                               constraints=len(hooks.run_constraints),
                               deviation=deviation)

    def _matches_crash(self, result: ExecutionResult) -> bool:
        if result.crash is None:
            return False
        if self.crash_site is None:
            return True
        return result.crash.same_location(self.crash_site)

    @staticmethod
    def _update_not_logged(outcome: ReplayOutcome, hooks: ReplayRunHooks) -> None:
        outcome.symbolic_logged_locations = max(outcome.symbolic_logged_locations,
                                                len(hooks.symbolic_logged))
        outcome.symbolic_logged_executions = max(outcome.symbolic_logged_executions,
                                                 sum(hooks.symbolic_logged.values()))
        outcome.symbolic_not_logged_locations = max(outcome.symbolic_not_logged_locations,
                                                    len(hooks.symbolic_not_logged))
        outcome.symbolic_not_logged_executions = max(outcome.symbolic_not_logged_executions,
                                                     sum(hooks.symbolic_not_logged.values()))
