"""The replay engine: searching for an input that reproduces the crash.

The engine repeatedly runs the program in ``REPLAY`` mode.  Each run is driven
by a concrete input assignment produced by the constraint solver; the
:class:`~repro.replay.hooks.ReplayRunHooks` compare the run against the
recorded bitvector and either let it reach the crash or abort it and schedule
alternative constraint sets on the pending list.  Reproduction succeeds when a
run crashes at the recorded crash site; the input assignment of that run is
the "set of inputs that activate the bug" the paper promises the developer.

**Parallel search.**  With ``workers > 1`` the engine evaluates pending items
on a pool of threads, each thread running its own backend instance (kernel,
binder and hooks are per-run; compiled bytecode is immutable and shared).
Evaluating an item — solve its constraint set, run the program, collect the
run's alternatives — is a pure function of the item, so workers *speculate*
on the items at the head of the pending list while the engine commits results
strictly in the serial pop order.  The committed sequence of runs, the pushed
alternatives, the solver-call and run counters, and the explored pending set
are therefore byte-identical to the serial engine's; speculation only changes
wall-clock time.  (Under CPython's GIL almost every speculated item is later
committed from cache, so the wasted work is bounded by the items still
pending when the search stops.)
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.environment import Environment
from repro.instrument.logger import BitvectorLog, SyscallResultLog
from repro.instrument.plan import InstrumentationPlan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import (
    CrashSite,
    ExecutionConfig,
    ExecutionResult,
)
from repro.lang.program import Program
from repro.osmodel.syscalls import SyscallKind
from repro.replay.budget import ReplayBudget
from repro.replay.hooks import ReplayRunHooks
from repro.replay.pending import PendingItem, PendingList
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.solver import solve


@dataclass
class ReplayRunRecord:
    """Summary of one replay run (kept for diagnostics and tests)."""

    index: int
    outcome: str  # "reproduced" | "aborted" | "finished" | "crashed-elsewhere" | "step-limit"
    consumed_bits: int
    constraints: int
    deviation: str = ""


@dataclass
class ReplayOutcome:
    """Result of a bug-reproduction attempt."""

    reproduced: bool
    runs: int = 0
    wall_seconds: float = 0.0
    timed_out: bool = False
    crash_site: Optional[CrashSite] = None
    found_input: Dict[str, int] = field(default_factory=dict)
    solver_calls: int = 0
    pending_stats: Dict[str, int] = field(default_factory=dict)
    run_records: List[ReplayRunRecord] = field(default_factory=list)
    # Parallel-search telemetry (never part of the explored-set identity).
    workers: int = 1
    speculated_items: int = 0
    speculation_hits: int = 0
    symbolic_logged_locations: int = 0
    symbolic_logged_executions: int = 0
    symbolic_not_logged_locations: int = 0
    symbolic_not_logged_executions: int = 0

    @property
    def replay_time(self) -> float:
        """Replay time in seconds, the paper's Table 3/5/6 metric."""

        return self.wall_seconds

    def summary(self) -> str:
        status = "reproduced" if self.reproduced else (
            "timed out" if self.timed_out else "not reproduced")
        return (f"{status} after {self.runs} runs in {self.wall_seconds:.2f}s "
                f"({self.symbolic_not_logged_locations} unlogged symbolic locations)")


@dataclass
class _ItemEvaluation:
    """The outcome of evaluating one pending item (a pure function of it)."""

    solver_calls: int
    hooks: Optional[ReplayRunHooks]
    result: Optional[object]
    binder: Optional[InputBinder]


class ReplayEngine:
    """Searches for an input reproducing a recorded crash."""

    def __init__(self, program: Program, plan: InstrumentationPlan,
                 bitvector: BitvectorLog,
                 syscall_log: Optional[SyscallResultLog],
                 crash_site: Optional[CrashSite],
                 environment: Environment,
                 budget: Optional[ReplayBudget] = None,
                 search_order: str = "dfs",
                 require_full_log_match: bool = True,
                 backend: str = "interp",
                 workers: int = 1,
                 specialize_plans: bool = True) -> None:
        self.program = program
        self.plan = plan
        self.bitvector = bitvector
        self.syscall_log = syscall_log
        self.crash_site = crash_site
        self.environment = environment
        self.budget = budget or ReplayBudget()
        self.search_order = search_order
        self.backend = backend
        self.workers = max(1, int(workers))
        self.specialize_plans = specialize_plans
        # When True (the default), a run only counts as a reproduction if it
        # crashes at the recorded site *and* its instrumented branch directions
        # match the recorded bitvector exactly.  This is what "finding the
        # direction of all branches taken so that they lead the execution to
        # the bug" means for externally-induced crashes (the uServer SIGSEGV
        # scenarios), where the crash location alone carries no information.
        self.require_full_log_match = require_full_log_match

    # -- public API -----------------------------------------------------------------------

    def reproduce(self) -> ReplayOutcome:
        """Run the guided search until the bug is reproduced or the budget ends."""

        start = time.monotonic()
        outcome = ReplayOutcome(reproduced=False, workers=self.workers)
        pending = PendingList(order=self.search_order, max_size=self.budget.max_pending)
        pending.push(PendingItem(ConstraintSet(), hint={}, reason="initial run"))
        if self.workers > 1:
            self._search_parallel(outcome, pending, start)
        else:
            self._search_serial(outcome, pending, start)
        outcome.wall_seconds = time.monotonic() - start
        outcome.pending_stats = pending.stats()
        return outcome

    # -- the two search drivers ---------------------------------------------------------------

    def _search_serial(self, outcome: ReplayOutcome, pending: PendingList,
                       start: float) -> None:
        while not self._budget_exhausted(outcome, start):
            item = pending.pop()
            if item is None:
                # Nothing left to explore: the search failed outright.
                break
            if self._commit(outcome, pending, self._evaluate_item(item)):
                break

    def _search_parallel(self, outcome: ReplayOutcome, pending: PendingList,
                         start: float) -> None:
        """Speculative search: workers race ahead, commits follow serial order.

        Every pop either finds the item's evaluation already inflight (a
        speculation hit) or submits it on the spot; either way the result is
        committed before the next pop, so the pending list — and with it the
        pop order — evolves exactly as in :meth:`_search_serial`.
        """

        inflight: Dict[int, Tuple[PendingItem, object]] = {}
        pool = ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="replay-worker")
        try:
            while not self._budget_exhausted(outcome, start):
                item = pending.pop()
                if item is None:
                    break
                entry = inflight.pop(id(item), None)
                if entry is not None:
                    outcome.speculation_hits += 1
                    future = entry[1]
                else:
                    future = pool.submit(self._evaluate_item, item)
                # Keep idle workers busy on the likely-next items while the
                # committing thread waits for this one.
                self._speculate(pool, pending, inflight, outcome)
                if self._commit(outcome, pending, future.result()):
                    break
        finally:
            # Drop anything still queued, but wait for the runs already
            # executing: reproduce() must not leak worker threads that keep
            # burning CPU (and reading engine/solver state) after it returns.
            pool.shutdown(wait=True, cancel_futures=True)

    def _speculate(self, pool: ThreadPoolExecutor, pending: PendingList,
                   inflight: Dict[int, Tuple[PendingItem, object]],
                   outcome: ReplayOutcome) -> None:
        # Keep a small backlog beyond the worker count so a fast worker always
        # finds its next item queued.  The cap counts only *unfinished*
        # evaluations: under DFS, freshly pushed alternatives overtake items
        # speculated earlier, and those completed-but-not-yet-popped entries
        # (they stay in `inflight` as a results cache until their item is
        # popped) must not starve speculation on the new head of the list.
        # id() keys are safe because the map holds a reference to every
        # speculated item.
        cap = self.workers * 2
        active = sum(1 for _, future in inflight.values() if not future.done())
        if active < cap:
            for candidate in pending.peek(cap):
                key = id(candidate)
                if key in inflight:
                    continue
                inflight[key] = (candidate,
                                 pool.submit(self._evaluate_item, candidate))
                outcome.speculated_items += 1
                active += 1
                if active >= cap:
                    break
        # Bound the completed-results cache: under DFS fresh alternatives
        # overtake earlier speculations, whose finished evaluations (full run
        # state each) would otherwise stay pinned until their item is popped
        # — possibly for the whole search.  Evicting a done entry is safe:
        # _evaluate_item is pure, so a later pop just recomputes it.
        retain = max(32, self.workers * 8)
        if len(inflight) > retain:
            keep = {id(item) for item in pending.peek(retain)}
            for key in [k for k, (_, future) in inflight.items()
                        if future.done() and k not in keep]:
                if len(inflight) <= retain:
                    break
                del inflight[key]

    def _budget_exhausted(self, outcome: ReplayOutcome, start: float) -> bool:
        if (outcome.runs >= self.budget.max_runs
                or time.monotonic() - start > self.budget.max_seconds):
            outcome.timed_out = True
            return True
        return False

    # -- internals --------------------------------------------------------------------------

    def _evaluate_item(self, item: PendingItem) -> _ItemEvaluation:
        """Solve and run one pending item — pure, safe to run on any thread."""

        if len(item.constraints) == 0:
            overrides = dict(item.hint)
            solver_calls = 0
        else:
            solution = solve(item.constraints, hint=item.hint)
            solver_calls = 1
            if not solution.satisfiable or solution.assignment is None:
                return _ItemEvaluation(solver_calls, None, None, None)
            overrides = dict(item.hint)
            overrides.update(solution.assignment)
        hooks, result, binder = self._run_once(overrides)
        return _ItemEvaluation(solver_calls, hooks, result, binder)

    def _commit(self, outcome: ReplayOutcome, pending: PendingList,
                evaluation: _ItemEvaluation) -> bool:
        """Fold one evaluation into the outcome; True ends the search."""

        outcome.solver_calls += evaluation.solver_calls
        if evaluation.hooks is None:
            return False  # unsatisfiable constraint set: no run happened
        hooks, result, binder = evaluation.hooks, evaluation.result, evaluation.binder
        record = self._classify_run(outcome.runs, hooks, result)
        outcome.runs += 1
        outcome.run_records.append(record)
        self._update_not_logged(outcome, hooks)

        if record.outcome == "reproduced":
            outcome.reproduced = True
            outcome.crash_site = result.crash
            outcome.found_input = binder.assignment()
            return True

        # Merge the alternatives this run discovered.
        for constraints, reason in hooks.alternatives:
            pending.push(PendingItem(constraints=constraints,
                                     hint=binder.assignment(),
                                     depth=len(constraints),
                                     origin_run=outcome.runs,
                                     reason=reason))
        return False

    def _run_once(self, overrides: Dict[str, int]):
        kernel = self.environment.make_kernel()
        binder = InputBinder(mode=ExecutionMode.REPLAY, overrides=dict(overrides))
        hooks = ReplayRunHooks(self.plan, self.bitvector)
        provider = None
        if self.plan.log_syscalls and self.syscall_log is not None:
            cursor = self.syscall_log.cursor()
            # Kept for _classify_run: a full-log-match reproduction must also
            # have consumed the recorded syscall results completely.
            hooks.syscall_cursor = cursor

            def provider(kind: SyscallKind, _cursor=cursor) -> Optional[int]:
                return _cursor.next_result(kind)

        config = ExecutionConfig(mode=ExecutionMode.REPLAY,
                                 max_steps=self.budget.max_steps_per_run,
                                 syscall_result_provider=provider,
                                 backend=self.backend,
                                 specialize_plans=self.specialize_plans)
        executor = create_backend(self.program, kernel=kernel, hooks=hooks,
                                  binder=binder, config=config)
        result = executor.run(self.environment.argv)
        return hooks, result, binder

    def _classify_run(self, index: int, hooks: ReplayRunHooks,
                      result: ExecutionResult) -> ReplayRunRecord:
        deviation = hooks.deviation.kind if hooks.deviation else ""
        if result.aborted:
            outcome = "aborted"
        elif result.step_limit_hit:
            outcome = "step-limit"
        elif result.crashed and self._matches_crash(result):
            full_match = (hooks.deviation is None
                          and hooks.consumed_bits() == len(self.bitvector)
                          and self._syscall_log_consumed(hooks))
            if full_match or not self.require_full_log_match:
                outcome = "reproduced"
            else:
                outcome = "crashed-partial-match"
        elif result.crashed:
            outcome = "crashed-elsewhere"
        else:
            outcome = "finished"
        return ReplayRunRecord(index=index, outcome=outcome,
                               consumed_bits=hooks.consumed_bits(),
                               constraints=len(hooks.run_constraints),
                               deviation=deviation)

    def _syscall_log_consumed(self, hooks: ReplayRunHooks) -> bool:
        """Did the run replay every recorded syscall result?

        A sparsely instrumented plan can leave the bitvector too short to
        discriminate executions (the diff ``dynamic`` configuration logs
        almost nothing), but a run that took the recorded path performs the
        recorded I/O: leftover logged results mean the execution diverged on
        branches the plan did not log, so it is not a reproduction.
        """

        cursor = getattr(hooks, "syscall_cursor", None)
        if cursor is None or self.syscall_log is None:
            return True
        return all(cursor.remaining(kind) == 0
                   for kind in self.syscall_log.results)

    def _matches_crash(self, result: ExecutionResult) -> bool:
        if result.crash is None:
            return False
        if self.crash_site is None:
            return True
        return result.crash.same_location(self.crash_site)

    @staticmethod
    def _update_not_logged(outcome: ReplayOutcome, hooks: ReplayRunHooks) -> None:
        outcome.symbolic_logged_locations = max(outcome.symbolic_logged_locations,
                                                len(hooks.symbolic_logged))
        outcome.symbolic_logged_executions = max(outcome.symbolic_logged_executions,
                                                 sum(hooks.symbolic_logged.values()))
        outcome.symbolic_not_logged_locations = max(outcome.symbolic_not_logged_locations,
                                                    len(hooks.symbolic_not_logged))
        outcome.symbolic_not_logged_executions = max(outcome.symbolic_not_logged_executions,
                                                     sum(hooks.symbolic_not_logged.values()))
