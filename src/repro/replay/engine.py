"""The replay engine: searching for an input that reproduces the crash.

The engine repeatedly runs the program in ``REPLAY`` mode.  Each run is driven
by a concrete input assignment produced by the constraint solver; the
:class:`~repro.replay.hooks.ReplayRunHooks` compare the run against the
recorded bitvector and either let it reach the crash or abort it and schedule
alternative constraint sets on the pending list.  Reproduction succeeds when a
run crashes at the recorded crash site; the input assignment of that run is
the "set of inputs that activate the bug" the paper promises the developer.

**Parallel search.**  With ``workers > 1`` the engine evaluates pending items
on a pool of workers.  Evaluating an item — solve its constraint set, run the
program, collect the run's alternatives — is a pure function of the item and
the recording, so workers *speculate* on the items at the head of the pending
list while the engine commits results strictly in the serial pop order.  The
committed sequence of runs, the pushed alternatives, the solver-call and run
counters, and the explored pending set are therefore byte-identical to the
serial engine's; speculation only changes wall-clock time.

Two worker kinds share that commit discipline:

* ``worker_kind="thread"`` — a :class:`ThreadPoolExecutor`.  Cheap to spin
  up, but CPython's GIL serializes the actual interpretation, so the win is
  bounded (overlap of the small C-level portions).
* ``worker_kind="process"`` — a :class:`ProcessPoolExecutor`.  Each worker
  process rebuilds the engine from a pickled :class:`_EngineSpec` (program,
  plan, recorded logs, environment spec) and evaluates items in its own
  interpreter, so the search scales with cores.  Everything that crosses the
  process boundary — pending items in, :class:`_ItemEvaluation` summaries out
  — is plain picklable data, and the evaluation summaries are *distilled*
  (classification string, assignment, alternatives, counters) rather than
  live hook/interpreter state, which keeps the pickle payload small and the
  commit path identical for every worker kind.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.environment import Environment
from repro.instrument.logger import BitvectorLog, SyscallResultLog
from repro.instrument.plan import InstrumentationPlan
from repro.interp.backend import create_backend
from repro.interp.inputs import ExecutionMode, InputBinder
from repro.interp.interpreter import (
    CrashSite,
    ExecutionConfig,
    ExecutionResult,
)
from repro.lang.program import Program
from repro.osmodel.syscalls import SyscallKind
from repro.replay.budget import ReplayBudget
from repro.replay.hooks import ReplayRunHooks
from repro.replay.pending import PendingItem, PendingList
from repro.symbolic.constraints import ConstraintSet
from repro.symbolic.solver import solve, warm_start_assignment
from repro.telemetry import (
    MetricsRegistry,
    RegistrySnapshot,
    SECONDS_BUCKETS,
    scoped,
    span,
)
from repro.telemetry import runtime as telemetry_runtime
from repro.vm import compiler as vm_compiler

WORKER_KINDS = ("thread", "process")


class WorkerCrashError(RuntimeError):
    """A replay worker process died mid-search (SIGKILL, OOM, hard crash).

    The engine's process pool surfaces worker death as this typed error
    (instead of the raw :class:`BrokenProcessPool`) after recording
    ``replay.worker_deaths``; the service-side supervisor catches the same
    condition one level up and resumes the search from its last checkpoint.
    """


@dataclass
class ReplayRunRecord:
    """Summary of one replay run (kept for diagnostics and tests)."""

    index: int
    outcome: str  # "reproduced" | "aborted" | "finished" | "crashed-elsewhere" | "step-limit"
    consumed_bits: int
    constraints: int
    deviation: str = ""


@dataclass
class ReplayOutcome:
    """Result of a bug-reproduction attempt."""

    reproduced: bool
    runs: int = 0
    wall_seconds: float = 0.0
    timed_out: bool = False
    crash_site: Optional[CrashSite] = None
    found_input: Dict[str, int] = field(default_factory=dict)
    solver_calls: int = 0
    pending_stats: Dict[str, int] = field(default_factory=dict)
    run_records: List[ReplayRunRecord] = field(default_factory=list)
    # Aggregated worker-side counters.  All of these fold in *committed*
    # evaluations only, so they are identical for workers=1, thread workers
    # and process workers (compile-cache hits/misses additionally depend on
    # per-process cache warmth — see ``compile_cache_lookups`` below for the
    # mode-independent total).
    warm_start_hits: int = 0
    solver_nodes: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    # Parallel-search telemetry (never part of the explored-set identity).
    workers: int = 1
    worker_kind: str = "thread"
    speculated_items: int = 0
    speculation_hits: int = 0
    symbolic_logged_locations: int = 0
    symbolic_logged_executions: int = 0
    symbolic_not_logged_locations: int = 0
    symbolic_not_logged_executions: int = 0
    # Checkpoint/preemption lifecycle (never part of the explored-set
    # identity).  ``committed_items`` counts committed evaluations —
    # including unsatisfiable ones that never ran — and is the commit index
    # checkpoints are taken at.  A ``preempted`` outcome is a *pause*, not a
    # result: its checkpoint resumes to the identical final outcome.
    committed_items: int = 0
    preempted: bool = False
    resumed: bool = False
    # Metrics recorded during the search when the engine runs with
    # ``telemetry=True``; ``None`` otherwise.  Timing-marked metrics (wall
    # clocks, per-process cache warmth, speculation) are excluded from
    # ``telemetry.deterministic()``, whose canonical bytes are identical for
    # every worker count and kind.
    telemetry: Optional[RegistrySnapshot] = None

    @property
    def replay_time(self) -> float:
        """Replay time in seconds, the paper's Table 3/5/6 metric."""

        return self.wall_seconds

    @property
    def compile_cache_lookups(self) -> int:
        """Compiled-code cache lookups by committed runs (hits + misses).

        Unlike the hit/miss split — every worker process warms its own cache,
        so process workers report more misses than a serial search — the
        lookup total is a pure function of the committed run sequence and is
        byte-identical across worker counts and kinds.
        """

        return self.compile_cache_hits + self.compile_cache_misses

    def stats(self) -> Dict[str, int]:
        """Aggregated counters, one flat map.

        .. deprecated:: 0.4
            Thin shim over the :mod:`repro.telemetry` registry — these
            counters now live on :attr:`telemetry` (``replay.*`` names) when
            the engine runs with telemetry enabled.  Kept so pre-telemetry
            callers (benchmarks, service reports) keep working; the keys and
            values are identical with telemetry on or off.
        """

        return {
            "runs": self.runs,
            "solver_calls": self.solver_calls,
            "solver_nodes": self.solver_nodes,
            "warm_start_hits": self.warm_start_hits,
            "compile_cache_lookups": self.compile_cache_lookups,
            "compile_cache_hits": self.compile_cache_hits,
            "compile_cache_misses": self.compile_cache_misses,
            "speculated_items": self.speculated_items,
            "speculation_hits": self.speculation_hits,
            "workers": self.workers,
        }

    def summary(self) -> str:
        status = "reproduced" if self.reproduced else (
            "timed out" if self.timed_out else "not reproduced")
        return (f"{status} after {self.runs} runs in {self.wall_seconds:.2f}s "
                f"({self.symbolic_not_logged_locations} unlogged symbolic locations)")


@dataclass
class _ItemEvaluation:
    """The distilled outcome of evaluating one pending item.

    A pure function of the item and the recording, and **plain picklable
    data**: process workers return exactly this object, and the engine's
    commit path cannot tell (or care) where an evaluation was computed.
    """

    solver_calls: int
    ran: bool = False
    outcome: str = ""
    consumed_bits: int = 0
    constraints: int = 0
    deviation: str = ""
    assignment: Dict[str, int] = field(default_factory=dict)
    alternatives: List[Tuple[ConstraintSet, str]] = field(default_factory=list)
    crash: Optional[CrashSite] = None
    symbolic_logged_locations: int = 0
    symbolic_logged_executions: int = 0
    symbolic_not_logged_locations: int = 0
    symbolic_not_logged_executions: int = 0
    warm_start: bool = False
    solver_nodes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Snapshot of the per-item metrics registry (worker-side VM opcode
    # counts, item histograms, solver/compile-cache timings).  Picklable —
    # process workers ship it home like every other field — and merged into
    # the engine registry at commit time, in serial pop order.
    telemetry: Optional[RegistrySnapshot] = None


@dataclass
class _EngineSpec:
    """A picklable recipe for rebuilding a serial engine in a worker process.

    The recorded bitvector travels packed (``BitvectorLog.to_bytes``), the
    environment as a :class:`~repro.trace.EnvironmentSpec`, and the program as
    a cache-stripped clone (compiled-code caches are per-process anyway); the
    plan keeps its branch sets but drops analysis metadata.
    """

    program: Program
    plan: InstrumentationPlan
    bits: bytes
    bit_count: int
    syscall_log: Optional[SyscallResultLog]
    crash_site: Optional[CrashSite]
    environment_spec: "object"  # EnvironmentSpec (import cycle avoided)
    budget: ReplayBudget
    search_order: str
    require_full_log_match: bool
    backend: str
    specialize_plans: bool
    register_allocation: bool
    fuse_compare_branch: bool
    specialize_ints: bool
    synth_superinstructions: bool
    max_call_depth: int
    warm_start: bool
    telemetry: bool = False
    profile_opcodes: bool = False

    def build_engine(self) -> "ReplayEngine":
        return ReplayEngine(
            program=self.program,
            plan=self.plan,
            bitvector=BitvectorLog.from_bytes(self.bits, self.bit_count),
            syscall_log=self.syscall_log,
            crash_site=self.crash_site,
            environment=self.environment_spec.to_environment(),
            budget=self.budget,
            search_order=self.search_order,
            require_full_log_match=self.require_full_log_match,
            backend=self.backend,
            workers=1,
            specialize_plans=self.specialize_plans,
            register_allocation=self.register_allocation,
            fuse_compare_branch=self.fuse_compare_branch,
            specialize_ints=self.specialize_ints,
            synth_superinstructions=self.synth_superinstructions,
            max_call_depth=self.max_call_depth,
            warm_start=self.warm_start,
            telemetry=self.telemetry,
            profile_opcodes=self.profile_opcodes,
        )


#: The per-process engine a pool worker evaluates items against.  Set once by
#: the pool initializer; worker processes are single-threaded, so a plain
#: global is safe.
_WORKER_ENGINE: Optional["ReplayEngine"] = None


def _process_worker_init(spec: _EngineSpec) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = spec.build_engine()


def _process_worker_evaluate(item: PendingItem) -> _ItemEvaluation:
    assert _WORKER_ENGINE is not None, "worker used before initialization"
    return _WORKER_ENGINE._evaluate_item(item)


class ReplayEngine:
    """Searches for an input reproducing a recorded crash."""

    def __init__(self, program: Program, plan: InstrumentationPlan,
                 bitvector: BitvectorLog,
                 syscall_log: Optional[SyscallResultLog],
                 crash_site: Optional[CrashSite],
                 environment: Environment,
                 budget: Optional[ReplayBudget] = None,
                 search_order: str = "dfs",
                 require_full_log_match: bool = True,
                 backend: str = "interp",
                 workers: int = 1,
                 worker_kind: str = "thread",
                 specialize_plans: bool = True,
                 register_allocation: bool = True,
                 fuse_compare_branch: bool = True,
                 specialize_ints: bool = True,
                 synth_superinstructions: bool = True,
                 max_call_depth: int = 256,
                 warm_start: bool = True,
                 telemetry: bool = False,
                 profile_opcodes: bool = False) -> None:
        if worker_kind not in WORKER_KINDS:
            raise ValueError(f"worker_kind must be one of {WORKER_KINDS}")
        self.program = program
        self.plan = plan
        self.bitvector = bitvector
        self.syscall_log = syscall_log
        self.crash_site = crash_site
        self.environment = environment
        self.budget = budget or ReplayBudget()
        self.search_order = search_order
        self.backend = backend
        self.workers = max(1, int(workers))
        self.worker_kind = worker_kind
        self.specialize_plans = specialize_plans
        self.register_allocation = register_allocation
        self.fuse_compare_branch = fuse_compare_branch
        self.specialize_ints = specialize_ints
        self.synth_superinstructions = synth_superinstructions
        self.max_call_depth = max_call_depth
        self.warm_start = warm_start
        # Telemetry never affects the explored search tree; profiling opcodes
        # only makes sense with somewhere to publish the counts, so the VM
        # profiler is gated on both knobs.
        self.telemetry = telemetry
        self.profile_opcodes = profile_opcodes
        self._registry: Optional[MetricsRegistry] = None
        # Checkpoint/preemption state.  A policy is attached after
        # construction (attach_checkpointing); a resume source is installed
        # by from_checkpoint.  All of it is consulted only at commit
        # boundaries, so the explored set stays a pure function of the
        # committed sequence.
        self._ckpt_policy = None
        self._resume = None
        self._preempt = threading.Event()
        self._commits = 0
        self._elapsed_prior = 0.0
        self._fault_injector_cache = None
        self._live_state: Optional[Tuple[ReplayOutcome, PendingList, float]] = None
        # When True (the default), a run only counts as a reproduction if it
        # crashes at the recorded site *and* its instrumented branch directions
        # match the recorded bitvector exactly.  This is what "finding the
        # direction of all branches taken so that they lead the execution to
        # the bug" means for externally-induced crashes (the uServer SIGSEGV
        # scenarios), where the crash location alone carries no information.
        self.require_full_log_match = require_full_log_match

    # -- construction from a persisted trace ------------------------------------------------

    @classmethod
    def from_trace(cls, program: Program, trace, *,
                   expect_plan: Optional[InstrumentationPlan] = None,
                   **kwargs) -> "ReplayEngine":
        """Build an engine from a loaded :class:`~repro.trace.Trace`.

        This is the developer half of the paper's user/developer split: the
        trace carries the recording and the input scaffold; *program* is the
        developer's copy of the binary.  The matched-binaries assumption is
        enforced twice — against *expect_plan* when the caller supplies the
        plan their build uses, and always against the program's own branch
        locations (a trace recorded from a different program cannot line up).
        """

        from repro.trace import TraceFingerprintMismatch, verify_fingerprint

        if expect_plan is not None:
            verify_fingerprint(trace, expect_plan)
        known = set(program.branch_locations)
        unknown = [loc for loc in sorted(trace.plan.instrumented)
                   if loc not in known]
        if unknown:
            raise TraceFingerprintMismatch(
                "trace instruments branch locations this program does not "
                f"have (first few: {[loc.short() for loc in unknown[:3]]}); "
                "record and replay must use matched binaries")
        return cls(program=program, plan=trace.plan, bitvector=trace.bitvector,
                   syscall_log=trace.syscall_log if trace.plan.log_syscalls else None,
                   crash_site=trace.crash_site, environment=trace.environment(),
                   **kwargs)

    @classmethod
    def from_checkpoint(cls, source, policy=None) -> "ReplayEngine":
        """Rebuild an engine that continues a checkpointed search.

        *source* is a checkpoint path or a loaded
        :class:`~repro.replay.checkpoint.SearchCheckpoint`.  The returned
        engine's :meth:`reproduce` restores the pending set, the
        outcome-so-far, the merged telemetry and the consumed budget clock,
        then continues from the saved commit boundary — producing a
        byte-identical explored set and report versus the uninterrupted run.
        Corrupt checkpoints raise
        :class:`~repro.replay.checkpoint.CheckpointFormatError` here, before
        any search work happens.
        """

        from repro.replay.checkpoint import SearchCheckpoint, load_checkpoint

        ckpt = source if isinstance(source, SearchCheckpoint) \
            else load_checkpoint(source)
        engine = ckpt.spec.build_engine()
        engine._resume = ckpt
        if policy is not None:
            engine.attach_checkpointing(policy)
        return engine

    # -- public API -----------------------------------------------------------------------

    def attach_checkpointing(self, policy) -> None:
        """Install a :class:`~repro.replay.checkpoint.CheckpointPolicy`.

        Kept out of the constructor: checkpointing is an operational concern
        layered onto an engine (by the supervisor, a test, or the overhead
        experiment), not part of the search definition a spec pickles.
        """

        self._ckpt_policy = policy
        self._fault_injector_cache = None

    def request_preempt(self) -> None:
        """Ask the running search to checkpoint and stop at the next commit."""

        self._preempt.set()

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Write the current search state to *path* (or the policy path).

        Only meaningful while a search is live (between commits, or from
        another thread while the committing thread waits on a worker);
        raises :class:`~repro.replay.checkpoint.CheckpointError` otherwise.
        """

        from repro.replay.checkpoint import CheckpointError, save_checkpoint

        if self._live_state is None:
            raise CheckpointError("no search is running; checkpoint() only "
                                  "captures a live search between commits")
        outcome, pending, start = self._live_state
        target = path or (self._ckpt_policy.path if self._ckpt_policy else "")
        if not target:
            raise CheckpointError("no checkpoint path: pass one or attach a "
                                  "CheckpointPolicy with a path")
        return save_checkpoint(target, self._make_checkpoint(outcome, pending, start))

    def reproduce(self) -> ReplayOutcome:
        """Run the guided search until the bug is reproduced or the budget ends."""

        start = time.monotonic()
        outcome, pending = self._initial_state()
        if self.telemetry:
            self._registry = MetricsRegistry()
            if self._resume is not None and self._resume.telemetry is not None:
                # Resume with the checkpointed metrics so the final merged
                # registry equals the uninterrupted run's.
                self._registry.merge_snapshot(self._resume.telemetry)
            # The committing thread runs under the engine registry so the
            # replay.search span (and any commit-side instrumentation) lands
            # there; per-item metrics use their own scoped registries and
            # merge at commit time.
            with scoped(self._registry):
                with span("replay.search", order=self.search_order,
                          workers=self.workers, kind=self.worker_kind):
                    self._run_search(outcome, pending, start)
        else:
            self._registry = None
            self._run_search(outcome, pending, start)
        outcome.wall_seconds = self._elapsed_prior + time.monotonic() - start
        outcome.pending_stats = pending.stats()
        if self._registry is not None:
            self._finalize_telemetry(outcome)
        return outcome

    def _initial_state(self) -> Tuple[ReplayOutcome, PendingList]:
        """A fresh search frontier, or the one a checkpoint paused at."""

        pending = PendingList(order=self.search_order,
                              max_size=self.budget.max_pending)
        if self._resume is None:
            outcome = ReplayOutcome(reproduced=False, workers=self.workers,
                                    worker_kind=self.worker_kind)
            pending.push(PendingItem(ConstraintSet(), hint={}, reason="initial run"))
            return outcome, pending
        ckpt = self._resume
        outcome = dataclasses.replace(
            ckpt.outcome_state,
            found_input=dict(ckpt.outcome_state.found_input),
            pending_stats=dict(ckpt.outcome_state.pending_stats),
            run_records=list(ckpt.outcome_state.run_records),
            telemetry=None,
            workers=self.workers,
            worker_kind=self.worker_kind,
            preempted=False,
            resumed=True)
        pending._items = list(ckpt.pending_items)
        pending._seen = set(ckpt.seen_signatures)
        pending.dropped = ckpt.dropped
        pending.duplicates = ckpt.duplicates
        self._commits = ckpt.commits
        self._elapsed_prior = ckpt.elapsed_seconds
        return outcome, pending

    def _run_search(self, outcome: ReplayOutcome, pending: PendingList,
                    start: float) -> None:
        self._live_state = (outcome, pending, start)
        try:
            if self.workers > 1:
                self._search_parallel(outcome, pending, start)
            else:
                self._search_serial(outcome, pending, start)
        finally:
            self._live_state = None

    def _finalize_telemetry(self, outcome: ReplayOutcome) -> None:
        """Record search-level metrics and snapshot the engine registry.

        Everything deterministic here is a pure function of the committed run
        sequence; per-machine facts (worker count/kind, speculation, wall
        clocks) are timing-marked so ``deterministic()`` drops them.  A
        *preempted* outcome is a pause, not a result: the final counters are
        skipped (the resumed run records them once, at the true end), so the
        deterministic snapshot of the resumed run equals the uninterrupted
        run's byte for byte.
        """

        registry = self._registry
        assert registry is not None
        if not outcome.preempted:
            registry.counter("replay.reproduced").inc(
                1 if outcome.reproduced else 0)
            registry.counter("replay.timed_out").inc(1 if outcome.timed_out else 0)
            for name, value in outcome.pending_stats.items():
                registry.counter(f"replay.pending.{name}").inc(value)
        else:
            registry.counter("replay.preempted", timing=True).inc()
        if outcome.resumed:
            registry.counter("replay.checkpoint.resumes", timing=True).inc()
        registry.gauge("replay.workers", timing=True).set(self.workers)
        registry.counter("replay.speculated_items", timing=True).inc(
            outcome.speculated_items)
        registry.counter("replay.speculation_hits", timing=True).inc(
            outcome.speculation_hits)
        outcome.telemetry = registry.snapshot()

    # -- the two search drivers ---------------------------------------------------------------

    def _search_serial(self, outcome: ReplayOutcome, pending: PendingList,
                       start: float) -> None:
        while not self._budget_exhausted(outcome, start):
            item = pending.pop()
            if item is None:
                # Nothing left to explore: the search failed outright.
                break
            if self._commit(outcome, pending, self._evaluate_item(item)):
                break
            if self._post_commit(outcome, pending, start):
                break

    def _make_pool(self) -> Tuple[object, Callable[[PendingItem], "object"]]:
        """The executor plus an item-submission closure for the worker kind."""

        if self.worker_kind == "process":
            pool = ProcessPoolExecutor(max_workers=self.workers,
                                       initializer=_process_worker_init,
                                       initargs=(self._engine_spec(),))
            return pool, lambda item: pool.submit(_process_worker_evaluate, item)
        pool = ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="replay-worker")
        return pool, lambda item: pool.submit(self._evaluate_item, item)

    def to_spec(self) -> "_EngineSpec":
        """A picklable recipe that rebuilds this engine (serially) elsewhere.

        The public face of the process-pool plumbing: the reproduction
        service ships one spec per deduped trace cluster to its persistent
        worker pool, and the worker runs ``spec.build_engine().reproduce()``
        in its own interpreter.  The rebuilt engine is always serial
        (``workers=1``), so its explored search tree is byte-identical to
        the single-shot path by the engine's commit discipline.
        """

        return self._engine_spec()

    def _engine_spec(self) -> _EngineSpec:
        from repro.trace import EnvironmentSpec

        # A fresh Program instance carries only the dataclass fields: the
        # per-plan compiled-code cache (and any other derived attributes
        # stashed on the original) stay home instead of being pickled.
        program = Program(source=self.program.source, unit=self.program.unit,
                          name=self.program.name,
                          functions=dict(self.program.functions),
                          cfgs=dict(self.program.cfgs),
                          branch_locations=list(self.program.branch_locations),
                          library_functions=set(self.program.library_functions))
        plan = InstrumentationPlan(method=self.plan.method,
                                   instrumented=self.plan.instrumented,
                                   all_locations=self.plan.all_locations,
                                   log_syscalls=self.plan.log_syscalls)
        return _EngineSpec(
            program=program,
            plan=plan,
            bits=self.bitvector.to_bytes(),
            bit_count=len(self.bitvector),
            syscall_log=self.syscall_log,
            crash_site=self.crash_site,
            environment_spec=EnvironmentSpec.capture(self.environment),
            budget=self.budget,
            search_order=self.search_order,
            require_full_log_match=self.require_full_log_match,
            backend=self.backend,
            specialize_plans=self.specialize_plans,
            register_allocation=self.register_allocation,
            fuse_compare_branch=self.fuse_compare_branch,
            specialize_ints=self.specialize_ints,
            synth_superinstructions=self.synth_superinstructions,
            max_call_depth=self.max_call_depth,
            warm_start=self.warm_start,
            telemetry=self.telemetry,
            profile_opcodes=self.profile_opcodes,
        )

    def _search_parallel(self, outcome: ReplayOutcome, pending: PendingList,
                         start: float) -> None:
        """Speculative search: workers race ahead, commits follow serial order.

        Every pop either finds the item's evaluation already inflight (a
        speculation hit) or submits it on the spot; either way the result is
        committed before the next pop, so the pending list — and with it the
        pop order — evolves exactly as in :meth:`_search_serial`.
        """

        inflight: Dict[int, Tuple[PendingItem, object]] = {}
        pool, submit = self._make_pool()
        try:
            while not self._budget_exhausted(outcome, start):
                item = pending.pop()
                if item is None:
                    break
                entry = inflight.pop(id(item), None)
                if entry is not None:
                    outcome.speculation_hits += 1
                    future = entry[1]
                else:
                    future = submit(item)
                # Keep idle workers busy on the likely-next items while the
                # committing thread waits for this one.
                self._speculate(submit, pending, inflight, outcome)
                if self._registry is not None:
                    wait_start = time.perf_counter()
                    evaluation = future.result()
                    self._registry.histogram(
                        "replay.commit_wait_seconds", SECONDS_BUCKETS,
                        timing=True).observe(time.perf_counter() - wait_start)
                else:
                    evaluation = future.result()
                if self._commit(outcome, pending, evaluation):
                    break
                if self._post_commit(outcome, pending, start):
                    break
        except BrokenProcessPool as exc:
            # A worker process died under us (SIGKILL, OOM, hard crash).
            # Surface the typed error; the supervisor one level up resumes
            # the search from its last checkpoint in a fresh process.
            if self._registry is not None:
                self._registry.counter("replay.worker_deaths",
                                       timing=True).inc()
            raise WorkerCrashError(
                f"replay worker process died mid-search "
                f"({self.workers} x {self.worker_kind}): {exc}") from exc
        finally:
            # Drop anything still queued, but wait for the runs already
            # executing: reproduce() must not leak workers that keep burning
            # CPU (and, for threads, reading engine state) after it returns.
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except BrokenProcessPool:  # already broken: nothing to drain
                pass

    def _speculate(self, submit: Callable[[PendingItem], "object"],
                   pending: PendingList,
                   inflight: Dict[int, Tuple[PendingItem, object]],
                   outcome: ReplayOutcome) -> None:
        # Keep a small backlog beyond the worker count so a fast worker always
        # finds its next item queued.  The cap counts only *unfinished*
        # evaluations: under DFS, freshly pushed alternatives overtake items
        # speculated earlier, and those completed-but-not-yet-popped entries
        # (they stay in `inflight` as a results cache until their item is
        # popped) must not starve speculation on the new head of the list.
        # id() keys are safe because the map holds a reference to every
        # speculated item.
        cap = self.workers * 2
        active = sum(1 for _, future in inflight.values() if not future.done())
        if active < cap:
            for candidate in pending.peek(cap):
                key = id(candidate)
                if key in inflight:
                    continue
                inflight[key] = (candidate, submit(candidate))
                outcome.speculated_items += 1
                active += 1
                if active >= cap:
                    break
        # Bound the completed-results cache: under DFS fresh alternatives
        # overtake earlier speculations, whose finished evaluations would
        # otherwise stay pinned until their item is popped — possibly for the
        # whole search.  Evicting a done entry is safe: _evaluate_item is
        # pure, so a later pop just recomputes it.
        retain = max(32, self.workers * 8)
        if len(inflight) > retain:
            keep = {id(item) for item in pending.peek(retain)}
            for key in [k for k, (_, future) in inflight.items()
                        if future.done() and k not in keep]:
                if len(inflight) <= retain:
                    break
                del inflight[key]

    def _budget_exhausted(self, outcome: ReplayOutcome, start: float) -> bool:
        # A resumed search inherits the clock already consumed before its
        # checkpoint, so the wall budget spans the whole logical search.
        if (outcome.runs >= self.budget.max_runs
                or self._elapsed_prior + time.monotonic() - start
                > self.budget.max_seconds):
            outcome.timed_out = True
            return True
        return False

    # -- checkpointing at commit boundaries ---------------------------------------------------

    def _post_commit(self, outcome: ReplayOutcome, pending: PendingList,
                     start: float) -> bool:
        """Checkpoint/heartbeat/preemption bookkeeping after one commit.

        Returns True to *pause* the search (preemption): the outcome is
        marked ``preempted`` and a checkpoint has been written, so a later
        :meth:`from_checkpoint` engine finishes it with a byte-identical
        result.  Runs strictly at commit boundaries — the only points where
        (pending, outcome) is a consistent, resumable pair.
        """

        self._commits += 1
        outcome.committed_items = self._commits
        policy = self._ckpt_policy
        if policy is None:
            return False
        if policy.heartbeat_path:
            self._touch(policy.heartbeat_path)
        preempt = (self._preempt.is_set()
                   or (policy.preempt_flag and os.path.exists(policy.preempt_flag))
                   or (policy.preempt_after_commits
                       and self._commits >= policy.preempt_after_commits))
        periodic = (policy.every_commits
                    and self._commits % policy.every_commits == 0)
        if policy.path and (preempt or periodic):
            self._write_checkpoint(outcome, pending, start)
        injector = self._fault_injector()
        if injector is not None and injector.roll("worker_kill"):
            injector.kill_now()
        if preempt:
            outcome.preempted = True
            return True
        return False

    def _make_checkpoint(self, outcome: ReplayOutcome, pending: PendingList,
                         start: float):
        from repro.replay.checkpoint import SearchCheckpoint

        return SearchCheckpoint(
            spec=self._engine_spec(),
            commits=self._commits,
            elapsed_seconds=self._elapsed_prior + time.monotonic() - start,
            pending_items=list(pending._items),
            seen_signatures=set(pending._seen),
            dropped=pending.dropped,
            duplicates=pending.duplicates,
            outcome_state=dataclasses.replace(outcome, telemetry=None),
            telemetry=(self._registry.snapshot()
                       if self._registry is not None else None),
        )

    def _write_checkpoint(self, outcome: ReplayOutcome, pending: PendingList,
                          start: float) -> None:
        from repro.replay.checkpoint import CheckpointError, save_checkpoint

        injector = self._fault_injector()
        # Count the attempt *before* snapshotting, so the telemetry embedded
        # in the checkpoint already includes this write: a run resumed from
        # it then reports the full write count even if the original process
        # died right after saving (the kill-at-every-commit regime would
        # otherwise keep the counter perpetually one step behind).
        if self._registry is not None:
            self._registry.counter("replay.checkpoint.writes",
                                   timing=True).inc()
        try:
            if injector is not None and injector.roll("checkpoint_fail"):
                raise OSError("injected checkpoint write failure")
            save_checkpoint(self._ckpt_policy.path,
                            self._make_checkpoint(outcome, pending, start))
        except (OSError, CheckpointError):
            # A failed checkpoint is lost insurance, not a failed search:
            # the next crash replays more work, the result stays correct.
            if self._registry is not None:
                self._registry.counter("replay.checkpoint.writes",
                                       timing=True).inc(-1)
                self._registry.counter("replay.checkpoint.write_failures",
                                       timing=True).inc()

    def _fault_injector(self):
        policy = self._ckpt_policy
        if policy is None or policy.fault_spec is None:
            return None
        if self._fault_injector_cache is None:
            # Lazy import: repro.service imports this module transitively.
            from repro.service.faults import FaultInjector
            self._fault_injector_cache = FaultInjector(policy.fault_spec)
        return self._fault_injector_cache

    @staticmethod
    def _touch(path: str) -> None:
        try:
            with open(path, "a"):
                pass
            os.utime(path, None)
        except OSError:
            pass  # a lost heartbeat only risks a spurious supervisor restart

    # -- internals --------------------------------------------------------------------------

    def _evaluate_item(self, item: PendingItem) -> _ItemEvaluation:
        """Solve and run one pending item — pure, safe for any worker."""

        if not self.telemetry:
            with vm_compiler.cache_scope() as cache_events:
                evaluation = self._evaluate_inner(item)
            evaluation.cache_hits = cache_events["hits"]
            evaluation.cache_misses = cache_events["misses"]
            return evaluation
        # One registry per item, installed thread-locally: worker threads and
        # worker processes alike collect into isolated registries, snapshot
        # them into the (picklable) evaluation, and the commit path merges
        # snapshots in serial pop order — so the deterministic portion of the
        # merged registry is byte-identical for every worker configuration.
        local = MetricsRegistry()
        item_start = time.perf_counter()
        with scoped(local):
            with vm_compiler.cache_scope() as cache_events:
                evaluation = self._evaluate_inner(item)
        evaluation.cache_hits = cache_events["hits"]
        evaluation.cache_misses = cache_events["misses"]
        local.histogram("replay.item_seconds", SECONDS_BUCKETS,
                        timing=True).observe(time.perf_counter() - item_start)
        if evaluation.ran:
            local.histogram("replay.item_consumed_bits").observe(
                evaluation.consumed_bits)
            local.histogram("replay.item_constraints").observe(
                evaluation.constraints)
        if evaluation.solver_calls:
            local.histogram("replay.item_solver_nodes").observe(
                evaluation.solver_nodes)
        evaluation.telemetry = local.snapshot()
        return evaluation

    def _evaluate_inner(self, item: PendingItem) -> _ItemEvaluation:
        solver_calls = 0
        solver_nodes = 0
        warm = False
        if len(item.constraints) == 0:
            overrides = dict(item.hint)
        else:
            overrides = None
            if self.warm_start:
                overrides = warm_start_assignment(item.constraints, item.hint)
                warm = overrides is not None
            if overrides is None:
                solve_start = time.perf_counter()
                solution = solve(item.constraints, hint=item.hint)
                telemetry_runtime.active().histogram(
                    "replay.solver_seconds", SECONDS_BUCKETS,
                    timing=True).observe(time.perf_counter() - solve_start)
                solver_calls = 1
                solver_nodes = solution.stats.nodes
                if not solution.satisfiable or solution.assignment is None:
                    return _ItemEvaluation(solver_calls=solver_calls,
                                           solver_nodes=solver_nodes)
                overrides = dict(item.hint)
                overrides.update(solution.assignment)
        hooks, result, binder = self._run_once(overrides)
        logged_locs, logged_execs, unlogged_locs, unlogged_execs = hooks.symbolic_counts()
        return _ItemEvaluation(
            solver_calls=solver_calls,
            ran=True,
            outcome=self._classify_outcome(hooks, result),
            consumed_bits=hooks.consumed_bits(),
            constraints=len(hooks.run_constraints),
            deviation=hooks.deviation.kind if hooks.deviation else "",
            assignment=binder.assignment(),
            alternatives=list(hooks.alternatives),
            crash=result.crash,
            symbolic_logged_locations=logged_locs,
            symbolic_logged_executions=logged_execs,
            symbolic_not_logged_locations=unlogged_locs,
            symbolic_not_logged_executions=unlogged_execs,
            warm_start=warm,
            solver_nodes=solver_nodes,
        )

    def _commit(self, outcome: ReplayOutcome, pending: PendingList,
                evaluation: _ItemEvaluation) -> bool:
        """Fold one evaluation into the outcome; True ends the search."""

        outcome.solver_calls += evaluation.solver_calls
        outcome.solver_nodes += evaluation.solver_nodes
        outcome.warm_start_hits += 1 if evaluation.warm_start else 0
        outcome.compile_cache_hits += evaluation.cache_hits
        outcome.compile_cache_misses += evaluation.cache_misses
        registry = self._registry
        if registry is not None:
            # Merge the item's registry first (commit order = serial pop
            # order), then fold the flat counters the item snapshot does not
            # carry.  Cache hits/misses depend on per-process cache warmth,
            # so they are timing-marked like the compiler's own counters.
            if evaluation.telemetry is not None:
                registry.merge_snapshot(evaluation.telemetry)
            registry.counter("replay.solver_calls").inc(evaluation.solver_calls)
            registry.counter("replay.solver_nodes").inc(evaluation.solver_nodes)
            if evaluation.warm_start:
                registry.counter("replay.warm_start_hits").inc()
        if not evaluation.ran:
            return False  # unsatisfiable constraint set: no run happened
        record = ReplayRunRecord(index=outcome.runs,
                                 outcome=evaluation.outcome,
                                 consumed_bits=evaluation.consumed_bits,
                                 constraints=evaluation.constraints,
                                 deviation=evaluation.deviation)
        outcome.runs += 1
        outcome.run_records.append(record)
        self._update_not_logged(outcome, evaluation)
        if registry is not None:
            registry.counter("replay.runs").inc()
            registry.counter(f"replay.outcome.{record.outcome}").inc()

        if record.outcome == "reproduced":
            outcome.reproduced = True
            outcome.crash_site = evaluation.crash
            outcome.found_input = dict(evaluation.assignment)
            return True

        # Merge the alternatives this run discovered.  Interning canonicalizes
        # the constraint chains so prefix-sharing pending items reference the
        # same Constraint objects — whether the evaluation happened inline or
        # came back (prefix-sharing but identity-free) from a worker process.
        for constraints, reason in evaluation.alternatives:
            pending.push(PendingItem(constraints=constraints.interned(),
                                     hint=dict(evaluation.assignment),
                                     depth=len(constraints),
                                     origin_run=outcome.runs,
                                     reason=reason))
        return False

    def _run_once(self, overrides: Dict[str, int]):
        kernel = self.environment.make_kernel()
        binder = InputBinder(mode=ExecutionMode.REPLAY, overrides=dict(overrides))
        hooks = ReplayRunHooks(self.plan, self.bitvector)
        provider = None
        if self.plan.log_syscalls and self.syscall_log is not None:
            cursor = self.syscall_log.cursor()
            # Kept for _classify_outcome: a full-log-match reproduction must
            # also have consumed the recorded syscall results completely.
            hooks.syscall_cursor = cursor

            def provider(kind: SyscallKind, _cursor=cursor) -> Optional[int]:
                return _cursor.next_result(kind)

        config = ExecutionConfig(mode=ExecutionMode.REPLAY,
                                 max_steps=self.budget.max_steps_per_run,
                                 max_call_depth=self.max_call_depth,
                                 syscall_result_provider=provider,
                                 backend=self.backend,
                                 specialize_plans=self.specialize_plans,
                                 register_allocation=self.register_allocation,
                                 fuse_compare_branch=self.fuse_compare_branch,
                                 specialize_ints=self.specialize_ints,
                                 synth_superinstructions=(
                                     self.synth_superinstructions),
                                 profile_opcodes=(self.telemetry
                                                  and self.profile_opcodes))
        executor = create_backend(self.program, kernel=kernel, hooks=hooks,
                                  binder=binder, config=config)
        result = executor.run(self.environment.argv)
        return hooks, result, binder

    def _classify_outcome(self, hooks: ReplayRunHooks,
                          result: ExecutionResult) -> str:
        if result.aborted:
            return "aborted"
        if result.step_limit_hit:
            return "step-limit"
        if result.crashed and self._matches_crash(result):
            full_match = (hooks.deviation is None
                          and hooks.consumed_bits() == len(self.bitvector)
                          and self._syscall_log_consumed(hooks))
            if full_match or not self.require_full_log_match:
                return "reproduced"
            return "crashed-partial-match"
        if result.crashed:
            return "crashed-elsewhere"
        return "finished"

    def _syscall_log_consumed(self, hooks: ReplayRunHooks) -> bool:
        """Did the run replay every recorded syscall result?

        A sparsely instrumented plan can leave the bitvector too short to
        discriminate executions (the diff ``dynamic`` configuration logs
        almost nothing), but a run that took the recorded path performs the
        recorded I/O: leftover logged results mean the execution diverged on
        branches the plan did not log, so it is not a reproduction.
        """

        cursor = getattr(hooks, "syscall_cursor", None)
        if cursor is None or self.syscall_log is None:
            return True
        return all(cursor.remaining(kind) == 0
                   for kind in self.syscall_log.results)

    def _matches_crash(self, result: ExecutionResult) -> bool:
        if result.crash is None:
            return False
        if self.crash_site is None:
            return True
        return result.crash.same_location(self.crash_site)

    @staticmethod
    def _update_not_logged(outcome: ReplayOutcome,
                           evaluation: _ItemEvaluation) -> None:
        outcome.symbolic_logged_locations = max(
            outcome.symbolic_logged_locations,
            evaluation.symbolic_logged_locations)
        outcome.symbolic_logged_executions = max(
            outcome.symbolic_logged_executions,
            evaluation.symbolic_logged_executions)
        outcome.symbolic_not_logged_locations = max(
            outcome.symbolic_not_logged_locations,
            evaluation.symbolic_not_logged_locations)
        outcome.symbolic_not_logged_executions = max(
            outcome.symbolic_not_logged_executions,
            evaluation.symbolic_not_logged_executions)
