"""The pending list of unexplored constraint sets (§3.1).

Whenever replay encounters an alternative it does not follow (an uninstrumented
symbolic branch, or a mismatch against the recorded bitvector), it pushes a
constraint set describing the unexplored direction onto the pending list.  When
a run aborts, the engine pops an entry, solves it, and starts a new run with
the resulting input.  The paper uses a depth-first order; breadth-first is
provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.symbolic.constraints import ConstraintSet


@dataclass
class PendingItem:
    """One unexplored alternative path.

    Items are plain data end to end — constraint sets, hint assignments,
    bookkeeping ints — so they pickle: the process-pool replay workers
    receive the exact item the engine popped, and the alternatives they send
    back re-enter the pending list indistinguishable from locally produced
    ones (the dedup signature below is structural, not identity-based).
    """

    constraints: ConstraintSet
    hint: Dict[str, int] = field(default_factory=dict)
    depth: int = 0
    origin_run: int = 0
    reason: str = ""

    def signature(self) -> Tuple:
        return self.constraints.signature()


class PendingList:
    """A de-duplicating stack/queue of :class:`PendingItem` objects."""

    def __init__(self, order: str = "dfs", max_size: int = 5_000) -> None:
        if order not in ("dfs", "bfs"):
            raise ValueError("order must be 'dfs' or 'bfs'")
        self.order = order
        self.max_size = max_size
        self._items: List[PendingItem] = []
        self._seen: Set[Tuple] = set()
        self.dropped = 0
        self.duplicates = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: PendingItem) -> bool:
        """Add an item unless it duplicates one already scheduled."""

        signature = item.signature()
        if signature in self._seen:
            self.duplicates += 1
            return False
        if len(self._items) >= self.max_size:
            self.dropped += 1
            return False
        self._seen.add(signature)
        self._items.append(item)
        return True

    def pop(self) -> Optional[PendingItem]:
        if not self._items:
            return None
        if self.order == "dfs":
            return self._items.pop()
        return self._items.pop(0)

    def peek(self, count: int = 1) -> List[PendingItem]:
        """The next *count* items in pop order, without removing them.

        The parallel replay engine speculates on these: barring earlier
        termination, they are exactly the items the serial engine would pop
        next (newly pushed alternatives may jump the queue under DFS, but a
        peeked item's evaluation stays valid until it is actually popped).
        """

        if count <= 0:
            return []
        if self.order == "dfs":
            return list(reversed(self._items[-count:]))
        return list(self._items[:count])

    def clear(self) -> None:
        self._items.clear()

    def stats(self) -> Dict[str, int]:
        return {"pending": len(self._items), "dropped": self.dropped,
                "duplicates": self.duplicates}
