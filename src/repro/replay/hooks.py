"""Per-run replay hooks: the four branch cases of §3.1.

For every executed branch the hooks decide, based on whether the branch is
symbolic (its condition carries input) and whether it is instrumented (present
in the plan), one of:

1. **symbolic, not instrumented** — record the taken direction in the run's
   constraint set and push the untaken alternative onto the pending list;
2. **symbolic, instrumented** — compare against the next bit of the recorded
   bitvector; on a match record the constraint and continue, on a mismatch
   push "follow the recorded direction" onto the pending list and abort;
3. **concrete, instrumented** — compare against the next bit; a mismatch means
   an earlier uninstrumented symbolic branch went the wrong way, so abort;
4. **concrete, not instrumented** — continue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.instrument.logger import BitvectorLog
from repro.instrument.plan import InstrumentationPlan
from repro.interp.interpreter import AbortRun
from repro.interp.tracer import BranchEvent, ExecutionHooks
from repro.lang.cfg import BranchLocation
from repro.symbolic.constraints import Constraint, ConstraintSet


@dataclass
class RunDeviation:
    """Why a replay run was aborted."""

    kind: str  # "symbolic-mismatch" | "concrete-mismatch" | "log-exhausted"
    location: Optional[BranchLocation] = None
    bit_index: int = 0


class ReplayRunHooks(ExecutionHooks):
    """Observes one replay run and applies the four-case policy.

    With the tree-walking interpreter (or the VM on unspecialized code) every
    branch arrives through :meth:`on_branch`.  The bytecode VM instead
    recognises ``vm_inline = "replay"`` and runs plan-specialized code that
    walks ``cursor_cell`` and compares recorded bits inline for the dominant
    case 3 (concrete, instrumented); only the rare cases — symbolic
    conditions and deviations — call back through the ``vm_*`` entry points
    below, which share the exact code paths of the hook dispatch so the two
    modes cannot drift.
    """

    #: Opt-in marker for the VM's inline replay fast path.
    vm_inline = "replay"

    def __init__(self, plan: InstrumentationPlan, bitvector: BitvectorLog) -> None:
        self.plan = plan
        self.bitvector = bitvector
        # The bitvector read cursor, in a one-element list so the VM's inline
        # fast path and these hooks share one mutable cell.
        self.cursor_cell = [0]
        self.run_constraints = ConstraintSet()
        # Alternatives discovered during this run, to be merged into the
        # engine's pending list: (constraint set, reason).
        self.alternatives: List[tuple] = []
        self.deviation: Optional[RunDeviation] = None
        self.branch_executions = 0
        self.symbolic_not_logged: Dict[BranchLocation, int] = {}
        self.symbolic_logged: Dict[BranchLocation, int] = {}

    @property
    def cursor(self) -> int:
        return self.cursor_cell[0]

    @cursor.setter
    def cursor(self, value: int) -> None:
        self.cursor_cell[0] = value

    # -- helpers -------------------------------------------------------------------

    def _next_bit(self, event: BranchEvent) -> Optional[bool]:
        if self.cursor >= len(self.bitvector):
            self.deviation = RunDeviation("log-exhausted", event.location, self.cursor)
            raise AbortRun("recorded branch log exhausted")
        bit = self.bitvector[self.cursor]
        self.cursor += 1
        return bit

    def _push_alternative(self, constraints: ConstraintSet, reason: str) -> None:
        self.alternatives.append((constraints, reason))

    # -- the four cases ------------------------------------------------------------------

    def on_branch(self, event: BranchEvent) -> None:
        self.branch_executions += 1
        instrumented = self.plan.is_instrumented(event.location)
        if event.symbolic and event.condition is not None:
            if instrumented:
                self.symbolic_logged[event.location] = (
                    self.symbolic_logged.get(event.location, 0) + 1)
                self._symbolic_instrumented(event)
            else:
                self.symbolic_not_logged[event.location] = (
                    self.symbolic_not_logged.get(event.location, 0) + 1)
                self._symbolic_uninstrumented(event)
        else:
            if instrumented:
                self._concrete_instrumented(event)
            # Case 4 (concrete, not instrumented): nothing to do.

    def _symbolic_uninstrumented(self, event: BranchEvent) -> None:
        taken_constraint = Constraint(event.condition,
                                      origin=event.location.node_id,
                                      description=event.location.short())
        alternative = self.run_constraints.extended(taken_constraint.negated())
        self._push_alternative(alternative, "unlogged symbolic branch")
        self.run_constraints.add(taken_constraint)

    def _symbolic_instrumented(self, event: BranchEvent) -> None:
        recorded_taken = self._next_bit(event)
        taken_constraint = Constraint(event.condition,
                                      origin=event.location.node_id,
                                      description=event.location.short())
        if recorded_taken == event.taken:
            self.run_constraints.add(taken_constraint)
            return
        # The recorded execution went the other way: schedule a constraint set
        # that forces the recorded direction, then abort this run.
        forced = self.run_constraints.extended(taken_constraint.negated())
        self._push_alternative(forced, "bitvector mismatch at symbolic branch")
        self.deviation = RunDeviation("symbolic-mismatch", event.location, self.cursor - 1)
        raise AbortRun(f"bitvector mismatch at {event.location.short()}")

    def _concrete_instrumented(self, event: BranchEvent) -> None:
        recorded_taken = self._next_bit(event)
        if recorded_taken == event.taken:
            return
        # A concrete branch cannot disagree with the log unless an earlier
        # uninstrumented symbolic branch sent the run down the wrong path.
        self.deviation = RunDeviation("concrete-mismatch", event.location, self.cursor - 1)
        raise AbortRun(f"concrete branch deviated at {event.location.short()}")

    # -- VM inline-replay integration ---------------------------------------------------
    #
    # Called by the bytecode VM from plan-specialized code for the cases its
    # inline cursor walk cannot decide alone.  Instrumented-ness is already
    # baked into the opcode, so no plan lookup happens here.

    def vm_bare_symbolic(self, event: BranchEvent) -> None:
        """Case 1 slow path: symbolic condition at an uninstrumented branch."""

        self.symbolic_not_logged[event.location] = (
            self.symbolic_not_logged.get(event.location, 0) + 1)
        self._symbolic_uninstrumented(event)

    def vm_logged_symbolic(self, event: BranchEvent) -> None:
        """Case 2 slow path: symbolic condition at an instrumented branch."""

        self.symbolic_logged[event.location] = (
            self.symbolic_logged.get(event.location, 0) + 1)
        self._symbolic_instrumented(event)

    def vm_concrete_mismatch(self, location: BranchLocation, bit_index: int) -> None:
        """Case 3 deviation: the VM's inline compare saw the wrong direction.

        The VM has already advanced the cursor past the mismatching bit,
        mirroring ``_next_bit`` + ``_concrete_instrumented``.
        """

        self.deviation = RunDeviation("concrete-mismatch", location, bit_index)
        raise AbortRun(f"concrete branch deviated at {location.short()}")

    def vm_log_exhausted(self, location: BranchLocation) -> None:
        """The recorded bitvector ran out at an instrumented branch."""

        self.deviation = RunDeviation("log-exhausted", location, self.cursor)
        raise AbortRun("recorded branch log exhausted")

    def vm_finish(self, branch_executions: int) -> None:
        """End-of-run merge of the VM's inline per-run counters."""

        self.branch_executions += branch_executions

    # -- statistics --------------------------------------------------------------------------

    def consumed_bits(self) -> int:
        return self.cursor

    def symbolic_counts(self) -> tuple:
        """``(logged locations, logged execs, unlogged locations, unlogged execs)``.

        The distilled per-run numbers the engine folds into its outcome; plain
        ints so a worker process can ship them home without pickling the
        per-location dictionaries.
        """

        return (len(self.symbolic_logged), sum(self.symbolic_logged.values()),
                len(self.symbolic_not_logged), sum(self.symbolic_not_logged.values()))

    def not_logged_summary(self) -> Dict[str, int]:
        return {
            "locations": len(self.symbolic_not_logged),
            "executions": sum(self.symbolic_not_logged.values()),
        }
