"""Lexer for MiniC.

The token stream is deliberately close to C: identifiers, integer and character
literals, string literals with the usual escapes, the full set of operators the
parser understands, and ``//`` / ``/* */`` comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.lang.errors import LexError

KEYWORDS = {
    "int",
    "char",
    "void",
    "long",
    "unsigned",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "struct",
    "sizeof",
}

# Multi-character operators must be listed longest-first so the lexer always
# prefers the longest match.
_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "->",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
]

_ESCAPES = {
    "n": ord("\n"),
    "t": ord("\t"),
    "r": ord("\r"),
    "0": 0,
    "\\": ord("\\"),
    "'": ord("'"),
    '"': ord('"'),
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


class TokenType(enum.Enum):
    """Categories of MiniC tokens."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    type: TokenType
    value: object
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OP and self.value in ops

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Converts MiniC source text into a list of :class:`Token` objects."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low level helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    # -- token producers -----------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise self._error("unterminated block comment")
                self._advance(2)
            elif ch == "#":
                # Preprocessor-style lines are accepted and ignored, which lets
                # workload sources keep familiar-looking ``#include`` lines.
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        text = ""
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            text = "0x"
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._peek()
                self._advance()
            if text == "0x":
                raise self._error("malformed hexadecimal literal")
            return Token(TokenType.INT, int(text, 16), line, column)
        while self._peek().isdigit():
            text += self._peek()
            self._advance()
        return Token(TokenType.INT, int(text), line, column)

    def _lex_identifier(self) -> Token:
        line, column = self.line, self.column
        text = ""
        while self._peek().isalnum() or self._peek() == "_":
            text += self._peek()
            self._advance()
        if text in KEYWORDS:
            return Token(TokenType.KEYWORD, text, line, column)
        return Token(TokenType.IDENT, text, line, column)

    def _lex_escape(self) -> int:
        self._advance()  # consume backslash
        ch = self._peek()
        if not ch:
            raise self._error("unterminated escape sequence")
        self._advance()
        if ch == "x":
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF" and len(digits) < 2:
                digits += self._peek()
                self._advance()
            if not digits:
                raise self._error("malformed hex escape")
            return int(digits, 16)
        if ch in _ESCAPES:
            return _ESCAPES[ch]
        return ord(ch)

    def _lex_char(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        if self._peek() == "\\":
            code = self._lex_escape()
        else:
            if not self._peek():
                raise self._error("unterminated character literal")
            code = ord(self._peek())
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokenType.CHAR, code, line, column)

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(chr(self._lex_escape()))
            else:
                chars.append(ch)
                self._advance()
        return Token(TokenType.STRING, "".join(chars), line, column)

    def _lex_operator(self) -> Token:
        line, column = self.line, self.column
        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenType.OP, op, line, column)
        raise self._error(f"unexpected character {self._peek()!r}")

    # -- public API ------------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Lex the whole source and return the token list (ending with EOF)."""

        out: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            ch = self._peek()
            if not ch:
                out.append(Token(TokenType.EOF, None, self.line, self.column))
                return out
            if ch.isdigit():
                out.append(self._lex_number())
            elif ch.isalpha() or ch == "_":
                out.append(self._lex_identifier())
            elif ch == "'":
                out.append(self._lex_char())
            elif ch == '"':
                out.append(self._lex_string())
            else:
                out.append(self._lex_operator())


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex *source* and return its tokens."""

    return Lexer(source).tokens()
