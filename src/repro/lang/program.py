"""The :class:`Program` container: a parsed MiniC program ready for analysis.

A :class:`Program` binds together the translation unit, the per-function CFGs,
the canonical list of branch locations and a few convenience indexes (function
table, call graph edges).  Every stage of the pipeline — dynamic analysis,
static analysis, instrumentation, recording and replay — operates on the same
:class:`Program` instance, so branch identities are consistent throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.lang.ast_nodes import (
    Call,
    FunctionDef,
    GlobalDecl,
    Node,
    TranslationUnit,
)
from repro.lang.cfg import (
    BranchLocation,
    ControlFlowGraph,
    build_all_cfgs,
    enumerate_branch_locations,
)
from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program


@dataclass
class Program:
    """A parsed MiniC program plus derived structural information."""

    source: str
    unit: TranslationUnit
    name: str = "program"
    functions: Dict[str, FunctionDef] = field(default_factory=dict)
    cfgs: Dict[str, ControlFlowGraph] = field(default_factory=dict)
    branch_locations: List[BranchLocation] = field(default_factory=list)
    library_functions: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str, name: str = "program",
                    library_functions: Optional[Set[str]] = None) -> "Program":
        """Parse *source* and build all derived structures.

        ``library_functions`` names functions that should be treated as
        "library" code (the uClibc analogue in the paper): the static analysis
        can be told to skip them, and branch-behaviour figures separate them
        from application code.
        """

        unit = parse_program(source)
        functions: Dict[str, FunctionDef] = {}
        for function in unit.functions:
            if function.name in functions:
                raise SemanticError(f"duplicate function definition: {function.name}")
            functions[function.name] = function
        if "main" not in functions:
            raise SemanticError("program has no main function")
        program = cls(
            source=source,
            unit=unit,
            name=name,
            functions=functions,
            cfgs=build_all_cfgs(unit),
            branch_locations=enumerate_branch_locations(unit),
            library_functions=set(library_functions or ()),
        )
        return program

    # -- lookups --------------------------------------------------------------

    @property
    def main(self) -> FunctionDef:
        return self.functions["main"]

    def branch_by_id(self, node_id: int) -> Optional[BranchLocation]:
        for location in self.branch_locations:
            if location.node_id == node_id:
                return location
        return None

    def branches_in_function(self, function_name: str) -> List[BranchLocation]:
        return [b for b in self.branch_locations if b.function == function_name]

    def application_branches(self) -> List[BranchLocation]:
        """Branch locations in application (non-library) functions."""

        return [b for b in self.branch_locations
                if b.function not in self.library_functions]

    def library_branches(self) -> List[BranchLocation]:
        """Branch locations in functions marked as library code."""

        return [b for b in self.branch_locations
                if b.function in self.library_functions]

    # -- call graph -----------------------------------------------------------

    def call_graph(self) -> Dict[str, Set[str]]:
        """Map of caller name to the set of (user-defined) callees."""

        edges: Dict[str, Set[str]] = {name: set() for name in self.functions}
        for name, function in self.functions.items():
            for node in function.body.walk():
                if isinstance(node, Call) and node.name in self.functions:
                    edges[name].add(node.name)
        return edges

    def reachable_functions(self, root: str = "main") -> Set[str]:
        """Functions reachable from *root* through direct calls."""

        graph = self.call_graph()
        seen: Set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen or current not in graph:
                continue
            seen.add(current)
            stack.extend(graph[current])
        return seen

    def global_names(self) -> List[str]:
        names: List[str] = []
        for decl in self.unit.globals:
            if isinstance(decl, GlobalDecl):
                names.extend(d.name for d in decl.decl.declarators)
        return names

    # -- statistics used by figures -------------------------------------------

    def loc(self) -> int:
        """Number of non-blank source lines (used in reports only)."""

        return sum(1 for line in self.source.splitlines() if line.strip())

    def describe(self) -> Dict[str, int]:
        """Structural summary used by reports and examples."""

        return {
            "functions": len(self.functions),
            "branch_locations": len(self.branch_locations),
            "application_branches": len(self.application_branches()),
            "library_branches": len(self.library_branches()),
            "globals": len(self.global_names()),
            "source_lines": self.loc(),
        }
