"""MiniC: the C-like language substrate used by every benchmark program.

The paper instruments C programs through CIL.  This reproduction defines a
small but expressive C-like language (MiniC) and performs every analysis and
transformation on its AST:

* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` — source text to AST,
* :mod:`repro.lang.ast_nodes` — the AST node classes and visitors,
* :mod:`repro.lang.cfg` — per-function control-flow graphs and the canonical
  enumeration of *branch locations* used by all instrumentation methods,
* :mod:`repro.lang.program` — the :class:`Program` container binding functions,
  globals, branch locations and source text together.
"""

from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    BinaryOp,
    Block,
    Break,
    Call,
    CharLiteral,
    Continue,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    Node,
    Param,
    ReturnStmt,
    StringLiteral,
    UnaryOp,
    VarDecl,
    WhileStmt,
)
from repro.lang.cfg import BranchLocation, ControlFlowGraph, build_cfg
from repro.lang.errors import LexError, MiniCError, ParseError
from repro.lang.lexer import Lexer, Token, TokenType, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.program import Program

__all__ = [
    "ArrayIndex",
    "Assign",
    "BinaryOp",
    "Block",
    "BranchLocation",
    "Break",
    "Call",
    "CharLiteral",
    "Continue",
    "ControlFlowGraph",
    "ExprStmt",
    "ForStmt",
    "FunctionDef",
    "GlobalDecl",
    "Identifier",
    "IfStmt",
    "IntLiteral",
    "Lexer",
    "LexError",
    "MiniCError",
    "Node",
    "Param",
    "ParseError",
    "Parser",
    "Program",
    "ReturnStmt",
    "StringLiteral",
    "Token",
    "TokenType",
    "UnaryOp",
    "VarDecl",
    "WhileStmt",
    "build_cfg",
    "parse_program",
    "tokenize",
]
