"""Static scope resolution: numbered frame slots for MiniC locals.

MiniC has *implicit declaration* (the first assignment to an unknown name
declares it in the innermost scope at that moment) and block scoping with
shadowing, so which variable an identifier denotes is in general a dynamic
property.  This pass models those semantics statically with a forward
abstract interpretation over the structured control flow: every lexical
scope tracks, per name, whether the name is **declared on all paths**
(``DECLARED``) or only **on some paths** (``MAYBE``) at each program point;
``if``/``else`` arms, short-circuit operands and ternary arms merge their
exit states, and loops iterate the body transfer function to a fixpoint
(the state lattice is finite and monotone, so this converges in a couple of
passes).

An identifier access *resolves* when the abstract walk can name the single
variable (one ``(scope, name)`` pair, or the global) it denotes on **every**
execution reaching it.  Accesses that cannot — a ``MAYBE`` entry anywhere in
the scope chain, a read of a name never declared (which must keep raising
the interpreter's exact ``undefined variable`` error at run time) — poison
the name for the whole function: all of its accesses fall back to the VM's
legacy named-cell operations, whose scope-chain walk is correct for every
dynamic behaviour.  The fallback is per *name*, not per access, so a named
cell and a slot can never alias the same variable.

The compiler (:mod:`repro.vm.compiler`) uses the result to emit
``LOAD_FAST``/``STORE_FAST`` (flat list indexing) for every pure local,
``LOAD_GLOBAL``/``STORE_GLOBAL`` for accesses proven to denote a global,
and — when a function has no fallback names at all — to elide the frame's
scope push/pop bookkeeping entirely.  Semantics are preserved by
construction: anything this pass cannot prove keeps the old code shape.

``RESOLVER_VERSION`` participates in the compiled-code cache key so a stale
slot layout can never be paired with bytecode produced by a different
resolver (see :func:`repro.vm.compiler.compile_program`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    AssignExpr,
    BinaryOp,
    Block,
    Break,
    Call,
    CharLiteral,
    Continue,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    Identifier,
    IfStmt,
    IntLiteral,
    Node,
    ReturnStmt,
    Stmt,
    StringLiteral,
    TernaryOp,
    UnaryOp,
    VarDecl,
    WhileStmt,
)

#: Bump whenever resolution semantics (or the slot-op encoding derived from
#: them) change; the bytecode compiler keys its cache on this.
#: 2: per-slot int-type lattice (``int_slots``/``pointer_slots``) feeding the
#: unboxed BINOP_II* superinstructions and the runtime quickening pass.
RESOLVER_VERSION = 2

# Declaration states in the abstract scope chain.
_DECLARED = 1
_MAYBE = 2

#: Access resolutions, as stored in :attr:`FunctionResolution.accesses`.
SLOT = "slot"      # ("slot", index) — a pure local, lives in frame.slots
GLOBAL = "global"  # ("global",)     — proven to denote the module global
NAMED = "named"    # ("named",)      — fallback: legacy scope-chain dict ops

#: Builtins whose return value is always a plain integer (never a pointer).
#: Used by the int-slot lattice to classify ``x = builtin(...)`` writes; the
#: VM's type guards make an over-approximation here merely slow, never wrong,
#: but this set is exact for the shipped builtin table.
_INT_BUILTINS = frozenset({
    "abs", "accept", "assert", "atoi", "close", "file_exists", "fprintf_err",
    "getchar", "isalpha", "isdigit", "isspace", "mkdir", "mkfifo", "mknod",
    "net_listen", "net_select", "open", "printf", "putchar", "puts", "read",
    "read_option", "recv", "send", "send_str", "strcmp", "strlen", "strncmp",
    "tolower", "toupper", "unlink", "workload_done", "write",
})

#: Scalar base types whose depth-0 values are integers.
_INT_BASES = frozenset({"int", "char"})


class _Var:
    """One statically identified local variable: a ``(scope, name)`` pair."""

    __slots__ = ("name", "scope_uid", "order", "is_param")

    def __init__(self, name: str, scope_uid: int, order: int,
                 is_param: bool = False) -> None:
        self.name = name
        self.scope_uid = scope_uid
        self.order = order
        self.is_param = is_param


class _ScopeState:
    """Abstract contents of one lexical scope: name -> declaration state."""

    __slots__ = ("uid", "names")

    def __init__(self, uid: int, names: Optional[Dict[str, int]] = None) -> None:
        self.uid = uid
        self.names = dict(names) if names else {}

    def copy(self) -> "_ScopeState":
        return _ScopeState(self.uid, self.names)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _ScopeState)
                and self.uid == other.uid and self.names == other.names)

    def __ne__(self, other: object) -> bool:  # pragma: no cover - symmetry
        return not self.__eq__(other)


#: A program point: the scope chain, innermost last.  ``None`` = unreachable.
_State = Optional[List[_ScopeState]]


def _copy_state(state: _State) -> _State:
    if state is None:
        return None
    return [scope.copy() for scope in state]


def _merge(a: _State, b: _State) -> _State:
    """Join two states arriving at the same program point."""

    if a is None:
        return _copy_state(b)
    if b is None:
        return _copy_state(a)
    assert len(a) == len(b), "control-flow join with mismatched scope chains"
    merged: List[_ScopeState] = []
    for scope_a, scope_b in zip(a, b):
        assert scope_a.uid == scope_b.uid
        names: Dict[str, int] = {}
        for name in set(scope_a.names) | set(scope_b.names):
            state_a = scope_a.names.get(name)
            state_b = scope_b.names.get(name)
            if state_a == _DECLARED and state_b == _DECLARED:
                names[name] = _DECLARED
            else:
                names[name] = _MAYBE
        merged.append(_ScopeState(scope_a.uid, names))
    return merged


def _merge_many(states: Sequence[_State]) -> _State:
    result: _State = None
    for state in states:
        result = _merge(result, state)
    return result


def _states_equal(a: _State, b: _State) -> bool:
    if a is None or b is None:
        return a is b
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))


class _LoopCtx:
    """Break/continue join collectors for one loop, at one chain depth."""

    __slots__ = ("depth", "breaks", "continues")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.breaks: List[_State] = []
        self.continues: List[_State] = []


@dataclass
class FunctionResolution:
    """Slot layout and per-access resolutions for one function."""

    name: str
    nlocals: int = 0
    #: Slot index -> source name (disassembly / debugging).
    slot_names: List[str] = field(default_factory=list)
    #: Per parameter (in order): its slot index, or None for a named cell.
    param_slots: List[Optional[int]] = field(default_factory=list)
    #: node_id -> ("slot", index) | ("global",) | ("named",)
    accesses: Dict[int, Tuple] = field(default_factory=dict)
    #: Names whose accesses all fall back to named cells.
    fallback_names: Set[str] = field(default_factory=set)
    #: True when no name falls back: every local lives in a slot, so block
    #: scope bookkeeping (push/pop/undo) is observationally empty and the
    #: compiler elides it.
    elide_scopes: bool = False
    #: Slots the int-type lattice proved only ever hold integers (every write
    #: reaching them is provably an int under the declared types of params
    #: and callees).  The proof is optimistic about declarations — a caller
    #: passing a pointer into an ``int`` parameter defeats it — which is safe
    #: because every unboxed instruction carries a runtime type guard that
    #: deoptimizes back to the generic form.
    int_slots: frozenset = frozenset()
    #: Slots that may hold pointers or are address-taken: never eligible for
    #: unboxed raw-int stores, statically or via quickening.
    pointer_slots: frozenset = frozenset()

    def access(self, node_id: int) -> Tuple:
        return self.accesses.get(node_id, (NAMED,))


@dataclass
class ProgramResolution:
    """Resolution of every function in a program."""

    version: int
    functions: Dict[str, FunctionResolution] = field(default_factory=dict)

    def for_function(self, name: str) -> Optional[FunctionResolution]:
        return self.functions.get(name)

    def stats(self) -> Dict[str, int]:
        slot_accesses = named = global_accesses = slots = 0
        for resolution in self.functions.values():
            slots += resolution.nlocals
            for kind in resolution.accesses.values():
                if kind[0] == SLOT:
                    slot_accesses += 1
                elif kind[0] == GLOBAL:
                    global_accesses += 1
                else:
                    named += 1
        return {"slots": slots, "slot_accesses": slot_accesses,
                "global_accesses": global_accesses,
                "named_accesses": named,
                "fully_slotted_functions": sum(
                    1 for r in self.functions.values() if r.elide_scopes),
                "int_slots": sum(
                    len(r.int_slots) for r in self.functions.values())}


#: Base-scope uid (parameters and function-body implicit locals that are not
#: inside any block... the body Block itself gets its node_id as uid).
_BASE_SCOPE = -1

#: Fixpoint iteration guard; the lattice height makes 2-3 passes typical.
_MAX_LOOP_PASSES = 8


class _FunctionResolver:
    """Resolves one function body (see module docstring for the model)."""

    def __init__(self, function: FunctionDef, global_names: Set[str],
                 int_functions: Optional[Set[str]] = None) -> None:
        self.function = function
        self.global_names = global_names
        # Program functions whose declared return type is a depth-0 scalar;
        # calls to them classify as int writes in the type lattice.
        self.int_functions = int_functions if int_functions is not None else set()
        self.vars: Dict[Tuple[int, str], _Var] = {}
        self.accesses: Dict[int, object] = {}  # node_id -> _Var | GLOBAL | NAMED
        self.fallback_names: Set[str] = set()
        self.loop_stack: List[_LoopCtx] = []

    # -- variable bookkeeping ---------------------------------------------------

    def _var(self, scope_uid: int, name: str, is_param: bool = False) -> _Var:
        key = (scope_uid, name)
        var = self.vars.get(key)
        if var is None:
            var = _Var(name, scope_uid, len(self.vars), is_param)
            self.vars[key] = var
        return var

    def _poison(self, name: str) -> None:
        self.fallback_names.add(name)

    # -- chain walks ------------------------------------------------------------

    def _resolve_read(self, node: Node, name: str, state: List[_ScopeState]) -> None:
        """A load (or address-of) of *name* at *node*."""

        for scope in reversed(state):
            status = scope.names.get(name)
            if status == _DECLARED:
                self.accesses[node.node_id] = self._var(scope.uid, name)
                return
            if status == _MAYBE:
                # Could bind here or further out depending on the path taken.
                self._poison(name)
                self.accesses[node.node_id] = NAMED
                return
        if name in self.global_names:
            self.accesses[node.node_id] = GLOBAL
            return
        # Guaranteed-undefined read: keep the interpreter's exact runtime
        # error by leaving the access on the legacy dict path.
        self._poison(name)
        self.accesses[node.node_id] = NAMED

    def _resolve_write(self, node: Node, name: str,
                       state: List[_ScopeState]) -> None:
        """An assignment to *name*; may implicitly declare it."""

        for position, scope in enumerate(reversed(state)):
            status = scope.names.get(name)
            if status == _DECLARED:
                self.accesses[node.node_id] = self._var(scope.uid, name)
                return
            if status == _MAYBE:
                # Runtime: assigns this scope's binding on paths where it
                # exists, otherwise keeps walking (or implicitly declares in
                # the innermost scope).  Both behaviours hit the *same*
                # variable exactly when the maybe-scope is the innermost one
                # and the name exists nowhere further out.
                if (position == 0
                        and name not in self.global_names
                        and not any(name in outer.names
                                    for outer in state[:-1])):
                    scope.names[name] = _DECLARED
                    self.accesses[node.node_id] = self._var(scope.uid, name)
                    return
                self._poison(name)
                self.accesses[node.node_id] = NAMED
                return
        if name in self.global_names:
            self.accesses[node.node_id] = GLOBAL
            return
        # Implicit declaration in the innermost scope.
        innermost = state[-1]
        innermost.names[name] = _DECLARED
        self.accesses[node.node_id] = self._var(innermost.uid, name)

    def _declare(self, node: Node, name: str, state: List[_ScopeState]) -> None:
        """An explicit ``VarDecl`` declarator in the innermost scope."""

        innermost = state[-1]
        innermost.names[name] = _DECLARED
        self.accesses[node.node_id] = self._var(innermost.uid, name)

    # -- unreachable code -------------------------------------------------------

    def _resolve_dead(self, node: Optional[Node]) -> None:
        """Resolve a statically unreachable subtree.

        The compiler still emits code for it, so every identifier needs *a*
        resolution; the named-cell ops are correct under any dynamic state
        (and the code never runs, so they cost nothing).  Dead accesses do
        not poison their names: the live accesses elsewhere keep their slots.
        """

        if node is None:
            return
        for child in node.walk():
            if isinstance(child, Identifier):
                self.accesses.setdefault(child.node_id, NAMED)
            elif isinstance(child, VarDecl):
                for declarator in child.declarators:
                    self.accesses.setdefault(declarator.node_id, NAMED)

    # -- statement transfer functions ------------------------------------------

    def _stmt(self, stmt: Stmt, state: _State) -> _State:
        if state is None:
            self._resolve_dead(stmt)
            return None
        if isinstance(stmt, Block):
            state.append(_ScopeState(stmt.node_id))
            for child in stmt.statements:
                state = self._stmt(child, state)
            if state is not None:
                state.pop()
            return state
        if isinstance(stmt, VarDecl):
            for declarator in stmt.declarators:
                if declarator.array_size is not None:
                    state = self._expr(declarator.array_size, state)
                if declarator.init is not None:
                    state = self._expr(declarator.init, state)
                self._declare(declarator, declarator.name, state)
            return state
        if isinstance(stmt, Assign):
            state = self._expr(stmt.value, state)
            return self._store_target(stmt.target, state)
        if isinstance(stmt, ExprStmt):
            return self._expr(stmt.expr, state)
        if isinstance(stmt, IfStmt):
            state = self._expr(stmt.cond, state)
            then_exit = self._stmt(stmt.then, _copy_state(state))
            if stmt.otherwise is not None:
                else_exit = self._stmt(stmt.otherwise, state)
            else:
                else_exit = state
            return _merge(then_exit, else_exit)
        if isinstance(stmt, WhileStmt):
            return self._while(stmt, state)
        if isinstance(stmt, ForStmt):
            return self._for(stmt, state)
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._expr(stmt.value, state)
            return None
        if isinstance(stmt, Break):
            if self.loop_stack:
                ctx = self.loop_stack[-1]
                ctx.breaks.append(_copy_state(state[:ctx.depth]))
            return None
        if isinstance(stmt, Continue):
            if self.loop_stack:
                ctx = self.loop_stack[-1]
                ctx.continues.append(_copy_state(state[:ctx.depth]))
            return None
        # Unknown statement kinds (none today) stay on the dict path.
        self._resolve_dead(stmt)
        return state

    def _store_target(self, target: Expr, state: _State,
                      ) -> _State:
        if state is None:
            self._resolve_dead(target)
            return None
        if isinstance(target, Identifier):
            self._resolve_write(target, target.name, state)
            return state
        if isinstance(target, ArrayIndex):
            state = self._expr(target.base, state)
            return self._expr(target.index, state)
        if isinstance(target, UnaryOp) and target.op == "*":
            return self._expr(target.operand, state)
        # Invalid assignment target: compiles to a runtime error; any
        # identifiers inside still get (dead-path) resolutions.
        self._resolve_dead(target)
        return state

    # -- loops -----------------------------------------------------------------

    def _while(self, stmt: WhileStmt, state: List[_ScopeState]) -> _State:
        entry = state
        exit_state: _State = None
        for _ in range(_MAX_LOOP_PASSES):
            ctx = _LoopCtx(len(entry))
            trial = _copy_state(entry)
            after_cond = self._expr(stmt.cond, trial)
            exit_state = _copy_state(after_cond)
            self.loop_stack.append(ctx)
            body_exit = self._stmt(stmt.body, _copy_state(after_cond))
            self.loop_stack.pop()
            after_iter = _merge_many([body_exit] + ctx.continues)
            new_entry = _merge(entry, after_iter)
            exit_state = _merge_many([exit_state] + ctx.breaks)
            if _states_equal(new_entry, entry):
                break
            entry = new_entry
        return exit_state

    def _for(self, stmt: ForStmt, state: List[_ScopeState]) -> _State:
        state.append(_ScopeState(stmt.node_id))
        if stmt.init is not None:
            state = self._stmt(stmt.init, state)
        if state is None:  # init returned/broke: cannot happen in practice
            self._resolve_dead(stmt.cond)
            self._resolve_dead(stmt.body)
            self._resolve_dead(stmt.update)
            return None
        entry = state
        exit_state: _State = None
        for _ in range(_MAX_LOOP_PASSES):
            ctx = _LoopCtx(len(entry))
            trial = _copy_state(entry)
            if stmt.cond is not None:
                after_cond = self._expr(stmt.cond, trial)
                exit_state = _copy_state(after_cond)
            else:
                after_cond = trial
                exit_state = None  # no condition: leaves only via break
            self.loop_stack.append(ctx)
            body_exit = self._stmt(stmt.body, _copy_state(after_cond))
            self.loop_stack.pop()
            after_body = _merge_many([body_exit] + ctx.continues)
            if after_body is not None and stmt.update is not None:
                after_update = self._stmt(stmt.update, after_body)
            else:
                if after_body is None:
                    self._resolve_dead(stmt.update)
                after_update = after_body
            new_entry = _merge(entry, after_update)
            exit_state = _merge_many([exit_state] + ctx.breaks)
            if _states_equal(new_entry, entry):
                break
            entry = new_entry
        if exit_state is not None:
            exit_state.pop()
        return exit_state

    # -- expression transfer functions -----------------------------------------

    def _expr(self, node: Expr, state: List[_ScopeState]) -> List[_ScopeState]:
        if isinstance(node, (IntLiteral, CharLiteral, StringLiteral)):
            return state
        if isinstance(node, Identifier):
            self._resolve_read(node, node.name, state)
            return state
        if isinstance(node, ArrayIndex):
            state = self._expr(node.base, state)
            return self._expr(node.index, state)
        if isinstance(node, UnaryOp):
            if node.op == "&":
                operand = node.operand
                if isinstance(operand, Identifier):
                    # Address-of reads the binding and may rebind it (scalar
                    # boxing) — same variable either way.
                    self._resolve_read(operand, operand.name, state)
                    return state
                if isinstance(operand, ArrayIndex):
                    state = self._expr(operand.base, state)
                    return self._expr(operand.index, state)
                self._resolve_dead(operand)
                return state
            return self._expr(node.operand, state)
        if isinstance(node, BinaryOp):
            state = self._expr(node.left, state)
            if node.op in ("&&", "||"):
                # The right operand evaluates on some executions only.
                right_exit = self._expr(node.right, _copy_state(state))
                return _merge(state, right_exit)
            return self._expr(node.right, state)
        if isinstance(node, TernaryOp):
            state = self._expr(node.cond, state)
            then_exit = self._expr(node.then, _copy_state(state))
            else_exit = self._expr(node.otherwise, state)
            return _merge(then_exit, else_exit)
        if isinstance(node, AssignExpr):
            state = self._expr(node.value, state)
            return self._store_target(node.target, state)
        if isinstance(node, Call):
            for arg in node.args:
                state = self._expr(arg, state)
            return state
        # Unknown expression kinds (none today).
        self._resolve_dead(node)
        return state

    # -- entry -----------------------------------------------------------------

    def resolve(self) -> FunctionResolution:
        base = _ScopeState(_BASE_SCOPE)
        for param in self.function.params:
            if param.name in base.names:
                # Duplicate parameter names collapse onto one binding at run
                # time (the last argument wins); keep that behaviour on the
                # named-cell path instead of modelling it.
                self._poison(param.name)
            base.names[param.name] = _DECLARED
            self._var(_BASE_SCOPE, param.name, is_param=True)
        self._stmt(self.function.body, [base])
        return self._finish()

    def _finish(self) -> FunctionResolution:
        resolution = FunctionResolution(name=self.function.name,
                                        fallback_names=set(self.fallback_names))
        # Slot assignment: every variable of a non-poisoned name, in first
        # (static) appearance order — parameters first by construction.
        slot_of: Dict[Tuple[int, str], int] = {}
        for key, var in sorted(self.vars.items(), key=lambda kv: kv[1].order):
            if var.name in self.fallback_names:
                continue
            slot_of[key] = len(resolution.slot_names)
            resolution.slot_names.append(var.name)
        resolution.nlocals = len(resolution.slot_names)
        for param in self.function.params:
            resolution.param_slots.append(
                slot_of.get((_BASE_SCOPE, param.name)))
        for node_id, target in self.accesses.items():
            if isinstance(target, _Var):
                slot = slot_of.get((target.scope_uid, target.name))
                if slot is None:
                    resolution.accesses[node_id] = (NAMED,)
                else:
                    resolution.accesses[node_id] = (SLOT, slot)
            elif target is GLOBAL:
                resolution.accesses[node_id] = (GLOBAL,)
            else:
                resolution.accesses[node_id] = (NAMED,)
        resolution.elide_scopes = not self.fallback_names
        if resolution.elide_scopes:
            # The VM's bare-frame call fast path relies on parameters
            # occupying slots 0..n-1 in declaration order; resolution
            # creates parameter variables first, so this holds whenever no
            # name fell back.
            assert resolution.param_slots == list(
                range(len(self.function.params)))
        resolution.int_slots, resolution.pointer_slots = \
            self._int_slot_analysis(slot_of)
        return resolution

    # -- int-type lattice --------------------------------------------------------

    def _int_slot_analysis(self, slot_of: Dict[Tuple[int, str], int],
                           ) -> Tuple[frozenset, frozenset]:
        """Prove which slots only ever hold integers.

        Second pass over the function body, after slot assignment: collect
        every write reaching each slotted variable (declarator initializers,
        assignments, parameter bindings) plus the *never-int* conditions
        (array/pointer declarations, pointer-typed parameters, address-taken
        variables — ``&x`` may rebind ``x`` to the boxing pointer).  Then run
        an optimistic fixpoint: start every non-never variable as INT and
        demote any whose reaching writes are not all provably int, until
        stable.  Optimism about declared types (``int`` parameters, ``int``
        callees) is sound because the VM guards every unboxed site at run
        time; the lattice only decides where the fast form is *worth
        emitting*, never what a value *is*.
        """

        never: Set[Tuple[int, str]] = set()
        writes: List[Tuple[Tuple[int, str], Optional[Expr]]] = []

        def var_key(node: Node) -> Optional[Tuple[int, str]]:
            target = self.accesses.get(node.node_id)
            if isinstance(target, _Var):
                return (target.scope_uid, target.name)
            return None

        for param in self.function.params:
            key = (_BASE_SCOPE, param.name)
            if key not in slot_of:
                continue
            type_name = param.type_name
            if type_name.pointer_depth or type_name.base not in _INT_BASES:
                never.add(key)
            # Declared-int parameters contribute no write: they start INT and
            # only in-body assignments can demote them.
        for node in self.function.body.walk():
            if isinstance(node, VarDecl):
                pointer_decl = (node.type_name.pointer_depth > 0
                                or node.type_name.base not in _INT_BASES)
                for declarator in node.declarators:
                    key = var_key(declarator)
                    if key is None:
                        continue
                    if declarator.is_array or pointer_decl:
                        never.add(key)
                    else:
                        # No initializer means the implicit int zero.
                        writes.append((key, declarator.init))
            elif isinstance(node, (Assign, AssignExpr)):
                target = node.target
                if isinstance(target, Identifier):
                    key = var_key(target)
                    if key is not None:
                        writes.append((key, node.value))
            elif isinstance(node, UnaryOp) and node.op == "&":
                operand = node.operand
                if isinstance(operand, Identifier):
                    key = var_key(operand)
                    if key is not None:
                        never.add(key)

        int_vars: Set[Tuple[int, str]] = {
            key for key in slot_of if key not in never}
        for _ in range(_MAX_LOOP_PASSES):
            demoted = {key for key, value in writes
                       if key in int_vars
                       and not self._provably_int(value, int_vars)}
            if not demoted:
                break
            int_vars -= demoted
        int_slots = frozenset(slot_of[key] for key in int_vars)
        pointer_slots = frozenset(
            slot_of[key] for key in never if key in slot_of)
        return int_slots, pointer_slots

    def _provably_int(self, node: Optional[Expr],
                      int_vars: Set[Tuple[int, str]]) -> bool:
        """Whether *node* evaluates to an integer under the current lattice."""

        if node is None:  # declarator without initializer: the implicit zero
            return True
        if isinstance(node, (IntLiteral, CharLiteral)):
            return True
        if isinstance(node, Identifier):
            target = self.accesses.get(node.node_id)
            return (isinstance(target, _Var)
                    and (target.scope_uid, target.name) in int_vars)
        if isinstance(node, UnaryOp):
            if node.op in ("&", "*"):
                return False
            return self._provably_int(node.operand, int_vars)
        if isinstance(node, BinaryOp):
            # Pointer arithmetic yields pointers, so both operands must be
            # ints; every int x int operator (including && / ||) yields int.
            return (self._provably_int(node.left, int_vars)
                    and self._provably_int(node.right, int_vars))
        if isinstance(node, TernaryOp):
            return (self._provably_int(node.then, int_vars)
                    and self._provably_int(node.otherwise, int_vars))
        if isinstance(node, AssignExpr):
            return self._provably_int(node.value, int_vars)
        if isinstance(node, Call):
            if node.name in self.int_functions:
                return True
            return node.name in _INT_BUILTINS
        # ArrayIndex (cells hold arbitrary values), StringLiteral, unknown.
        return False


_RESOLUTION_ATTR = "_scope_resolution_cache"


def resolve_program(program) -> ProgramResolution:
    """Resolve every function of *program* (cached per program instance)."""

    cached = getattr(program, _RESOLUTION_ATTR, None)
    if cached is not None and cached.version == RESOLVER_VERSION:
        return cached
    global_names = set(program.global_names())
    int_functions = {
        name for name, function in program.functions.items()
        if function.return_type.pointer_depth == 0
        and function.return_type.base in _INT_BASES}
    resolution = ProgramResolution(version=RESOLVER_VERSION)
    for name, function in program.functions.items():
        resolution.functions[name] = _FunctionResolver(
            function, global_names, int_functions).resolve()
    setattr(program, _RESOLUTION_ATTR, resolution)
    return resolution
