"""Control-flow graphs and branch-location enumeration for MiniC functions.

Two things downstream code needs from this module:

* :class:`BranchLocation` — the canonical identity of a branch *location* (a
  static ``if``/``while``/``for`` condition in the source).  The paper's whole
  approach revolves around deciding, per branch location, whether to
  instrument it; every analysis and the runtime logger agree on these ids.
* :class:`ControlFlowGraph` — a per-function graph of basic blocks, used by the
  static analysis for reachability/ordering queries and by tests to validate
  structural properties of workload programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lang.ast_nodes import (
    Block,
    Break,
    Continue,
    ForStmt,
    FunctionDef,
    IfStmt,
    Node,
    ReturnStmt,
    Stmt,
    TranslationUnit,
    WhileStmt,
    iter_branch_statements,
)


@dataclass(frozen=True, order=True)
class BranchLocation:
    """The static identity of one branch in the program source.

    Ordering and hashing are by ``(function, node_id)``, which makes branch
    enumeration deterministic for a given parse of the program.
    """

    function: str
    node_id: int
    line: int
    kind: str  # "if" | "while" | "for"

    def short(self) -> str:
        """Human-readable label used in reports and figures."""

        return f"{self.function}:{self.line}:{self.kind}"


def branch_location_for(function_name: str, stmt: Stmt) -> BranchLocation:
    """Build the :class:`BranchLocation` for a branch statement node."""

    if isinstance(stmt, IfStmt):
        kind = "if"
    elif isinstance(stmt, WhileStmt):
        kind = "while"
    elif isinstance(stmt, ForStmt):
        kind = "for"
    else:  # pragma: no cover - guarded by callers
        raise TypeError(f"not a branch statement: {stmt!r}")
    return BranchLocation(function=function_name, node_id=stmt.node_id,
                          line=stmt.line, kind=kind)


def enumerate_branch_locations(unit: TranslationUnit) -> List[BranchLocation]:
    """Return every branch location in the translation unit, in a stable order."""

    locations: List[BranchLocation] = []
    for function in unit.functions:
        for stmt in iter_branch_statements(function.body):
            locations.append(branch_location_for(function.name, stmt))
    return sorted(locations)


# ---------------------------------------------------------------------------
# Basic blocks
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A straight-line sequence of statements with a single entry and exit."""

    block_id: int
    statements: List[Stmt] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)
    branch: Optional[BranchLocation] = None
    label: str = ""

    def add_successor(self, other: "BasicBlock") -> None:
        if other.block_id not in self.successors:
            self.successors.append(other.block_id)
        if self.block_id not in other.predecessors:
            other.predecessors.append(self.block_id)


@dataclass
class ControlFlowGraph:
    """Control-flow graph of a single MiniC function."""

    function: str
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    entry_id: int = 0
    exit_id: int = 0

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(block_id=len(self.blocks), label=label)
        self.blocks[block.block_id] = block
        return block

    def branch_blocks(self) -> List[BasicBlock]:
        """Blocks that end in a conditional branch."""

        return [b for b in self.blocks.values() if b.branch is not None]

    def edges(self) -> Iterable[Tuple[int, int]]:
        for block in self.blocks.values():
            for succ in block.successors:
                yield (block.block_id, succ)

    def reachable_blocks(self) -> List[int]:
        """Block ids reachable from the entry block (DFS order)."""

        seen: List[int] = []
        stack = [self.entry_id]
        visited = set()
        while stack:
            block_id = stack.pop()
            if block_id in visited:
                continue
            visited.add(block_id)
            seen.append(block_id)
            stack.extend(reversed(self.blocks[block_id].successors))
        return seen


class _CFGBuilder:
    """Builds a CFG by a structural walk of the function body."""

    def __init__(self, function: FunctionDef) -> None:
        self.function = function
        self.cfg = ControlFlowGraph(function=function.name)
        self.exit_block = self.cfg.new_block("exit")
        self.cfg.exit_id = self.exit_block.block_id
        # (break_target, continue_target) stack for loops.
        self._loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []

    def build(self) -> ControlFlowGraph:
        entry = self.cfg.new_block("entry")
        self.cfg.entry_id = entry.block_id
        last = self._build_stmt(self.function.body, entry)
        if last is not None:
            last.add_successor(self.exit_block)
        return self.cfg

    # Each _build_* method returns the block where control continues, or None
    # if control cannot fall through (return/break/continue).

    def _build_stmt(self, stmt: Stmt, current: BasicBlock) -> Optional[BasicBlock]:
        if isinstance(stmt, Block):
            for child in stmt.statements:
                if current is None:
                    # Unreachable code after return/break: still record it in a
                    # detached block so branch enumeration remains complete.
                    current = self.cfg.new_block("unreachable")
                current = self._build_stmt(child, current)
            return current
        if isinstance(stmt, IfStmt):
            return self._build_if(stmt, current)
        if isinstance(stmt, WhileStmt):
            return self._build_while(stmt, current)
        if isinstance(stmt, ForStmt):
            return self._build_for(stmt, current)
        if isinstance(stmt, ReturnStmt):
            current.statements.append(stmt)
            current.add_successor(self.exit_block)
            return None
        if isinstance(stmt, Break):
            current.statements.append(stmt)
            if self._loop_stack:
                current.add_successor(self._loop_stack[-1][0])
            return None
        if isinstance(stmt, Continue):
            current.statements.append(stmt)
            if self._loop_stack:
                current.add_successor(self._loop_stack[-1][1])
            return None
        current.statements.append(stmt)
        return current

    def _build_if(self, stmt: IfStmt, current: BasicBlock) -> Optional[BasicBlock]:
        current.statements.append(stmt)
        current.branch = branch_location_for(self.function.name, stmt)
        then_block = self.cfg.new_block("then")
        join_block = self.cfg.new_block("join")
        current.add_successor(then_block)
        then_end = self._build_stmt(stmt.then, then_block)
        if then_end is not None:
            then_end.add_successor(join_block)
        if stmt.otherwise is not None:
            else_block = self.cfg.new_block("else")
            current.add_successor(else_block)
            else_end = self._build_stmt(stmt.otherwise, else_block)
            if else_end is not None:
                else_end.add_successor(join_block)
        else:
            current.add_successor(join_block)
        return join_block

    def _build_while(self, stmt: WhileStmt, current: BasicBlock) -> Optional[BasicBlock]:
        header = self.cfg.new_block("while-header")
        body_block = self.cfg.new_block("while-body")
        after = self.cfg.new_block("while-after")
        current.add_successor(header)
        header.statements.append(stmt)
        header.branch = branch_location_for(self.function.name, stmt)
        header.add_successor(body_block)
        header.add_successor(after)
        self._loop_stack.append((after, header))
        body_end = self._build_stmt(stmt.body, body_block)
        self._loop_stack.pop()
        if body_end is not None:
            body_end.add_successor(header)
        return after

    def _build_for(self, stmt: ForStmt, current: BasicBlock) -> Optional[BasicBlock]:
        if stmt.init is not None:
            current = self._build_stmt(stmt.init, current) or self.cfg.new_block("for-init")
        header = self.cfg.new_block("for-header")
        body_block = self.cfg.new_block("for-body")
        update_block = self.cfg.new_block("for-update")
        after = self.cfg.new_block("for-after")
        current.add_successor(header)
        header.statements.append(stmt)
        if stmt.cond is not None:
            header.branch = branch_location_for(self.function.name, stmt)
            header.add_successor(body_block)
            header.add_successor(after)
        else:
            header.add_successor(body_block)
        self._loop_stack.append((after, update_block))
        body_end = self._build_stmt(stmt.body, body_block)
        self._loop_stack.pop()
        if body_end is not None:
            body_end.add_successor(update_block)
        if stmt.update is not None:
            update_end = self._build_stmt(stmt.update, update_block)
        else:
            update_end = update_block
        if update_end is not None:
            update_end.add_successor(header)
        return after


def build_cfg(function: FunctionDef) -> ControlFlowGraph:
    """Build the control-flow graph of *function*."""

    return _CFGBuilder(function).build()


def build_all_cfgs(unit: TranslationUnit) -> Dict[str, ControlFlowGraph]:
    """Build a CFG for every function in the translation unit."""

    return {f.name: build_cfg(f) for f in unit.functions}
