"""Exception hierarchy for the MiniC language substrate."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for every error raised by the MiniC toolchain."""


class LexError(MiniCError):
    """Raised when the lexer encounters an invalid character or literal."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(MiniCError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class SemanticError(MiniCError):
    """Raised for semantic problems detected before execution.

    Examples: duplicate function definitions, a call to an undefined function
    discovered while building the call graph, or a ``main`` function with an
    unsupported signature.
    """


class RuntimeMiniCError(MiniCError):
    """Base class for errors raised while interpreting a MiniC program."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"{message} (line {line})"
        super().__init__(message)
        self.line = line


class DivisionByZeroError(RuntimeMiniCError):
    """Integer division or modulo by zero."""


class MemoryError_(RuntimeMiniCError):
    """Out-of-bounds access, null dereference, or invalid pointer arithmetic.

    The trailing underscore avoids shadowing the Python built-in
    :class:`MemoryError`, which has different semantics.
    """


class ProgramCrash(RuntimeMiniCError):
    """The simulated equivalent of a segfault / abort in the guest program.

    Replay treats reaching the crash *location* as the reproduction target, so
    the crash carries its source line and the name of the function in which it
    occurred.
    """

    def __init__(self, message: str, line: int = 0, function: str = "") -> None:
        super().__init__(message, line)
        self.function = function


class StepLimitExceeded(RuntimeMiniCError):
    """The interpreter exceeded the configured step budget."""


class ExitProgram(Exception):
    """Internal control-flow signal: the guest program called ``exit(code)``.

    Not a :class:`MiniCError` because it is not an error — it unwinds the
    interpreter back to the top-level run loop.
    """

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code
