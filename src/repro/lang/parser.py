"""Recursive-descent parser for MiniC.

The grammar is a practical subset of C sufficient for the workloads shipped
with this reproduction (coreutils-style utilities, a diff implementation, and
an event-driven web server):

* function definitions and global variable declarations,
* ``int`` / ``char`` / ``void`` base types with arbitrary pointer depth,
* local declarations with optional array size and initialiser,
* ``if``/``else``, ``while``, ``for``, ``break``, ``continue``, ``return``,
* assignments (``=``, ``+=``, ``-=``, ``*=``, ``/=``, ``%=``), pre/post
  increment and decrement,
* the usual C expression grammar including ``?:``, short-circuit ``&&``/``||``,
  array indexing, address-of, dereference, and function calls.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.lang.ast_nodes import (
    ArrayIndex,
    Assign,
    AssignExpr,
    BinaryOp,
    Block,
    Break,
    Call,
    CharLiteral,
    Continue,
    Declarator,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    Param,
    ReturnStmt,
    Stmt,
    StringLiteral,
    TernaryOp,
    TranslationUnit,
    TypeName,
    UnaryOp,
    VarDecl,
    WhileStmt,
    reset_node_ids,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, TokenType, tokenize

_TYPE_KEYWORDS = {"int", "char", "void", "long", "unsigned"}
_COMPOUND_ASSIGN = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    """Parses a token stream into a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"{message}, got {token.value!r}", token.line, token.column)

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if not token.is_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _at_type(self) -> bool:
        return self._peek().is_keyword(*_TYPE_KEYWORDS)

    # -- top level ---------------------------------------------------------------

    def parse(self) -> TranslationUnit:
        """Parse the whole token stream."""

        unit = TranslationUnit(line=1, column=1)
        while self._peek().type is not TokenType.EOF:
            item = self._parse_top_level()
            unit.items.append(item)
            if isinstance(item, FunctionDef):
                unit.functions.append(item)
            else:
                unit.globals.append(item)
        return unit

    def _parse_top_level(self):
        start = self._peek()
        type_name = self._parse_type()
        name_token = self._expect_ident()
        if self._peek().is_op("("):
            return self._parse_function(type_name, name_token, start)
        decl = self._parse_var_decl_tail(type_name, name_token, start)
        return GlobalDecl(decl=decl, line=start.line, column=start.column)

    def _parse_type(self) -> TypeName:
        token = self._peek()
        if not token.is_keyword(*_TYPE_KEYWORDS):
            raise self._error("expected type name")
        base_parts = []
        while self._peek().is_keyword(*_TYPE_KEYWORDS):
            base_parts.append(self._advance().value)
        depth = 0
        while self._peek().is_op("*"):
            self._advance()
            depth += 1
        return TypeName(base=" ".join(base_parts), pointer_depth=depth,
                        line=token.line, column=token.column)

    def _parse_function(self, return_type: TypeName, name_token: Token,
                        start: Token) -> FunctionDef:
        self._expect_op("(")
        params: List[Param] = []
        if self._peek().is_keyword("void") and self._peek(1).is_op(")"):
            self._advance()
        elif not self._peek().is_op(")"):
            while True:
                p_start = self._peek()
                p_type = self._parse_type()
                p_name = self._expect_ident()
                # Accept trailing [] on parameters (arrays decay to pointers).
                while self._peek().is_op("["):
                    self._advance()
                    if not self._peek().is_op("]"):
                        self._advance()
                    self._expect_op("]")
                    p_type = TypeName(p_type.base, p_type.pointer_depth + 1,
                                      line=p_type.line, column=p_type.column)
                params.append(Param(type_name=p_type, name=p_name.value,
                                    line=p_start.line, column=p_start.column))
                if self._peek().is_op(","):
                    self._advance()
                    continue
                break
        self._expect_op(")")
        body = self._parse_block()
        return FunctionDef(return_type=return_type, name=name_token.value,
                           params=params, body=body,
                           line=start.line, column=start.column)

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> Block:
        open_tok = self._expect_op("{")
        statements: List[Stmt] = []
        while not self._peek().is_op("}"):
            if self._peek().type is TokenType.EOF:
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect_op("}")
        return Block(statements=statements, line=open_tok.line, column=open_tok.column)

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.is_op("{"):
            return self._parse_block()
        if token.is_op(";"):
            self._advance()
            return Block(statements=[], line=token.line, column=token.column)
        if self._at_type():
            return self._parse_local_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value: Optional[Expr] = None
            if not self._peek().is_op(";"):
                value = self._parse_expression()
            self._expect_op(";")
            return ReturnStmt(value=value, line=token.line, column=token.column)
        if token.is_keyword("break"):
            self._advance()
            self._expect_op(";")
            return Break(line=token.line, column=token.column)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_op(";")
            return Continue(line=token.line, column=token.column)
        stmt = self._parse_expression_statement()
        self._expect_op(";")
        return stmt

    def _parse_local_decl(self) -> VarDecl:
        start = self._peek()
        type_name = self._parse_type()
        name_token = self._expect_ident()
        return self._parse_var_decl_tail(type_name, name_token, start)

    def _parse_var_decl_tail(self, type_name: TypeName, first_name: Token,
                             start: Token) -> VarDecl:
        declarators = [self._parse_declarator(first_name)]
        while self._peek().is_op(","):
            self._advance()
            # Subsequent declarators may carry their own pointer stars.
            while self._peek().is_op("*"):
                self._advance()
            declarators.append(self._parse_declarator(self._expect_ident()))
        self._expect_op(";")
        return VarDecl(type_name=type_name, declarators=declarators,
                       line=start.line, column=start.column)

    def _parse_declarator(self, name_token: Token) -> Declarator:
        decl = Declarator(name=name_token.value, line=name_token.line,
                          column=name_token.column)
        if self._peek().is_op("["):
            self._advance()
            decl.is_array = True
            if not self._peek().is_op("]"):
                decl.array_size = self._parse_expression()
            self._expect_op("]")
        if self._peek().is_op("="):
            self._advance()
            decl.init = self._parse_expression()
        return decl

    def _parse_if(self) -> IfStmt:
        token = self._advance()  # 'if'
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        then = self._parse_statement()
        otherwise: Optional[Stmt] = None
        if self._peek().is_keyword("else"):
            self._advance()
            otherwise = self._parse_statement()
        return IfStmt(cond=cond, then=then, otherwise=otherwise,
                      line=token.line, column=token.column)

    def _parse_while(self) -> WhileStmt:
        token = self._advance()  # 'while'
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        body = self._parse_statement()
        return WhileStmt(cond=cond, body=body, line=token.line, column=token.column)

    def _parse_for(self) -> ForStmt:
        token = self._advance()  # 'for'
        self._expect_op("(")
        init: Optional[Stmt] = None
        if self._peek().is_op(";"):
            self._advance()
        elif self._at_type():
            init = self._parse_local_decl()
        else:
            init = self._parse_expression_statement()
            self._expect_op(";")
        cond: Optional[Expr] = None
        if not self._peek().is_op(";"):
            cond = self._parse_expression()
        self._expect_op(";")
        update: Optional[Stmt] = None
        if not self._peek().is_op(")"):
            update = self._parse_expression_statement()
        self._expect_op(")")
        body = self._parse_statement()
        return ForStmt(init=init, cond=cond, update=update, body=body,
                       line=token.line, column=token.column)

    def _parse_expression_statement(self) -> Stmt:
        """Parse an assignment or expression used as a statement (no ``;``)."""

        token = self._peek()
        expr = self._parse_expression()
        if isinstance(expr, AssignExpr):
            return Assign(target=expr.target, value=expr.value, op="=",
                          line=token.line, column=token.column)
        return ExprStmt(expr=expr, line=token.line, column=token.column)

    # -- expressions ----------------------------------------------------------------

    def _parse_expression(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_ternary()
        token = self._peek()
        if token.type is TokenType.OP and token.value in _COMPOUND_ASSIGN:
            op = self._advance().value
            right = self._parse_assignment()
            if op != "=":
                # Desugar ``a += b`` into ``a = a + b`` so downstream passes
                # only ever see plain assignments.
                right = BinaryOp(op=op[0], left=left, right=right,
                                 line=token.line, column=token.column)
            return AssignExpr(target=left, value=right,
                              line=token.line, column=token.column)
        return left

    def _parse_ternary(self) -> Expr:
        cond = self._parse_logical_or()
        if self._peek().is_op("?"):
            token = self._advance()
            then = self._parse_expression()
            self._expect_op(":")
            otherwise = self._parse_assignment()
            return TernaryOp(cond=cond, then=then, otherwise=otherwise,
                             line=token.line, column=token.column)
        return cond

    def _parse_binary_level(self, operators, next_level) -> Expr:
        left = next_level()
        while self._peek().type is TokenType.OP and self._peek().value in operators:
            token = self._advance()
            right = next_level()
            left = BinaryOp(op=token.value, left=left, right=right,
                            line=token.line, column=token.column)
        return left

    def _parse_logical_or(self) -> Expr:
        return self._parse_binary_level({"||"}, self._parse_logical_and)

    def _parse_logical_and(self) -> Expr:
        return self._parse_binary_level({"&&"}, self._parse_bitwise)

    def _parse_bitwise(self) -> Expr:
        return self._parse_binary_level({"&", "|", "^"}, self._parse_equality)

    def _parse_equality(self) -> Expr:
        return self._parse_binary_level({"==", "!="}, self._parse_relational)

    def _parse_relational(self) -> Expr:
        return self._parse_binary_level({"<", "<=", ">", ">="}, self._parse_shift)

    def _parse_shift(self) -> Expr:
        return self._parse_binary_level({"<<", ">>"}, self._parse_additive)

    def _parse_additive(self) -> Expr:
        return self._parse_binary_level({"+", "-"}, self._parse_multiplicative)

    def _parse_multiplicative(self) -> Expr:
        return self._parse_binary_level({"*", "/", "%"}, self._parse_unary)

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.is_op("-", "!", "*", "&", "+", "~"):
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(op=token.value, operand=operand,
                           line=token.line, column=token.column)
        if token.is_op("++", "--"):
            self._advance()
            operand = self._parse_unary()
            # Desugar ``++x`` into ``x = x + 1`` in expression position.
            one = IntLiteral(value=1, line=token.line, column=token.column)
            new_value = BinaryOp(op=token.value[0], left=operand, right=one,
                                 line=token.line, column=token.column)
            return AssignExpr(target=operand, value=new_value,
                              line=token.line, column=token.column)
        if token.is_keyword("sizeof"):
            self._advance()
            self._expect_op("(")
            if self._at_type():
                self._parse_type()
            else:
                self._parse_expression()
            self._expect_op(")")
            # All MiniC cells are one "word"; sizeof is constant 1 by design.
            return IntLiteral(value=1, line=token.line, column=token.column)
        if token.is_op("(") and self._peek(1).is_keyword(*_TYPE_KEYWORDS):
            # Cast: parse and ignore the type, keep the operand expression.
            self._advance()
            self._parse_type()
            self._expect_op(")")
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_op("["):
                self._advance()
                index = self._parse_expression()
                self._expect_op("]")
                expr = ArrayIndex(base=expr, index=index,
                                  line=token.line, column=token.column)
            elif token.is_op("(") and isinstance(expr, Identifier):
                self._advance()
                args: List[Expr] = []
                if not self._peek().is_op(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if self._peek().is_op(","):
                            self._advance()
                            continue
                        break
                self._expect_op(")")
                expr = Call(name=expr.name, args=args,
                            line=token.line, column=token.column)
            elif token.is_op("++", "--"):
                self._advance()
                one = IntLiteral(value=1, line=token.line, column=token.column)
                new_value = BinaryOp(op=token.value[0], left=expr, right=one,
                                     line=token.line, column=token.column)
                expr = AssignExpr(target=expr, value=new_value,
                                  line=token.line, column=token.column)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return IntLiteral(value=token.value, line=token.line, column=token.column)
        if token.type is TokenType.CHAR:
            self._advance()
            return CharLiteral(value=token.value, line=token.line, column=token.column)
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(value=token.value, line=token.line, column=token.column)
        if token.type is TokenType.IDENT:
            self._advance()
            return Identifier(name=token.value, line=token.line, column=token.column)
        if token.is_op("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        raise self._error("expected expression")


#: Node ids come from a process-global counter, so concurrent parses would
#: interleave their id sequences; the lock keeps each parse atomic.
_PARSE_LOCK = threading.Lock()


def parse_program(source: str) -> TranslationUnit:
    """Lex and parse *source*, returning the :class:`TranslationUnit` root.

    Node ids restart at 1 for every parse, which makes them (and with them
    every :class:`~repro.lang.cfg.BranchLocation`) a pure function of the
    source text: two parses of the same program — in this process, in a
    replay worker process, or on the developer machine loading a trace file
    recorded elsewhere — agree on all branch identities.  The trace format's
    matched-binaries check relies on this, so parses are serialized under a
    lock (parsing happens at pipeline setup, never on the replay hot path).
    """

    with _PARSE_LOCK:
        reset_node_ids()
        return Parser(tokenize(source)).parse()
