"""AST node classes for MiniC.

Every node carries a unique integer ``node_id`` (assigned at construction, in
parse order) and a source ``line``/``column``.  The ``node_id`` of an
``IfStmt``, ``WhileStmt`` or ``ForStmt`` is what the rest of the system uses as
the identity of the corresponding *branch location* (see
:class:`repro.lang.cfg.BranchLocation`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

_NODE_COUNTER = itertools.count(1)


def _next_node_id() -> int:
    return next(_NODE_COUNTER)


def reset_node_ids() -> None:
    """Restart the global node-id counter at 1.

    Called by :func:`repro.lang.parser.parse_program` (under its parse lock)
    before every parse, so node ids — and the branch-location identities and
    plan fingerprints derived from them — are a pure function of the source
    text.  The trace format's matched-binaries check depends on this.
    """

    global _NODE_COUNTER
    _NODE_COUNTER = itertools.count(1)


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = 0
    column: int = 0
    node_id: int = field(default_factory=_next_node_id)

    def children(self) -> Sequence["Node"]:
        """Return the direct child nodes, in source order."""

        return ()

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant in pre-order."""

        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass
class TypeName(Node):
    """A (loosely checked) type: a base name plus a pointer depth.

    ``int``  -> TypeName("int", 0)
    ``char*``-> TypeName("char", 1)
    ``char**``-> TypeName("char", 2)
    """

    base: str = "int"
    pointer_depth: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.base + "*" * self.pointer_depth

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class CharLiteral(Expr):
    value: int = 0  # stored as the character code


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class ArrayIndex(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.base, self.index)


@dataclass
class UnaryOp(Expr):
    """Unary operators: ``-`` ``!`` ``*`` (deref) ``&`` (address-of) ``+``."""

    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.operand,)


@dataclass
class BinaryOp(Expr):
    """Binary operators, including short-circuit ``&&`` and ``||``."""

    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.left, self.right)


@dataclass
class TernaryOp(Expr):
    """The C conditional expression ``cond ? then : otherwise``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.cond, self.then, self.otherwise)


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return tuple(self.args)


@dataclass
class AssignExpr(Expr):
    """Assignment used in expression position (``x = e`` inside a condition)."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.target, self.value)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statement nodes."""


@dataclass
class Declarator(Node):
    """One declared name within a :class:`VarDecl`."""

    name: str = ""
    array_size: Optional[Expr] = None
    init: Optional[Expr] = None
    is_array: bool = False

    def children(self) -> Sequence[Node]:
        out: List[Node] = []
        if self.array_size is not None:
            out.append(self.array_size)
        if self.init is not None:
            out.append(self.init)
        return tuple(out)


@dataclass
class VarDecl(Stmt):
    type_name: TypeName = field(default_factory=TypeName)
    declarators: List[Declarator] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return tuple(self.declarators)


@dataclass
class Assign(Stmt):
    """Statement-level assignment: ``target op value;`` with op in {=, +=, -=}."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    op: str = "="

    def children(self) -> Sequence[Node]:
        return (self.target, self.value)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.expr,)


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return tuple(self.statements)


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None

    def children(self) -> Sequence[Node]:
        out: List[Node] = [self.cond, self.then]
        if self.otherwise is not None:
            out.append(self.otherwise)
        return tuple(out)


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.cond, self.body)


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        out: List[Node] = []
        if self.init is not None:
            out.append(self.init)
        if self.cond is not None:
            out.append(self.cond)
        if self.update is not None:
            out.append(self.update)
        out.append(self.body)
        return tuple(out)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Sequence[Node]:
        return (self.value,) if self.value is not None else ()


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    type_name: TypeName = field(default_factory=TypeName)
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: TypeName = field(default_factory=TypeName)
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return tuple(self.params) + (self.body,)


@dataclass
class GlobalDecl(Node):
    decl: VarDecl = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.decl,)


@dataclass
class TranslationUnit(Node):
    """The root of a parsed MiniC source file."""

    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    items: List[Node] = field(default_factory=list)  # in source order

    def children(self) -> Sequence[Node]:
        return tuple(self.items)


BRANCH_STATEMENTS = (IfStmt, WhileStmt, ForStmt)
"""Statement classes whose condition constitutes a *branch location*."""


def iter_branch_statements(root: Node) -> Iterator[Stmt]:
    """Yield every branch statement (if/while/for with a condition) under *root*."""

    for node in root.walk():
        if isinstance(node, BRANCH_STATEMENTS):
            if isinstance(node, ForStmt) and node.cond is None:
                continue
            yield node
