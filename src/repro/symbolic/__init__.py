"""Symbolic expressions, path constraints and a small-domain constraint solver.

This package is the substrate under both the concolic engine (dynamic analysis)
and the replay engine.  The paper's inputs are argv bytes and request bytes, so
symbolic variables here are bounded integers (bytes by default) and the solver
is a propagation + backtracking search over those bounded domains.
"""

from repro.symbolic.expr import (
    SymBinOp,
    SymConst,
    SymExpr,
    SymUnOp,
    SymVar,
    sym_and,
    sym_bin,
    sym_const,
    sym_not,
    sym_var,
)
from repro.symbolic.simplify import evaluate, simplify, variables
from repro.symbolic.constraints import Constraint, ConstraintSet
from repro.symbolic.solver import SolverResult, SolverStats, solve

__all__ = [
    "Constraint",
    "ConstraintSet",
    "SolverResult",
    "SolverStats",
    "SymBinOp",
    "SymConst",
    "SymExpr",
    "SymUnOp",
    "SymVar",
    "evaluate",
    "simplify",
    "solve",
    "sym_and",
    "sym_bin",
    "sym_const",
    "sym_not",
    "sym_var",
    "variables",
]
