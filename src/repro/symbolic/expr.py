"""Symbolic expression trees.

Expressions are immutable and hashable, which lets constraint sets be stored in
Python sets and compared structurally.  Arithmetic follows MiniC's integer
semantics (Python ints, C-style truncating division towards zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"})
COMPARE_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
BOOL_OPS = frozenset({"&&", "||"})
UNARY_OPS = frozenset({"-", "!", "~"})

_NEGATED_COMPARE = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(frozen=True)
class SymExpr:
    """Base class for all symbolic expressions."""

    def is_boolean(self) -> bool:
        """True when the expression denotes a truth value (0/1)."""

        return False

    def negated(self) -> "SymExpr":
        """Return the logical negation of this expression."""

        return SymUnOp("!", self)


@dataclass(frozen=True)
class SymConst(SymExpr):
    """A constant integer."""

    value: int

    def __str__(self) -> str:
        return str(self.value)

    def is_boolean(self) -> bool:
        return self.value in (0, 1)


@dataclass(frozen=True)
class SymVar(SymExpr):
    """A symbolic input variable with an inclusive integer domain.

    By default variables are bytes (0..255), matching argv characters and the
    bytes returned by the simulated ``read``/``recv`` syscalls.  Syscall return
    values use wider (or signed) domains, e.g. ``read`` returns -1..N.
    """

    name: str
    lo: int = 0
    hi: int = 255

    def __str__(self) -> str:
        return self.name

    @property
    def domain_size(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True)
class SymUnOp(SymExpr):
    """A unary operation: negation, logical not, bitwise not."""

    op: str
    operand: SymExpr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"

    def is_boolean(self) -> bool:
        return self.op == "!"

    def negated(self) -> SymExpr:
        if self.op == "!":
            return self.operand
        return SymUnOp("!", self)


@dataclass(frozen=True)
class SymBinOp(SymExpr):
    """A binary operation over two symbolic expressions."""

    op: str
    left: SymExpr
    right: SymExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"

    def is_boolean(self) -> bool:
        return self.op in COMPARE_OPS or self.op in BOOL_OPS

    def negated(self) -> SymExpr:
        if self.op in _NEGATED_COMPARE:
            return SymBinOp(_NEGATED_COMPARE[self.op], self.left, self.right)
        if self.op == "&&":
            return SymBinOp("||", self.left.negated(), self.right.negated())
        if self.op == "||":
            return SymBinOp("&&", self.left.negated(), self.right.negated())
        return SymUnOp("!", self)


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def sym_const(value: int) -> SymConst:
    """Build a constant expression."""

    return SymConst(int(value))


def sym_var(name: str, lo: int = 0, hi: int = 255) -> SymVar:
    """Build a symbolic variable with the inclusive domain ``[lo, hi]``."""

    if lo > hi:
        raise ValueError(f"empty domain for {name}: [{lo}, {hi}]")
    return SymVar(name, lo, hi)


def sym_bin(op: str, left: SymExpr, right: SymExpr) -> SymBinOp:
    """Build a binary operation, validating the operator."""

    if op not in ARITH_OPS and op not in COMPARE_OPS and op not in BOOL_OPS:
        raise ValueError(f"unsupported binary operator {op!r}")
    return SymBinOp(op, left, right)


def sym_not(expr: SymExpr) -> SymExpr:
    """Logical negation (uses the structural negation when available)."""

    return expr.negated()


def sym_and(*exprs: SymExpr) -> SymExpr:
    """Conjunction of one or more boolean expressions."""

    if not exprs:
        return sym_const(1)
    result = exprs[0]
    for expr in exprs[1:]:
        result = SymBinOp("&&", result, expr)
    return result


def as_condition(expr: SymExpr) -> SymExpr:
    """Coerce an arbitrary integer expression into a boolean condition.

    MiniC (like C) treats any non-zero value as true, so ``if (x)`` becomes the
    condition ``x != 0``.
    """

    if expr.is_boolean():
        return expr
    return SymBinOp("!=", expr, sym_const(0))
