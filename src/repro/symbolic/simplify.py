"""Evaluation, simplification and variable extraction for symbolic expressions."""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.symbolic.expr import (
    ARITH_OPS,
    BOOL_OPS,
    COMPARE_OPS,
    SymBinOp,
    SymConst,
    SymExpr,
    SymUnOp,
    SymVar,
    as_condition,
    sym_const,
)


def _c_div(a: int, b: int) -> int:
    """C-style integer division: truncation towards zero."""

    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _c_mod(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""

    return a - _c_div(a, b) * b


def _apply_binary(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise ZeroDivisionError("symbolic evaluation divided by zero")
        return _c_div(a, b)
    if op == "%":
        if b == 0:
            raise ZeroDivisionError("symbolic evaluation modulo by zero")
        return _c_mod(a, b)
    if op == "<<":
        return a << (b & 63)
    if op == ">>":
        return a >> (b & 63)
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise ValueError(f"unknown binary operator {op!r}")


def _apply_unary(op: str, a: int) -> int:
    if op == "-":
        return -a
    if op == "!":
        return int(not a)
    if op == "~":
        return ~a
    raise ValueError(f"unknown unary operator {op!r}")


def evaluate(expr: SymExpr, assignment: Mapping[str, int]) -> int:
    """Evaluate *expr* under a full assignment of its variables.

    Raises :class:`KeyError` if a variable is missing from the assignment.
    """

    if isinstance(expr, SymConst):
        return expr.value
    if isinstance(expr, SymVar):
        return assignment[expr.name]
    if isinstance(expr, SymUnOp):
        return _apply_unary(expr.op, evaluate(expr.operand, assignment))
    if isinstance(expr, SymBinOp):
        # Short-circuit semantics mirror the interpreter's.
        if expr.op == "&&":
            left = evaluate(expr.left, assignment)
            if not left:
                return 0
            return int(bool(evaluate(expr.right, assignment)))
        if expr.op == "||":
            left = evaluate(expr.left, assignment)
            if left:
                return 1
            return int(bool(evaluate(expr.right, assignment)))
        return _apply_binary(expr.op, evaluate(expr.left, assignment),
                             evaluate(expr.right, assignment))
    raise TypeError(f"not a symbolic expression: {expr!r}")


def try_evaluate(expr: SymExpr, assignment: Mapping[str, int]) -> Optional[int]:
    """Like :func:`evaluate` but returns ``None`` when a variable is unassigned
    or the evaluation hits a division by zero."""

    try:
        return evaluate(expr, assignment)
    except (KeyError, ZeroDivisionError):
        return None


def variables(expr: SymExpr) -> FrozenSet[SymVar]:
    """Return the set of :class:`SymVar` nodes appearing in *expr*."""

    found: Set[SymVar] = set()
    _collect_variables(expr, found)
    return frozenset(found)


def _collect_variables(expr: SymExpr, out: Set[SymVar]) -> None:
    if isinstance(expr, SymVar):
        out.add(expr)
    elif isinstance(expr, SymUnOp):
        _collect_variables(expr.operand, out)
    elif isinstance(expr, SymBinOp):
        _collect_variables(expr.left, out)
        _collect_variables(expr.right, out)


def variable_names(expr: SymExpr) -> FrozenSet[str]:
    """Names of variables appearing in *expr*."""

    return frozenset(v.name for v in variables(expr))


def simplify(expr: SymExpr) -> SymExpr:
    """Structurally simplify *expr*: constant folding plus a few identities.

    The simplifier is conservative — it never changes the value of the
    expression under any assignment — and it is idempotent.
    """

    if isinstance(expr, (SymConst, SymVar)):
        return expr
    if isinstance(expr, SymUnOp):
        operand = simplify(expr.operand)
        if isinstance(operand, SymConst):
            return sym_const(_apply_unary(expr.op, operand.value))
        if expr.op == "!" and isinstance(operand, SymUnOp) and operand.op == "!":
            inner = operand.operand
            if inner.is_boolean():
                return inner
        if expr.op == "-" and isinstance(operand, SymUnOp) and operand.op == "-":
            return operand.operand
        return SymUnOp(expr.op, operand)
    if isinstance(expr, SymBinOp):
        left = simplify(expr.left)
        right = simplify(expr.right)
        if isinstance(left, SymConst) and isinstance(right, SymConst):
            try:
                return sym_const(_apply_binary(expr.op, left.value, right.value))
            except ZeroDivisionError:
                return SymBinOp(expr.op, left, right)
        # Arithmetic identities.
        if expr.op == "+":
            if isinstance(left, SymConst) and left.value == 0:
                return right
            if isinstance(right, SymConst) and right.value == 0:
                return left
        if expr.op == "-" and isinstance(right, SymConst) and right.value == 0:
            return left
        if expr.op == "*":
            for a, b in ((left, right), (right, left)):
                if isinstance(a, SymConst):
                    if a.value == 0:
                        return sym_const(0)
                    if a.value == 1:
                        return b
        # Boolean identities.  The result of && / || is always 0 or 1, so the
        # surviving operand must be coerced to a boolean condition.
        if expr.op == "&&":
            if isinstance(left, SymConst):
                return simplify(as_condition(right)) if left.value else sym_const(0)
            if isinstance(right, SymConst):
                return simplify(as_condition(left)) if right.value else sym_const(0)
        if expr.op == "||":
            if isinstance(left, SymConst):
                return sym_const(1) if left.value else simplify(as_condition(right))
            if isinstance(right, SymConst):
                return sym_const(1) if right.value else simplify(as_condition(left))
        # x == x, x != x and friends over identical subtrees.
        if expr.op in COMPARE_OPS and left == right:
            return sym_const(_apply_binary(expr.op, 0, 0))
        return SymBinOp(expr.op, left, right)
    raise TypeError(f"not a symbolic expression: {expr!r}")


def substitute(expr: SymExpr, assignment: Mapping[str, int]) -> SymExpr:
    """Replace any assigned variables with constants and simplify the result."""

    if isinstance(expr, SymConst):
        return expr
    if isinstance(expr, SymVar):
        if expr.name in assignment:
            return sym_const(assignment[expr.name])
        return expr
    if isinstance(expr, SymUnOp):
        return simplify(SymUnOp(expr.op, substitute(expr.operand, assignment)))
    if isinstance(expr, SymBinOp):
        return simplify(SymBinOp(expr.op,
                                 substitute(expr.left, assignment),
                                 substitute(expr.right, assignment)))
    raise TypeError(f"not a symbolic expression: {expr!r}")
