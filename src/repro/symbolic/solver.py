"""A small-domain constraint solver for path constraints.

The solver is intentionally simple — the paper relies on an off-the-shelf style
solver for constraints over program inputs, and in our workloads those inputs
are argv bytes, request bytes, and bounded syscall return values.  The solver
therefore works over bounded integer domains with:

1. constant-folding / trivial unsat detection,
2. unary-constraint domain filtering (constraints mentioning a single
   variable prune that variable's domain by enumeration),
3. depth-first backtracking search with forward checking, value ordering that
   prefers a caller-supplied *hint* assignment (the concrete input of the run
   that produced the constraints — the "concolic" advantage discussed in §6 of
   the paper), and a node budget so a pathological constraint set fails fast
   instead of hanging the exploration loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.symbolic.constraints import Constraint, ConstraintSet
from repro.symbolic.expr import SymBinOp, SymConst, SymExpr, SymUnOp, SymVar, sym_const
from repro.symbolic.simplify import simplify, substitute, try_evaluate, variables

_MAX_ENUMERABLE_DOMAIN = 4096
_DEFAULT_NODE_BUDGET = 200_000


@dataclass
class SolverStats:
    """Counters describing the work a single ``solve`` call performed."""

    nodes: int = 0
    propagations: int = 0
    backtracks: int = 0
    wall_seconds: float = 0.0
    budget_exhausted: bool = False


@dataclass
class SolverResult:
    """Outcome of a ``solve`` call."""

    satisfiable: bool
    assignment: Optional[Dict[str, int]]
    stats: SolverStats = field(default_factory=SolverStats)

    def __bool__(self) -> bool:
        return self.satisfiable


class _Domain:
    """A candidate-value domain for one variable."""

    def __init__(self, var: SymVar) -> None:
        self.var = var
        self.lo = var.lo
        self.hi = var.hi
        self.excluded: Set[int] = set()
        # When a constraint pins the variable to a small candidate set, we
        # switch to explicit enumeration.
        self.candidates: Optional[Set[int]] = None

    def size(self) -> int:
        if self.candidates is not None:
            return len(self.candidates)
        return max(0, self.hi - self.lo + 1 - len(
            {v for v in self.excluded if self.lo <= v <= self.hi}))

    def is_empty(self) -> bool:
        return self.size() == 0

    def contains(self, value: int) -> bool:
        if self.candidates is not None:
            return value in self.candidates
        return self.lo <= value <= self.hi and value not in self.excluded

    def restrict_to(self, values: Iterable[int]) -> None:
        if self.candidates is not None:
            # C-speed intersection; same result as filtering via contains().
            self.candidates = self.candidates.intersection(values)
            return
        allowed = {v for v in values if self.contains(v)}
        self.candidates = allowed

    def exclude(self, value: int) -> None:
        if self.candidates is not None:
            self.candidates.discard(value)
        else:
            self.excluded.add(value)

    def iter_values(self, preferred: Sequence[int] = ()) -> Iterable[int]:
        """Yield candidate values, preferred ones first."""

        emitted: Set[int] = set()
        for value in preferred:
            if self.contains(value) and value not in emitted:
                emitted.add(value)
                yield value
        if self.candidates is not None:
            for value in sorted(self.candidates):
                if value not in emitted:
                    yield value
            return
        # Enumerate the interval; for wide domains fall back to a bounded scan
        # around "interesting" points plus the interval edges.
        width = self.hi - self.lo + 1
        if width <= _MAX_ENUMERABLE_DOMAIN:
            for value in range(self.lo, self.hi + 1):
                if value not in self.excluded and value not in emitted:
                    yield value
            return
        probes = [self.lo, self.lo + 1, 0, 1, -1, self.hi - 1, self.hi]
        for value in probes:
            if self.contains(value) and value not in emitted:
                emitted.add(value)
                yield value


def _interesting_values(expr: SymExpr) -> Set[int]:
    """Constants appearing in *expr*, plus their neighbours.

    These are good candidate values for variables compared against them.
    """

    values: Set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, SymConst):
            values.update((node.value - 1, node.value, node.value + 1))
        elif isinstance(node, SymUnOp):
            stack.append(node.operand)
        elif isinstance(node, SymBinOp):
            stack.append(node.left)
            stack.append(node.right)
    return values


#: Active search implementation: ``"incremental"`` (default) or ``"legacy"``.
#: The legacy implementation is the original reference search — it rescans
#: the full constraint list at every node and filters unary constraints
#: without the cross-call cache.  Both implementations visit candidate
#: assignments in the same order and return identical results; the legacy one
#: is kept as a differential-testing oracle and as the baseline for the
#: replay-search benchmark's PR-over-PR comparison.
_SEARCH_IMPL = "incremental"


def set_search_impl(name: str) -> str:
    """Select the search implementation; returns the previous selection."""

    global _SEARCH_IMPL
    if name not in ("incremental", "legacy"):
        raise ValueError(f"unknown search implementation {name!r}")
    previous = _SEARCH_IMPL
    _SEARCH_IMPL = name
    return previous


def search_impl() -> str:
    return _SEARCH_IMPL


#: Memo of unary-constraint satisfying sets, keyed by ``(expr, lo, hi)``.
#: The replay engine re-solves near-identical constraint sets on every run of
#: a search, so the same single-variable constraints are filtered over the
#: same base domains hundreds of times; expressions are immutable and
#: hashable, which makes them perfect cache keys.
_UNARY_FILTER_CACHE: Dict[tuple, frozenset] = {}
_UNARY_FILTER_CACHE_LIMIT = 65536


def _unary_satisfying_values(expr: SymExpr, name: str, domain: "_Domain"):
    """Values satisfying the single-variable constraint *expr*.

    ``Domain.restrict_to`` intersects with the current domain, so answering
    from the variable's *base* interval (cacheable across solve calls) and
    answering from the current (possibly already narrowed) domain produce the
    same restriction.  Domains whose base interval is too wide to enumerate
    fall back to filtering the current (already small) domain, uncached.
    """

    width = domain.hi - domain.lo + 1
    if width > _MAX_ENUMERABLE_DOMAIN:
        return [value for value in domain.iter_values()
                if try_evaluate(expr, {name: value})]
    key = (expr, domain.lo, domain.hi)
    cached = _UNARY_FILTER_CACHE.get(key)
    if cached is None:
        if len(_UNARY_FILTER_CACHE) >= _UNARY_FILTER_CACHE_LIMIT:
            _UNARY_FILTER_CACHE.clear()
        cached = frozenset(
            value for value in range(domain.lo, domain.hi + 1)
            if try_evaluate(expr, {name: value}))
        _UNARY_FILTER_CACHE[key] = cached
    return cached


class _Search:
    """One backtracking search over the simplified constraints.

    Constraint checking is *incremental*: assigning a variable only touches
    the constraints that mention it (a fully-assigned constraint is evaluated
    exactly once, when its last variable is bound, and a one-free-variable
    look-ahead fires exactly when a constraint transitions to one unassigned
    variable).  Along an assignment path a constraint's verdict can never
    change after it was checked — earlier variables keep their values until
    backtracking undoes them — so the pruning decisions, the visit order and
    the first satisfying assignment are identical to re-scanning the whole
    constraint list at every node, at a per-node cost proportional to the
    just-assigned variable's constraint degree instead of the total
    constraint count.  The replay engine's constraint sets grow linearly with
    the recorded run's symbolic branches, which made the full rescans the
    dominant cost of replay search.
    """

    def __init__(self, constraints: List[SymExpr], domains: Dict[str, _Domain],
                 hint: Mapping[str, int], node_budget: int) -> None:
        self.constraints = constraints
        self.domains = domains
        self.hint = dict(hint)
        self.node_budget = node_budget
        self.stats = SolverStats()
        # Map variable name -> indices of constraints that mention it.
        self.by_var: Dict[str, List[int]] = {name: [] for name in domains}
        self.constraint_vars: List[FrozenSet[str]] = []
        for index, expr in enumerate(constraints):
            names = frozenset(v.name for v in variables(expr))
            self.constraint_vars.append(names)
            for name in names:
                self.by_var.setdefault(name, []).append(index)
        # Unassigned-variable count per constraint, maintained by _assign.
        self.free_counts: List[int] = [len(names) for names in self.constraint_vars]
        self.preferred: Dict[str, List[int]] = {name: [] for name in domains}
        for name in domains:
            if name in self.hint:
                self.preferred[name].append(self.hint[name])
        for index, expr in enumerate(constraints):
            interesting = sorted(_interesting_values(expr))
            for name in self.constraint_vars[index]:
                self.preferred.setdefault(name, []).extend(interesting)

    def run(self) -> Optional[Dict[str, int]]:
        # Variable-free constraints never reach the incremental checks; they
        # either hold vacuously or make the whole set unsatisfiable.
        for index, names in enumerate(self.constraint_vars):
            if not names:
                value = try_evaluate(self.constraints[index], {})
                if value is None or value == 0:
                    return None
        order = sorted(self.domains,
                       key=lambda name: (self.domains[name].size(),
                                         -len(self.by_var.get(name, ()))))
        assignment: Dict[str, int] = {}
        result = self._assign(order, 0, assignment)
        return result

    def _narrowed_ok(self, name: str, assignment: Dict[str, int]) -> bool:
        """Re-check only the constraints narrowed by assigning *name*.

        A constraint whose last variable was just bound is evaluated; one
        that dropped to a single unassigned variable gets the cheap
        feasibility look-ahead over that variable's domain.
        """

        constraints = self.constraints
        free_counts = self.free_counts
        for index in self.by_var[name]:
            free = free_counts[index]
            if free == 0:
                value = try_evaluate(constraints[index], assignment)
                if value is None or value == 0:
                    return False
            elif free == 1:
                (free_name,) = (n for n in self.constraint_vars[index]
                                if n not in assignment)
                domain = self.domains[free_name]
                if domain.size() > 512:
                    continue
                residual = substitute(constraints[index], assignment)
                self.stats.propagations += 1
                feasible = False
                for value in domain.iter_values(self.preferred.get(free_name, ())):
                    if try_evaluate(residual, {free_name: value}):
                        feasible = True
                        break
                if not feasible:
                    return False
        return True

    def _assign(self, order: List[str], depth: int,
                assignment: Dict[str, int]) -> Optional[Dict[str, int]]:
        if self.stats.nodes >= self.node_budget:
            self.stats.budget_exhausted = True
            return None
        if depth == len(order):
            return dict(assignment)
        name = order[depth]
        domain = self.domains[name]
        free_counts = self.free_counts
        touched = self.by_var[name]
        for index in touched:
            free_counts[index] -= 1
        try:
            for value in domain.iter_values(self.preferred.get(name, ())):
                self.stats.nodes += 1
                if self.stats.nodes >= self.node_budget:
                    self.stats.budget_exhausted = True
                    return None
                assignment[name] = value
                if self._narrowed_ok(name, assignment):
                    result = self._assign(order, depth + 1, assignment)
                    if result is not None:
                        return result
                self.stats.backtracks += 1
                del assignment[name]
            return None
        finally:
            for index in touched:
                free_counts[index] += 1


class _LegacySearch(_Search):
    """The original (PR 1) search: full constraint rescans at every node.

    Kept verbatim as a reference implementation.  Differential tests assert
    it agrees with the incremental :class:`_Search` on satisfiability and on
    the found assignment, and the replay-search benchmark uses it as the
    PR-over-PR baseline.
    """

    def run(self) -> Optional[Dict[str, int]]:
        order = sorted(self.domains,
                       key=lambda name: (self.domains[name].size(),
                                         -len(self.by_var.get(name, ()))))
        assignment: Dict[str, int] = {}
        return self._assign(order, 0, assignment)

    def _constraints_ok(self, assignment: Dict[str, int]) -> bool:
        """Check every constraint whose variables are all assigned."""

        assigned = set(assignment)
        for index, expr in enumerate(self.constraints):
            names = self.constraint_vars[index]
            if names and not names.issubset(assigned):
                continue
            value = try_evaluate(expr, assignment)
            if value is None or value == 0:
                return False
        return True

    def _forward_check(self, assignment: Dict[str, int]) -> bool:
        """Cheap look-ahead: any unassigned var whose unary residue is unsat?"""

        assigned = set(assignment)
        for index, expr in enumerate(self.constraints):
            names = self.constraint_vars[index]
            remaining = names - assigned
            if len(remaining) != 1:
                continue
            (free_name,) = remaining
            domain = self.domains[free_name]
            if domain.size() > 512:
                continue
            residual = substitute(expr, assignment)
            self.stats.propagations += 1
            feasible = False
            for value in domain.iter_values(self.preferred.get(free_name, ())):
                if try_evaluate(residual, {free_name: value}):
                    feasible = True
                    break
            if not feasible:
                return False
        return True

    def _assign(self, order: List[str], depth: int,
                assignment: Dict[str, int]) -> Optional[Dict[str, int]]:
        if self.stats.nodes >= self.node_budget:
            self.stats.budget_exhausted = True
            return None
        if depth == len(order):
            return dict(assignment) if self._constraints_ok(assignment) else None
        name = order[depth]
        domain = self.domains[name]
        for value in domain.iter_values(self.preferred.get(name, ())):
            self.stats.nodes += 1
            if self.stats.nodes >= self.node_budget:
                self.stats.budget_exhausted = True
                return None
            assignment[name] = value
            if self._constraints_ok(assignment) and self._forward_check(assignment):
                result = self._assign(order, depth + 1, assignment)
                if result is not None:
                    return result
            self.stats.backtracks += 1
            del assignment[name]
        return None


def warm_start_assignment(constraint_set: ConstraintSet,
                          hint: Mapping[str, int]) -> Optional[Dict[str, int]]:
    """Satisfy *constraint_set* by changing at most one variable of *hint*.

    The replay engine's pending items differ from their parent run in exactly
    one flipped branch condition, and the parent's concrete input (the hint)
    satisfies every other constraint.  When the constraints touched by the
    flip are *unary* — one input byte compared against constants, the dominant
    shape in the uServer/coreutils parsers — the full backtracking search is
    overkill: enumerate that variable's filtered domain and keep the hint for
    everything else.

    Correctness contract: the returned assignment is **exactly** the one
    :func:`solve` would produce for the same set and hint (the search prefers
    hint values and orders candidates identically), so an engine using the
    warm start explores a byte-identical search tree and merely skips solver
    calls; ``None`` means "cannot guarantee that here, run the real solver".
    The differential test in ``tests/test_process_replay.py`` enforces the
    contract on randomized constraint sets.
    """

    if not hint:
        return None

    simplified: List[SymExpr] = []
    for constraint in constraint_set:
        expr = simplify(constraint.expr)
        if expr == sym_const(0):
            return None  # unsatisfiable: let solve() report it
        if expr == sym_const(1):
            continue
        simplified.append(expr)
    if not simplified:
        return None  # solve()'s trivial path is already cheap

    # Domains come from the *unsimplified* constraints, exactly like solve():
    # a variable that simplifies away still receives a value there.
    all_vars: Dict[str, SymVar] = {}
    for constraint in constraint_set:
        for var in variables(constraint.expr):
            all_vars.setdefault(var.name, var)
    for name, var in all_vars.items():
        if name not in hint:
            return None  # solve() would have to invent this value
        if not (var.lo <= hint[name] <= var.hi):
            return None  # solve() would skip the out-of-domain hint value

    expr_vars = [frozenset(v.name for v in variables(expr)) for expr in simplified]
    unsatisfied = [index for index, expr in enumerate(simplified)
                   if not try_evaluate(expr, hint)]
    if not unsatisfied:
        # The hint satisfies everything; solve()'s fast path returns it as-is.
        return dict(hint)

    flip_names = set()
    for index in unsatisfied:
        flip_names.update(expr_vars[index])
    if len(flip_names) != 1:
        return None
    (flip,) = flip_names
    # Every constraint mentioning the flip variable must be unary in it;
    # otherwise changing the flip value can break a multi-variable constraint
    # and solve() might instead move one of the *other* variables.
    relevant = [index for index, names in enumerate(expr_vars) if flip in names]
    if any(expr_vars[index] != {flip} for index in relevant):
        return None

    domain = _Domain(all_vars[flip])
    if domain.size() <= _MAX_ENUMERABLE_DOMAIN:
        # Mirror solve()'s unary filtering (same candidate order afterwards).
        for index in relevant:
            allowed = _unary_satisfying_values(simplified[index], flip, domain)
            domain.restrict_to(allowed)
            if domain.is_empty():
                return None
    preferred: List[int] = [hint[flip]]
    for index, expr in enumerate(simplified):
        if flip in expr_vars[index]:
            preferred.extend(sorted(_interesting_values(expr)))
    for value in domain.iter_values(preferred):
        if all(try_evaluate(simplified[index], {flip: value})
               for index in relevant):
            assignment = dict(hint)
            assignment[flip] = value
            return assignment
    return None


def solve(constraint_set: ConstraintSet,
          hint: Optional[Mapping[str, int]] = None,
          extra_variables: Optional[Iterable[SymVar]] = None,
          node_budget: int = _DEFAULT_NODE_BUDGET) -> SolverResult:
    """Find an assignment satisfying *constraint_set*.

    Parameters
    ----------
    constraint_set:
        The conjunction of path constraints to satisfy.
    hint:
        A (possibly partial) assignment to prefer; typically the concrete input
        of the run that produced the constraints.
    extra_variables:
        Variables that must receive a value even if no constraint mentions
        them (e.g. input bytes the program never branched on).
    node_budget:
        Upper bound on search nodes before giving up (reported as
        ``stats.budget_exhausted``).
    """

    start = time.monotonic()
    hint = dict(hint or {})
    stats = SolverStats()

    simplified: List[SymExpr] = []
    for constraint in constraint_set:
        expr = simplify(constraint.expr)
        if expr == sym_const(0):
            stats.wall_seconds = time.monotonic() - start
            return SolverResult(False, None, stats)
        if expr == sym_const(1):
            continue
        simplified.append(expr)

    domains: Dict[str, _Domain] = {}
    for constraint in constraint_set:
        for var in variables(constraint.expr):
            domains.setdefault(var.name, _Domain(var))
    for var in extra_variables or ():
        domains.setdefault(var.name, _Domain(var))

    # Fast path: the hint may already satisfy everything.
    if domains and all(name in hint for name in domains):
        if all(try_evaluate(expr, hint) for expr in simplified):
            stats.wall_seconds = time.monotonic() - start
            return SolverResult(True, {name: hint[name] for name in domains}, stats)

    # Unary filtering: constraints over a single small-domain variable.
    for expr in simplified:
        names = [v.name for v in variables(expr)]
        if len(set(names)) != 1:
            continue
        name = names[0]
        domain = domains[name]
        if domain.size() > _MAX_ENUMERABLE_DOMAIN:
            continue
        stats.propagations += 1
        if _SEARCH_IMPL == "legacy":
            allowed = [value for value in domain.iter_values()
                       if try_evaluate(expr, {name: value})]
        else:
            allowed = _unary_satisfying_values(expr, name, domain)
        domain.restrict_to(allowed)
        if domain.is_empty():
            stats.wall_seconds = time.monotonic() - start
            return SolverResult(False, None, stats)

    if not simplified:
        # No non-trivial constraints: answer with the hint / domain minima.
        assignment = {}
        for name, domain in domains.items():
            if name in hint and domain.contains(hint[name]):
                assignment[name] = hint[name]
            else:
                assignment[name] = next(iter(domain.iter_values()))
        stats.wall_seconds = time.monotonic() - start
        return SolverResult(True, assignment, stats)

    search_class = _LegacySearch if _SEARCH_IMPL == "legacy" else _Search
    search = search_class(simplified, domains, hint, node_budget)
    search.stats = stats
    assignment = search.run()
    stats.wall_seconds = time.monotonic() - start
    if assignment is None:
        return SolverResult(False, None, stats)
    # Fill in unconstrained extra variables from the hint where possible.
    for name, domain in domains.items():
        if name not in assignment:
            if name in hint and domain.contains(hint[name]):
                assignment[name] = hint[name]
            else:
                assignment[name] = next(iter(domain.iter_values()))
    return SolverResult(True, assignment, stats)
