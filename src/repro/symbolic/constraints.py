"""Constraint sets: ordered conjunctions of branch conditions.

A :class:`ConstraintSet` corresponds to the paper's "constraint set associated
with a run": the conjunction of the conditions for the branch directions taken
so far.  The replay engine additionally keeps a list of *pending* constraint
sets describing unexplored alternatives (see
:mod:`repro.replay.pending`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.symbolic.expr import SymExpr, SymVar, sym_const
from repro.symbolic.simplify import simplify, try_evaluate, variables


@dataclass(frozen=True)
class Constraint:
    """A single boolean condition, tagged with where it came from.

    ``origin`` records the branch location id (AST node id) whose evaluation
    produced the condition, or 0 when the constraint came from a syscall model
    or was synthesised by the solver front-end.
    """

    expr: SymExpr
    origin: int = 0
    description: str = ""

    def negated(self) -> "Constraint":
        return Constraint(self.expr.negated(), self.origin,
                          description=f"not({self.description})" if self.description else "")

    def __str__(self) -> str:
        return str(self.expr)


# ---------------------------------------------------------------------------
# Constraint-prefix interning
# ---------------------------------------------------------------------------
#
# The replay engine's pending items are overwhelmingly *prefix-sharing*: a
# run's alternatives extend the run's own constraint set, and items that come
# back from a worker process are structurally equal to ones the parent could
# have produced locally — but, having crossed a pickle boundary, share no
# objects with them.  The intern table below hash-conses constraint chains:
# position ``k`` of a chain is canonicalized by the *identity* of position
# ``k-1``'s canonical constraint plus its own ``(origin, expr)`` signature
# entry, so two sets with equal prefixes resolve to the very same
# :class:`Constraint` objects.  That restores object sharing across pending
# items (pickling a batch of items stores each shared prefix constraint only
# once, shrinking the payload shipped between the engine and its process
# workers) and bounds parent-side memory when thousands of items queue up.

#: ``(id(parent canonical), origin, rendered expr) -> canonical Constraint``.
_INTERN_CHAIN: Dict[Tuple, Constraint] = {}
_INTERN_LOCK = threading.Lock()
_INTERN_STATS = {"hits": 0, "misses": 0}
#: Safety valve: clearing the table only costs future sharing, never
#: correctness, so cap it instead of growing without bound.
_INTERN_MAX_ENTRIES = 200_000


def intern_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide constraint intern table."""

    with _INTERN_LOCK:
        return dict(_INTERN_STATS)


def clear_intern_table() -> None:
    with _INTERN_LOCK:
        _INTERN_CHAIN.clear()
        _INTERN_STATS["hits"] = 0
        _INTERN_STATS["misses"] = 0


class ConstraintSet:
    """An ordered, append-only conjunction of :class:`Constraint` objects."""

    def __init__(self, constraints: Optional[Iterable[Constraint]] = None) -> None:
        self._constraints: List[Constraint] = list(constraints or ())

    # -- construction ----------------------------------------------------------

    def add(self, constraint: Constraint) -> None:
        """Append a constraint to the conjunction."""

        self._constraints.append(constraint)
        self._interned = False

    def add_expr(self, expr: SymExpr, origin: int = 0, description: str = "") -> None:
        self.add(Constraint(simplify(expr), origin, description))

    def extended(self, constraint: Constraint) -> "ConstraintSet":
        """Return a copy of this set with one extra constraint appended."""

        clone = ConstraintSet(self._constraints)
        clone.add(constraint)
        return clone

    def copy(self) -> "ConstraintSet":
        return ConstraintSet(self._constraints)

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __getitem__(self, index: int) -> Constraint:
        return self._constraints[index]

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    def signature(self) -> Tuple[Tuple[int, str], ...]:
        """A stable structural identity of the conjunction.

        ``(origin, rendered expression)`` per constraint, in order.  The
        rendering is purely structural, so the signature survives pickling —
        a pending item shipped to a replay worker process and back
        deduplicates exactly like one that never left the engine.  Cached per
        length: the set is append-only, so the length identifies its content
        for any one instance.
        """

        cached = getattr(self, "_signature", None)
        if cached is None or cached[0] != len(self._constraints):
            signature = tuple((c.origin, str(c.expr)) for c in self._constraints)
            cached = (len(self._constraints), signature)
            self._signature = cached
        return cached[1]

    def expressions(self) -> List[SymExpr]:
        return [c.expr for c in self._constraints]

    def all_variables(self) -> List[SymVar]:
        """Every variable referenced by the conjunction, deduplicated by name."""

        seen = {}
        for constraint in self._constraints:
            for var in variables(constraint.expr):
                seen.setdefault(var.name, var)
        return list(seen.values())

    def is_trivially_unsat(self) -> bool:
        """True when some constraint simplifies to the constant 0."""

        for constraint in self._constraints:
            simplified = simplify(constraint.expr)
            if simplified == sym_const(0):
                return True
        return False

    def satisfied_by(self, assignment: Mapping[str, int]) -> bool:
        """Check whether *assignment* satisfies every constraint.

        Unassigned variables make the check return ``False`` (the assignment is
        not a witness).
        """

        for constraint in self._constraints:
            value = try_evaluate(constraint.expr, assignment)
            if not value:
                return False
        return True

    def prefix(self, length: int) -> "ConstraintSet":
        """The conjunction of the first *length* constraints."""

        return ConstraintSet(self._constraints[:length])

    def interned(self) -> "ConstraintSet":
        """A structurally equal set backed by canonical shared constraints.

        Every prefix of the returned set resolves to the same
        :class:`Constraint` objects as any other interned set with that
        prefix — even when this set arrived from another process and shares
        nothing by identity.  The original set is left untouched; interning
        is pure canonicalization (the signature, and therefore pending-list
        dedup, is unchanged).
        """

        if getattr(self, "_interned", False):
            return self
        signature = self.signature()
        out: List[Constraint] = []
        parent_key = 0
        with _INTERN_LOCK:
            if len(_INTERN_CHAIN) > _INTERN_MAX_ENTRIES:
                _INTERN_CHAIN.clear()
            for constraint, entry in zip(self._constraints, signature):
                key = (parent_key, entry[0], entry[1])
                canonical = _INTERN_CHAIN.get(key)
                if canonical is None:
                    # First time this chain is seen: this set's own
                    # constraint becomes the canonical one.  Its id stays
                    # valid for as long as the table holds the reference.
                    _INTERN_CHAIN[key] = canonical = constraint
                    _INTERN_STATS["misses"] += 1
                else:
                    _INTERN_STATS["hits"] += 1
                out.append(canonical)
                parent_key = id(canonical)
        clone = ConstraintSet(out)
        clone._signature = (len(out), signature)
        clone._interned = True
        return clone

    def with_negated_last(self) -> "ConstraintSet":
        """Negate the final constraint (the classic concolic "flip")."""

        if not self._constraints:
            raise ValueError("cannot negate the last constraint of an empty set")
        flipped = ConstraintSet(self._constraints[:-1])
        flipped.add(self._constraints[-1].negated())
        return flipped

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return " && ".join(str(c) for c in self._constraints) or "true"
