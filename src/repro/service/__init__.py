"""``repro.service`` — the session-based public API for bug reproduction.

This package is the canonical way to drive the reproduction system:

* :class:`~repro.service.config.ReproConfig` — one layered configuration
  (execution / instrumentation / replay / service sections) subsuming the
  legacy ``PipelineConfig`` / ``ExecutionConfig`` / budget sprawl, with
  ``from_dict``/``to_dict`` round-tripping and lossless shims to and from
  the legacy objects;
* :class:`~repro.service.inbox.TraceInbox` — batch ingestion (bytes, files,
  watched spool directory), two-level deduplication (``(plan fingerprint,
  crash site)`` bug keys; equivalent-recording clusters that each cost one
  replay search), and restartable persisted state;
* :class:`~repro.service.service.ReproService` /
  :class:`~repro.service.service.ReproSession` — typed request/response
  objects (:class:`~repro.service.inbox.IngestResult`,
  :class:`~repro.service.service.ReproductionReport`,
  :class:`~repro.service.service.ServiceStats`) and a scheduler dispatching
  deduped clusters, smallest estimated search first, to a persistent
  process pool of replay workers.

Quickstart (the developer site, serving a spool of shipped bug reports)::

    from repro.service import ReproConfig, ReproService

    with ReproService("inbox-root", config=ReproConfig()) as service:
        ingested = service.poll_spool("spool/")       # [IngestResult, ...]
        reports = service.process()                   # one search per cluster
        for trace_id, report in reports.items():
            print(trace_id, report.reproduced, report.found_input)
        print(service.stats().to_json())              # incl. dedup_ratio
"""

from repro.core.pipeline import Pipeline
from repro.planner import (
    FleetObservations,
    PlanLedger,
    PlanRevision,
    PlanVersion,
    ReplanPolicy,
    Replanner,
)
from repro.service.config import (
    ExecutionSection,
    InstrumentationSection,
    ReplaySection,
    ReproConfig,
    ServiceSection,
)
from repro.service.faults import FaultInjector, FaultSpec, NULL_FAULTS
from repro.service.inbox import (
    IngestResult,
    SpoolJournal,
    TraceCluster,
    TraceInbox,
    TraceTooLargeError,
)
from repro.service.net import (
    UploadClient,
    UploadFailed,
    UploadReceipt,
    UploadRejected,
    UploadServer,
)
from repro.service.service import (
    ReproService,
    ReproSession,
    ReproductionReport,
    ServiceStats,
    outcome_fingerprint,
)
from repro.service.supervisor import (
    SearchDeadlineExceeded,
    SearchJob,
    SearchResult,
    SearchSupervisor,
)

__all__ = [
    "ExecutionSection",
    "FaultInjector",
    "FaultSpec",
    "FleetObservations",
    "IngestResult",
    "InstrumentationSection",
    "NULL_FAULTS",
    "PlanLedger",
    "PlanRevision",
    "PlanVersion",
    "ReplanPolicy",
    "Replanner",
    "ReplaySection",
    "ReproConfig",
    "ReproService",
    "ReproSession",
    "ReproductionReport",
    "SearchDeadlineExceeded",
    "SearchJob",
    "SearchResult",
    "SearchSupervisor",
    "ServiceSection",
    "ServiceStats",
    "SpoolJournal",
    "TraceCluster",
    "TraceInbox",
    "TraceTooLargeError",
    "UploadClient",
    "UploadFailed",
    "UploadReceipt",
    "UploadRejected",
    "UploadServer",
    "outcome_fingerprint",
    "workload_pipeline",
]


def workload_pipeline(name: str, config=None):
    """``(Pipeline, default environment)`` for a registered workload.

    The one shared construction path behind every workload-by-name consumer
    (trace tool, disassembler, examples): resolves the source and its
    library-function set through :func:`repro.workloads.workload_registry`
    and builds the pipeline under *config* (a :class:`ReproConfig`, a legacy
    ``PipelineConfig``, or ``None`` for defaults) with the workload's
    library functions installed.
    """

    from repro.workloads import workload_registry

    table = workload_registry()
    if name not in table:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {', '.join(sorted(table))}")
    source, environment, library = table[name]
    pipeline = Pipeline.from_source(source, name=name, config=config,
                                    library_functions=set(library))
    return pipeline, environment
