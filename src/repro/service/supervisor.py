"""Supervised two-level scheduler for cluster replay searches.

The PR 5 service ran one engine per cluster on a fire-and-forget process
pool: a worker OOM-kill surfaced as a raw :class:`BrokenProcessPool`, a
wedged solver blocked the batch forever, and a service restart threw away
every in-flight search.  This module replaces that with a supervisor that
treats searches the way the spool journal treats uploads — as resumable,
exactly-once work items:

* each cluster search runs in its own ``multiprocessing.Process``, built
  from the cluster's picklable :class:`~repro.replay.engine._EngineSpec`
  and a :class:`~repro.replay.checkpoint.CheckpointPolicy` pointing at
  ``<checkpoint dir>/<cluster id>.ckpt``;
* the worker checkpoints every N committed items and touches a heartbeat
  file per commit; the supervisor detects death (exit code), silence
  (heartbeat timeout) and overrun (wall-clock deadline), and restarts
  crashed workers **from their last checkpoint** with bounded retries and
  exponential backoff — the engine's commit discipline makes the resumed
  explored set byte-identical, so a crashed-and-resumed cluster produces
  the same report as an undisturbed one;
* after ``max_search_retries`` crash-restarts the cluster is quarantined
  (a poison search must not wedge the queue) — the service records it in
  the rejection ledger with the typed error;
* when a *smaller* search waits behind a long-running one, the supervisor
  touches the worker's preempt flag; the worker checkpoints at its next
  commit and yields, the short searches run, and the long search resumes
  where it paused;
* a corrupt or truncated checkpoint is poison, not a shrug: the worker
  reports the typed :class:`~repro.replay.checkpoint.CheckpointFormatError`
  and the cluster is quarantined — never silently restarted into a
  possibly-divergent report.

Results cross the process boundary as atomically-written pickle files (one
per attempt, nonce-named so an orphaned worker from a SIGKILLed service
cannot race a successor), because a SIGKILLed worker must be
distinguishable from one that finished — a pipe would conflate the two.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.replay.checkpoint import CheckpointError, CheckpointPolicy
from repro.replay.engine import ReplayEngine

__all__ = ["SearchDeadlineExceeded", "SearchJob", "SearchResult",
           "SearchSupervisor"]


class SearchDeadlineExceeded(Exception):
    """A cluster search overran ``search_deadline_seconds`` and was killed."""


@dataclass
class SearchJob:
    """One cluster search as the supervisor schedules it."""

    cluster_id: str
    spec: Any  # picklable _EngineSpec
    bits: int = 0  # recorded bitvector size — the priority key
    attempts: int = 0
    preemptions: int = 0
    run_seconds: float = 0.0  # cumulative wall time across attempts
    next_eligible: float = 0.0  # monotonic time the next attempt may start
    journaled: bool = False


@dataclass
class SearchResult:
    """Terminal state of one cluster search."""

    kind: str  # "ok" | "deadline" | "quarantined" | "failed"
    outcome: Any = None  # ReplayOutcome when kind == "ok"
    error: str = ""
    attempts: int = 1
    preemptions: int = 0
    resumed: bool = False


@dataclass
class _Running:
    job: SearchJob
    process: multiprocessing.Process
    started: float
    result_path: str
    policy: CheckpointPolicy
    preempt_requested: bool = False
    resumed: bool = False
    checkpoint_seen: bool = False


def _write_result(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.part"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _supervised_search_worker(spec: Any, policy: CheckpointPolicy,
                              result_path: str) -> None:
    """Child-process entry point: run (or resume) one cluster search.

    The final state always lands in *result_path* as an atomically written
    pickle — unless the process dies first, which is exactly the signal the
    supervisor reads from the missing file plus the exit code.
    """

    try:
        engine: Optional[ReplayEngine] = None
        if policy.path and os.path.exists(policy.path):
            try:
                engine = ReplayEngine.from_checkpoint(policy.path,
                                                      policy=policy)
            except CheckpointError as exc:
                _write_result(result_path, {
                    "kind": "checkpoint-corrupt",
                    "error": f"{type(exc).__name__}: {exc}",
                })
                return
        if engine is None:
            engine = spec.build_engine()
            engine.attach_checkpointing(policy)
        outcome = engine.reproduce()
        _write_result(result_path, {
            "kind": "preempted" if outcome.preempted else "ok",
            "outcome": outcome,
        })
    except BaseException as exc:  # report, then let the process die loudly
        try:
            _write_result(result_path, {
                "kind": "error",
                "error": f"{type(exc).__name__}: {exc}",
            })
        except OSError:
            pass
        raise


class SearchSupervisor:
    """Runs a batch of cluster searches under crash/deadline supervision."""

    #: Monitor loop cadence; every liveness decision is made at this grain.
    _POLL_SECONDS = 0.005

    def __init__(self, root: str, config, registry=None, journal=None,
                 fault_spec=None, faults=None) -> None:
        svc = config.service
        self.checkpoint_dir = svc.checkpoint_dir or os.path.join(
            root, "checkpoints")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.workers = max(1, int(svc.workers))
        self.deadline = svc.search_deadline_seconds
        self.preempt_after = svc.preempt_after_seconds
        self.heartbeat_timeout = svc.heartbeat_timeout_seconds
        self.max_retries = max(0, int(svc.max_search_retries))
        self.backoff = svc.retry_backoff_seconds
        self.every_commits = svc.checkpoint_every_runs
        self.registry = registry
        self.journal = journal  # SpoolJournal for SEARCH_BEGIN/END records
        self.fault_spec = fault_spec  # worker-side seeded faults (picklable)
        self.faults = faults  # supervisor-side injector (crash points)
        self._nonce = 0

    # -- paths ---------------------------------------------------------------------------

    def checkpoint_path(self, cluster_id: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{cluster_id}.ckpt")

    def _preempt_flag(self, cluster_id: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{cluster_id}.preempt")

    def _heartbeat(self, cluster_id: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{cluster_id}.heartbeat")

    # -- the scheduling loop --------------------------------------------------------------

    def run(self, jobs: List[SearchJob]) -> Dict[str, SearchResult]:
        """Drive every job to a terminal :class:`SearchResult`.

        *jobs* arrive in the service's priority order; crashed jobs rejoin
        the head of the queue (they were highest-priority when launched),
        preempted jobs rejoin the tail (they yielded to smaller work).
        """

        queue: List[SearchJob] = list(jobs)
        running: List[_Running] = []
        results: Dict[str, SearchResult] = {}
        while queue or running:
            now = time.monotonic()
            while queue and len(running) < self.workers:
                index = next((i for i, job in enumerate(queue)
                              if job.next_eligible <= now), None)
                if index is None:
                    break
                running.append(self._launch(queue.pop(index)))
            self._monitor(running, queue, results)
            if queue or running:
                time.sleep(self._POLL_SECONDS)
        return results

    def _launch(self, job: SearchJob) -> _Running:
        cluster_id = job.cluster_id
        policy = CheckpointPolicy(
            path=self.checkpoint_path(cluster_id),
            every_commits=self.every_commits,
            preempt_flag=self._preempt_flag(cluster_id),
            heartbeat_path=self._heartbeat(cluster_id),
            fault_spec=self.fault_spec,
        )
        # Stale preempt flags from a previous slice must not re-preempt the
        # resumed attempt immediately.
        self._remove(policy.preempt_flag)
        resumed = os.path.exists(policy.path)
        self._nonce += 1
        result_path = os.path.join(
            self.checkpoint_dir,
            f"{cluster_id}.{os.getpid()}.{self._nonce}.result")
        process = multiprocessing.Process(
            target=_supervised_search_worker,
            args=(job.spec, policy, result_path),
            name=f"replay-search-{cluster_id[:12]}")
        process.start()
        job.attempts += 1
        if self.journal is not None and not job.journaled:
            self.journal.search_begin(cluster_id)
            job.journaled = True
        self._count("service.supervisor.launched")
        if resumed:
            self._count("service.supervisor.resumes")
        return _Running(job=job, process=process, started=time.monotonic(),
                        result_path=result_path, policy=policy,
                        resumed=resumed)

    def _monitor(self, running: List[_Running], queue: List[SearchJob],
                 results: Dict[str, SearchResult]) -> None:
        now = time.monotonic()
        min_waiting_bits = min((job.bits for job in queue), default=None)
        for entry in list(running):
            job = entry.job
            if not entry.checkpoint_seen and os.path.exists(entry.policy.path):
                entry.checkpoint_seen = True
                # Chaos hook: deterministically SIGKILL the *service* right
                # after the first checkpoint lands — the mid-search service
                # crash the restart-recovery tests replay.
                if self.faults is not None:
                    self.faults.crash_point("supervisor.after_checkpoint")
            if entry.process.is_alive():
                elapsed = now - entry.started
                if (self.deadline > 0
                        and job.run_seconds + elapsed > self.deadline):
                    self._kill(entry)
                    self._finish(entry, running, results, SearchResult(
                        kind="deadline",
                        error=(f"search exceeded its "
                               f"{self.deadline:g}s deadline after "
                               f"{job.attempts} attempt(s)"),
                        attempts=job.attempts,
                        preemptions=job.preemptions,
                        resumed=entry.resumed), clear_checkpoint=True)
                    self._count("service.supervisor.deadline_exceeded")
                    continue
                if self.heartbeat_timeout > 0 and self._silent_for(
                        entry, now) > self.heartbeat_timeout:
                    # A wedged worker: no commits, no heartbeat.  Kill it and
                    # take the crash path — its checkpoint (if any) resumes.
                    self._kill(entry)
                    entry.process.join()
                    self._handle_crash(entry, running, queue, results,
                                       reason="heartbeat timeout")
                    continue
                if (self.preempt_after > 0 and not entry.preempt_requested
                        and min_waiting_bits is not None
                        and min_waiting_bits < job.bits
                        and now - entry.started > self.preempt_after):
                    # A smaller search is waiting: ask this one to yield.
                    self._touch(entry.policy.preempt_flag)
                    entry.preempt_requested = True
                continue
            entry.process.join()
            payload = self._read_result(entry.result_path)
            if payload is None:
                self._handle_crash(
                    entry, running, queue, results,
                    reason=f"worker died (exit code {entry.process.exitcode})")
                continue
            kind = payload.get("kind")
            if kind == "ok":
                self._finish(entry, running, results, SearchResult(
                    kind="ok", outcome=payload["outcome"],
                    attempts=job.attempts, preemptions=job.preemptions,
                    resumed=entry.resumed), clear_checkpoint=True)
            elif kind == "preempted":
                job.preemptions += 1
                job.run_seconds += now - entry.started
                self._count("service.supervisor.preemptions")
                running.remove(entry)
                self._remove(entry.result_path)
                self._remove(entry.policy.preempt_flag)
                queue.append(job)  # yielded to smaller work: back of the line
            elif kind == "checkpoint-corrupt":
                self._count("service.supervisor.checkpoint_corrupt")
                self._finish(entry, running, results, SearchResult(
                    kind="quarantined", error=payload.get("error", ""),
                    attempts=job.attempts, preemptions=job.preemptions,
                    resumed=entry.resumed), clear_checkpoint=True)
            else:  # in-worker exception: deterministic, retrying cannot help
                self._finish(entry, running, results, SearchResult(
                    kind="failed", error=payload.get("error", "worker error"),
                    attempts=job.attempts, preemptions=job.preemptions,
                    resumed=entry.resumed), clear_checkpoint=True)

    def _handle_crash(self, entry: _Running, running: List[_Running],
                      queue: List[SearchJob],
                      results: Dict[str, SearchResult],
                      reason: str) -> None:
        job = entry.job
        job.run_seconds += time.monotonic() - entry.started
        running.remove(entry)
        self._remove(entry.result_path)
        if job.attempts > self.max_retries:
            self._count("service.supervisor.quarantined")
            self._finish_result(job, results, SearchResult(
                kind="quarantined",
                error=(f"{reason}; gave up after {job.attempts} attempt(s) "
                       f"(max_search_retries={self.max_retries})"),
                attempts=job.attempts, preemptions=job.preemptions,
                resumed=entry.resumed))
            self._clear_files(job.cluster_id)
            return
        self._count("service.supervisor.restarts")
        job.next_eligible = (time.monotonic()
                             + self.backoff * (2 ** (job.attempts - 1)))
        queue.insert(0, job)  # it was highest-priority when launched

    # -- completion & bookkeeping ---------------------------------------------------------

    def _finish(self, entry: _Running, running: List[_Running],
                results: Dict[str, SearchResult], result: SearchResult,
                clear_checkpoint: bool = False) -> None:
        running.remove(entry)
        self._remove(entry.result_path)
        if clear_checkpoint:
            self._clear_files(entry.job.cluster_id)
        self._finish_result(entry.job, results, result)

    def _finish_result(self, job: SearchJob,
                       results: Dict[str, SearchResult],
                       result: SearchResult) -> None:
        results[job.cluster_id] = result
        if self.journal is not None and job.journaled:
            self.journal.search_end(job.cluster_id)

    def _clear_files(self, cluster_id: str) -> None:
        self._remove(self.checkpoint_path(cluster_id))
        self._remove(self._preempt_flag(cluster_id))
        self._remove(self._heartbeat(cluster_id))

    def _silent_for(self, entry: _Running, now: float) -> float:
        try:
            last = os.path.getmtime(entry.policy.heartbeat_path)
        except OSError:
            return now - entry.started
        return now - max(last, entry.started)

    def _kill(self, entry: _Running) -> None:
        process = entry.process
        if not process.is_alive():
            return
        process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join()

    def _count(self, name: str) -> None:
        # Supervision events are machine facts (who crashed when), never
        # part of a report's identity — timing-marked like all chaos
        # telemetry so deterministic snapshots stay comparable.
        if self.registry is not None:
            self.registry.counter(name, timing=True).inc()

    @staticmethod
    def _touch(path: str) -> None:
        try:
            with open(path, "a"):
                pass
        except OSError:
            pass

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    @staticmethod
    def _read_result(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ValueError):
            return None
