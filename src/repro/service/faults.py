"""Deterministic fault injection for the network ingestion layer.

Chaos testing only earns its keep when a failing run can be replayed: every
fault decision here comes from a per-kind ``random.Random`` seeded from
``(seed, kind)``, so the *sequence* of injected faults of each kind is a
pure function of the spec — rerunning a client with the same spec truncates
the same attempts, flips the same bytes, stalls the same frames.

Two sides consume a spec:

* **client-side damage** (``drop`` / ``truncate`` / ``corrupt`` / ``slow``)
  simulates the network between a reporting fleet and the service; the
  :class:`~repro.service.net.UploadClient` consults its injector once per
  upload attempt, so a damaged attempt is followed by a clean (or again
  damaged) retry under the same seeded schedule;
* **server-side damage** (``spool_fail`` rate and ``crash_points``)
  simulates a failing disk and an abruptly killed process;
  ``crash_points`` name code locations (e.g. ``spool.after_begin``,
  ``net.after_ingest``) where the server SIGKILLs *itself* — the
  deterministic stand-in for ``kill -9`` arriving at exactly that moment,
  which the crash-recovery tests drive from a subprocess harness.

:data:`NULL_FAULTS` is the shared no-op injector (all rates zero, no crash
points); production code paths take it by default so the fault hooks cost a
dict lookup and a float compare when chaos is off.
"""

from __future__ import annotations

import os
import random
import signal
import threading
from dataclasses import dataclass, fields
from typing import Dict, Tuple

__all__ = ["FaultInjector", "FaultSpec", "NULL_FAULTS"]

#: The injectable fault kinds; ``<kind>_rate`` fields of :class:`FaultSpec`.
FAULT_KINDS = ("drop", "truncate", "corrupt", "slow", "spool_fail",
               "worker_kill", "checkpoint_fail")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative, seeded description of the faults one run injects."""

    seed: int = 0
    #: Client: send the full upload, then close before reading the response
    #: (the acknowledgement is lost in flight — the idempotent-retry case).
    drop_rate: float = 0.0
    #: Client: send only a prefix of the frame, then close (a truncated
    #: upload the server must discard without acknowledging).
    truncate_rate: float = 0.0
    #: Client: flip one byte of the trace payload in flight (the content
    #: digest no longer matches; the server asks for a resend).
    corrupt_rate: float = 0.0
    #: Client: dribble the frame slower than the server's per-read timeout
    #: (a slow-loris attempt; the server must shed the connection).
    slow_rate: float = 0.0
    #: Server: the journaled spool write raises ``OSError`` (failing disk);
    #: the client is told to retry — nothing was acknowledged.
    spool_fail_rate: float = 0.0
    #: Server: every spool write takes at least this long (slow disk) —
    #: the lever that deterministically fills the bounded ingest queue so
    #: overload/backpressure paths can be exercised.
    spool_delay_seconds: float = 0.0
    #: Worker: a supervised replay-search worker SIGKILLs itself after a
    #: committed item (an OOM-killed / crashed search process); the
    #: supervisor must restart it from its last checkpoint.  The per-kind
    #: stream restarts with each worker attempt, so with checkpointing on,
    #: every retry deterministically advances past the previous kill.
    worker_kill_rate: float = 0.0
    #: Worker: a checkpoint write raises ``OSError`` (failing disk); the
    #: search must shrug — a lost checkpoint costs replayed work on the
    #: next crash, never a wrong report.
    checkpoint_fail_rate: float = 0.0
    #: Server: SIGKILL self the first time each named point is reached.
    crash_points: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "truncate_rate": self.truncate_rate,
            "corrupt_rate": self.corrupt_rate,
            "slow_rate": self.slow_rate,
            "spool_fail_rate": self.spool_fail_rate,
            "spool_delay_seconds": self.spool_delay_seconds,
            "worker_kill_rate": self.worker_kill_rate,
            "checkpoint_fail_rate": self.checkpoint_fail_rate,
            "crash_points": list(self.crash_points),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown fault spec key(s) {unknown} "
                             f"(known: {sorted(known)})")
        kwargs = dict(payload)
        if "crash_points" in kwargs:
            kwargs["crash_points"] = tuple(kwargs["crash_points"])
        return cls(**kwargs)


class FaultInjector:
    """Live fault source for one run: seeded rolls, byte flips, crashes.

    Thread-safe; every decision draws from the per-kind stream so the kinds
    never perturb each other's schedules.  :attr:`injected` counts the
    faults actually fired, for test assertions and the load generator's
    damage report.
    """

    def __init__(self, spec: FaultSpec = None) -> None:
        self.spec = spec or FaultSpec()
        self._lock = threading.Lock()
        self._randoms: Dict[str, random.Random] = {
            kind: random.Random(f"{self.spec.seed}:{kind}")
            for kind in FAULT_KINDS
        }
        self.injected: Dict[str, int] = {}

    def roll(self, kind: str) -> bool:
        """One seeded decision: inject a *kind* fault now?"""

        rate = getattr(self.spec, f"{kind}_rate")
        if rate <= 0.0:
            return False
        with self._lock:
            fired = self._randoms[kind].random() < rate
            if fired:
                self.injected[kind] = self.injected.get(kind, 0) + 1
        return fired

    def corrupt(self, data: bytes) -> bytes:
        """Flip one seeded byte of *data* (in-flight payload damage)."""

        if not data:
            return data
        with self._lock:
            index = self._randoms["corrupt"].randrange(len(data))
        damaged = bytearray(data)
        damaged[index] ^= 0xFF
        return damaged

    def crash_point(self, name: str) -> None:
        """SIGKILL this process if *name* is one of the spec's crash points.

        SIGKILL (not ``sys.exit``) so no ``finally`` blocks, atexit hooks or
        buffered writes soften the crash — exactly what an external
        ``kill -9`` delivers, made deterministic in *where* it lands.
        """

        if name not in self.spec.crash_points:
            return
        kill = getattr(signal, "SIGKILL", None)
        if kill is None:  # non-POSIX fallback: hard exit, no cleanup
            os._exit(137)
        os.kill(os.getpid(), kill)

    def kill_now(self) -> None:
        """SIGKILL this process unconditionally (a fired ``worker_kill``)."""

        kill = getattr(signal, "SIGKILL", None)
        if kill is None:  # non-POSIX fallback: hard exit, no cleanup
            os._exit(137)
        os.kill(os.getpid(), kill)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.injected)


#: Shared no-op injector: all rates zero, no crash points.
NULL_FAULTS = FaultInjector(FaultSpec())
