"""The unified, layered service configuration.

Before the service layer, callers juggled three overlapping configuration
objects: :class:`~repro.core.config.PipelineConfig` (pipeline knobs),
:class:`~repro.interp.interpreter.ExecutionConfig` (per-run execution
switches) and the two budget dataclasses.  :class:`ReproConfig` subsumes them
behind four sections mirroring the paper's phases:

* ``execution`` — which engine runs the program and how (backend, step
  limits, VM specializations);
* ``instrumentation`` — what the user site logs (syscalls, library-function
  handling) and the pre-deployment analysis budget;
* ``replay`` — how hard the developer site searches (budget, order, worker
  pool, warm start);
* ``service`` — the trace-inbox / batch-reproduction layer (worker pool over
  clusters, spool handling, persistence).

``ReproConfig`` round-trips through plain dicts (:meth:`ReproConfig.to_dict`
/ :meth:`ReproConfig.from_dict`, with unknown keys rejected loudly) and
through the legacy objects (:meth:`ReproConfig.from_legacy` /
:meth:`ReproConfig.to_pipeline_config` / :meth:`ReproConfig.execution_config`)
so every pre-service construction pattern keeps working:
:class:`~repro.core.pipeline.Pipeline` accepts either a ``PipelineConfig`` or
a ``ReproConfig`` and the two produce identical behaviour by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.concolic.budget import ConcolicBudget
from repro.core.config import PipelineConfig
from repro.interp.inputs import ExecutionMode
from repro.interp.interpreter import ExecutionConfig
from repro.replay.budget import ReplayBudget

__all__ = [
    "ExecutionSection",
    "InstrumentationSection",
    "ReplaySection",
    "ReproConfig",
    "ServiceSection",
    "TelemetrySection",
]


@dataclass
class ExecutionSection:
    """Which engine executes runs, and the VM's code-generation switches."""

    backend: str = "interp"
    record_max_steps: int = 10_000_000
    max_call_depth: int = 256
    specialize_plans: bool = True
    register_allocation: bool = True
    fuse_compare_branch: bool = True
    specialize_ints: bool = True
    synth_superinstructions: bool = True


@dataclass
class InstrumentationSection:
    """User-site logging options and the pre-deployment analysis budget."""

    log_syscalls: bool = True
    library_functions: Set[str] = field(default_factory=set)
    static_skips_library: bool = True
    concolic_budget: ConcolicBudget = field(default_factory=ConcolicBudget)


@dataclass
class ReplaySection:
    """Developer-site search effort and parallelism."""

    budget: ReplayBudget = field(default_factory=ReplayBudget)
    search_order: str = "dfs"
    workers: int = 1
    worker_kind: str = "thread"
    warm_start: bool = True


@dataclass
class ServiceSection:
    """The trace-inbox / batch-reproduction layer.

    ``workers`` is the *cluster-level* pool: with ``workers > 1`` the service
    dispatches deduped clusters to a persistent process pool (each worker
    rebuilds a serial replay engine from a pickled spec); ``workers == 1``
    runs cluster searches inline.  Either way the per-cluster search tree is
    byte-identical to the single-shot path — the replay engine's commit
    discipline guarantees it.

    The remaining knobs parameterize the robustness surface shared by the
    inbox and the network listener (:mod:`repro.service.net`):

    * ``max_trace_bytes`` — hard upper bound on one bug report; an oversized
      upload or spool file is rejected with a ledger entry *before* it is
      buffered into memory (the listener refuses the frame from its declared
      length alone).
    * ``max_rejected_entries`` — size cap of the rejection ledger; oldest
      entries are evicted so a sustained garbage-upload storm cannot grow
      ``inbox.json`` without limit.
    * ``ingest_queue_depth`` / ``spool_writers`` — the listener's bounded
      ingest queue and the threads draining it into the journaled spool;
      when the queue is full the server answers *retry-after* instead of
      buffering, which is the backpressure signal the client's seeded
      exponential backoff consumes.
    * ``spool_partitions`` — the spool shards across this many inbox
      partitions; a trace's partition is its cluster-key hash modulo N, so
      duplicates of one bug always land (and dedup) in the same shard.
    * ``read_timeout_seconds`` — per-``recv`` socket timeout; a slow-loris
      client stalls only its own connection, which is closed at the first
      silent interval, never the accept loop or other clients.
    * ``client_quota`` — max accepted uploads per client id per server run
      (0 = unlimited); the misbehaving client gets quota responses while
      healthy clients keep their full ingest bandwidth.
    * ``retry_after_seconds`` — the hint carried by a retry-after response.

    The supervision knobs govern the two-level scheduler
    (:mod:`repro.service.supervisor`): with ``supervised`` on (the default),
    cluster searches that need isolation — a multi-worker pool, a deadline,
    preemption, or fault injection — run in supervised child processes that
    checkpoint at commit boundaries, survive worker death, and resume after
    service restarts.

    * ``search_deadline_seconds`` — per-search wall-clock deadline (0 = no
      deadline); a wedged search is killed and its cluster failed with a
      typed ``SearchDeadlineExceeded`` report instead of blocking the batch.
    * ``preempt_after_seconds`` — a running search older than this is asked
      to checkpoint and yield when a *smaller* search waits (0 = never).
    * ``heartbeat_timeout_seconds`` — a worker silent this long is treated
      as dead (killed and restarted from its last checkpoint).
    * ``max_search_retries`` — crash-restarts per cluster before the
      cluster is quarantined into the rejection ledger as a poison search.
    * ``retry_backoff_seconds`` — base of the exponential backoff between
      crash-restarts.
    * ``checkpoint_every_runs`` — snapshot cadence in committed items.
      0 (the default) disables checkpointing, keeping plain single-worker
      batches on the cheap inline path; any positive cadence routes
      searches through the supervisor so the snapshots have a process to
      save.  Preemption writes a snapshot regardless of cadence.
    * ``checkpoint_dir`` — where snapshots live; empty means
      ``<inbox root>/checkpoints``.
    """

    workers: int = 1
    spool_pattern: str = "*.trace"
    persist: bool = True
    store_traces: bool = True
    priority: str = "smallest-first"  # or "arrival"
    max_trace_bytes: int = 4 * 1024 * 1024
    max_rejected_entries: int = 256
    ingest_queue_depth: int = 64
    spool_writers: int = 1
    spool_partitions: int = 4
    read_timeout_seconds: float = 5.0
    client_quota: int = 0
    retry_after_seconds: float = 0.05
    supervised: bool = True
    search_deadline_seconds: float = 0.0
    preempt_after_seconds: float = 0.0
    heartbeat_timeout_seconds: float = 30.0
    max_search_retries: int = 2
    retry_backoff_seconds: float = 0.05
    checkpoint_every_runs: int = 0
    checkpoint_dir: str = ""
    #: Adaptive planning (:mod:`repro.planner`): after this many reports
    #: fanned out by :meth:`ReproService.process`, the service replans
    #: automatically at the end of the batch (0 = manual ``replan`` only).
    #: In-flight searches always finish under their own plan versions first.
    replan_after_reports: int = 0
    #: Seed of the replanner's tie-breaking policy (same history + same
    #: seed ⇒ byte-identical plan ledger).
    replan_seed: int = 0
    #: Fraction of the droppable (concrete-only, never-helped) branch pool
    #: removed per replan generation.
    replan_max_drop_fraction: float = 0.5


@dataclass
class TelemetrySection:
    """The observability layer (:mod:`repro.telemetry`).

    ``enabled`` turns on metric recording, spans and per-item telemetry in
    the replay engine; when off (the default) every instrumentation site
    resolves to shared no-op singletons and the VM runs its unmodified
    dispatch loop — zero overhead by construction.  ``profile_vm``
    additionally swaps in the per-opcode profiling dispatch loop (exact
    execution counts per opcode, so logged-vs-bare branch mixes and future
    superinstruction selection become data-driven); it costs one dict update
    per dispatched instruction, so it defaults off even when telemetry is
    on.  ``jsonl_path`` appends every exported snapshot to a JSON-lines
    sink for machine consumption.
    """

    enabled: bool = False
    profile_vm: bool = False
    jsonl_path: Optional[str] = None


#: Valid values for the enum-ish string fields, checked by ``from_dict``.
_PRIORITIES = ("smallest-first", "arrival")


@dataclass
class ReproConfig:
    """The one configuration object of the service-layer public API."""

    execution: ExecutionSection = field(default_factory=ExecutionSection)
    instrumentation: InstrumentationSection = field(
        default_factory=InstrumentationSection)
    replay: ReplaySection = field(default_factory=ReplaySection)
    service: ServiceSection = field(default_factory=ServiceSection)
    telemetry: TelemetrySection = field(default_factory=TelemetrySection)

    # -- legacy shims ----------------------------------------------------------

    @classmethod
    def from_legacy(cls, legacy) -> "ReproConfig":
        """Lift a :class:`PipelineConfig` or :class:`ExecutionConfig`.

        Every field of the legacy object lands in its section verbatim;
        fields the legacy object does not carry keep their defaults.  The
        round trip (``from_legacy(cfg).to_pipeline_config()`` /
        ``.execution_config(...)``) reproduces the original object exactly —
        the config-compatibility tests assert this for every construction
        pattern the repo uses.
        """

        if isinstance(legacy, PipelineConfig):
            return cls(
                execution=ExecutionSection(
                    backend=legacy.backend,
                    record_max_steps=legacy.record_max_steps,
                    max_call_depth=legacy.max_call_depth,
                    specialize_plans=legacy.specialize_plans,
                    register_allocation=legacy.register_allocation,
                    fuse_compare_branch=legacy.fuse_compare_branch,
                    specialize_ints=legacy.specialize_ints,
                    synth_superinstructions=legacy.synth_superinstructions,
                ),
                instrumentation=InstrumentationSection(
                    log_syscalls=legacy.log_syscalls,
                    library_functions=set(legacy.library_functions),
                    static_skips_library=legacy.static_skips_library,
                    concolic_budget=legacy.concolic_budget,
                ),
                replay=ReplaySection(
                    budget=legacy.replay_budget,
                    search_order=legacy.replay_search_order,
                    workers=legacy.replay_workers,
                    worker_kind=legacy.replay_worker_kind,
                    warm_start=legacy.replay_warm_start,
                ),
                telemetry=TelemetrySection(
                    enabled=legacy.telemetry_enabled,
                    profile_vm=legacy.profile_opcodes,
                ),
            )
        if isinstance(legacy, ExecutionConfig):
            return cls(
                execution=ExecutionSection(
                    backend=legacy.backend,
                    record_max_steps=legacy.max_steps,
                    max_call_depth=legacy.max_call_depth,
                    specialize_plans=legacy.specialize_plans,
                    register_allocation=legacy.register_allocation,
                    fuse_compare_branch=legacy.fuse_compare_branch,
                    specialize_ints=legacy.specialize_ints,
                    synth_superinstructions=legacy.synth_superinstructions,
                ),
                telemetry=TelemetrySection(
                    profile_vm=legacy.profile_opcodes,
                ),
            )
        raise TypeError(
            f"cannot lift {type(legacy).__name__} into a ReproConfig "
            "(expected PipelineConfig or ExecutionConfig)")

    def to_pipeline_config(self) -> PipelineConfig:
        """The equivalent legacy :class:`PipelineConfig` (behaviour-identical)."""

        return PipelineConfig(
            concolic_budget=self.instrumentation.concolic_budget,
            replay_budget=self.replay.budget,
            log_syscalls=self.instrumentation.log_syscalls,
            library_functions=set(self.instrumentation.library_functions),
            static_skips_library=self.instrumentation.static_skips_library,
            replay_search_order=self.replay.search_order,
            record_max_steps=self.execution.record_max_steps,
            backend=self.execution.backend,
            replay_workers=self.replay.workers,
            replay_worker_kind=self.replay.worker_kind,
            replay_warm_start=self.replay.warm_start,
            specialize_plans=self.execution.specialize_plans,
            register_allocation=self.execution.register_allocation,
            fuse_compare_branch=self.execution.fuse_compare_branch,
            specialize_ints=self.execution.specialize_ints,
            synth_superinstructions=self.execution.synth_superinstructions,
            max_call_depth=self.execution.max_call_depth,
            telemetry_enabled=self.telemetry.enabled,
            profile_opcodes=self.telemetry.profile_vm,
        )

    def execution_config(self, mode: ExecutionMode = ExecutionMode.RECORD,
                         max_steps: Optional[int] = None,
                         syscall_result_provider=None) -> ExecutionConfig:
        """An :class:`ExecutionConfig` for one run under this configuration.

        ``mode``, ``max_steps`` and ``syscall_result_provider`` are per-run
        parameters; everything else comes from the ``execution`` section.
        """

        return ExecutionConfig(
            mode=mode,
            max_steps=(self.execution.record_max_steps
                       if max_steps is None else max_steps),
            max_call_depth=self.execution.max_call_depth,
            syscall_result_provider=syscall_result_provider,
            backend=self.execution.backend,
            specialize_plans=self.execution.specialize_plans,
            register_allocation=self.execution.register_allocation,
            fuse_compare_branch=self.execution.fuse_compare_branch,
            specialize_ints=self.execution.specialize_ints,
            synth_superinstructions=self.execution.synth_superinstructions,
            profile_opcodes=self.telemetry.profile_vm,
        )

    # -- dict round-tripping ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A plain, JSON-serializable nested dict (canonical key order)."""

        return {
            "execution": _plain_fields(self.execution),
            "instrumentation": {
                "log_syscalls": self.instrumentation.log_syscalls,
                "library_functions": sorted(
                    self.instrumentation.library_functions),
                "static_skips_library":
                    self.instrumentation.static_skips_library,
                "concolic_budget": _plain_fields(
                    self.instrumentation.concolic_budget),
            },
            "replay": {
                "budget": _plain_fields(self.replay.budget),
                "search_order": self.replay.search_order,
                "workers": self.replay.workers,
                "worker_kind": self.replay.worker_kind,
                "warm_start": self.replay.warm_start,
            },
            "service": _plain_fields(self.service),
            "telemetry": _plain_fields(self.telemetry),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ReproConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Partial dicts are allowed (missing sections or keys keep their
        defaults); *unknown* sections or keys are rejected with a
        :class:`ValueError` naming the offender — a typoed knob must never
        silently configure nothing.
        """

        _reject_unknown(payload, ("execution", "instrumentation", "replay",
                                  "service", "telemetry"), "ReproConfig")
        execution = _section_from_dict(ExecutionSection,
                                       payload.get("execution", {}),
                                       "execution")
        instrumentation = _instrumentation_from_dict(
            payload.get("instrumentation", {}))
        replay = _replay_from_dict(payload.get("replay", {}))
        service = _section_from_dict(ServiceSection,
                                     payload.get("service", {}), "service")
        telemetry = _section_from_dict(TelemetrySection,
                                       payload.get("telemetry", {}),
                                       "telemetry")
        if service.priority not in _PRIORITIES:
            raise ValueError(
                f"service.priority must be one of {_PRIORITIES}, "
                f"got {service.priority!r}")
        return cls(execution=execution, instrumentation=instrumentation,
                   replay=replay, service=service, telemetry=telemetry)


# ---------------------------------------------------------------------------
# dict helpers
# ---------------------------------------------------------------------------


def _plain_fields(obj) -> Dict[str, object]:
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def _reject_unknown(payload: Dict[str, object], known, where: str) -> None:
    if not isinstance(payload, dict):
        raise ValueError(f"{where} must be a mapping, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} in {where} "
            f"(known: {sorted(known)})")


def _section_from_dict(section_cls, payload: Dict[str, object], where: str):
    names = [f.name for f in dataclasses.fields(section_cls)]
    _reject_unknown(payload, names, where)
    return section_cls(**payload)


def _budget_from_dict(budget_cls, payload: Dict[str, object], where: str):
    names = [f.name for f in dataclasses.fields(budget_cls)]
    _reject_unknown(payload, names, where)
    return budget_cls(**payload)


def _instrumentation_from_dict(payload: Dict[str, object]) -> InstrumentationSection:
    _reject_unknown(payload, ("log_syscalls", "library_functions",
                              "static_skips_library", "concolic_budget"),
                    "instrumentation")
    kwargs = dict(payload)
    if "library_functions" in kwargs:
        kwargs["library_functions"] = set(kwargs["library_functions"])
    if "concolic_budget" in kwargs and isinstance(kwargs["concolic_budget"], dict):
        kwargs["concolic_budget"] = _budget_from_dict(
            ConcolicBudget, kwargs["concolic_budget"],
            "instrumentation.concolic_budget")
    return InstrumentationSection(**kwargs)


def _replay_from_dict(payload: Dict[str, object]) -> ReplaySection:
    _reject_unknown(payload, ("budget", "search_order", "workers",
                              "worker_kind", "warm_start"), "replay")
    kwargs = dict(payload)
    if "budget" in kwargs and isinstance(kwargs["budget"], dict):
        kwargs["budget"] = _budget_from_dict(ReplayBudget, kwargs["budget"],
                                             "replay.budget")
    return ReplaySection(**kwargs)
