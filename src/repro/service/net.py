"""``repro.service.net`` — the fault-tolerant trace-upload transport.

The deployment half of the paper's user/developer split: a fleet of
lightly-instrumented user machines ships compact bug reports to the
developer-site service over flaky networks.  This module provides both
ends:

* :class:`UploadServer` — a threaded socket listener in front of a
  :class:`~repro.service.service.ReproService`.  Every robustness decision
  is explicit:

  - **length-prefixed framing** with a hard frame cap derived from
    ``service.max_trace_bytes``: an oversized or runaway upload is refused
    from its *declared* length, before a byte of it is buffered;
  - **per-read socket timeouts**: a slow-loris client stalls only its own
    connection, which is shed at the first silent interval;
  - **bounded ingest queue**: accepted uploads flow through a
    ``queue.Queue(maxsize=ingest_queue_depth)`` drained by spool-writer
    threads; when it is full the server answers *retry-after* instead of
    buffering — backpressure the client's seeded exponential backoff
    consumes;
  - **per-client quotas**: at most ``client_quota`` distinct reports per
    client id (0 = unlimited); the misbehaving client gets quota
    responses, healthy clients keep their bandwidth;
  - **sharded, journaled spool**: a trace lands in spool partition
    ``cluster-key-hash % spool_partitions``, written via
    :func:`~repro.service.inbox.journaled_spool_write` (temp file → intent
    journal → atomic rename → commit record), and is ingested into the
    inbox *before* the acknowledgement is sent — so an acked trace is
    durable twice over, and a ``kill -9`` anywhere leaves a state
    :meth:`UploadServer.recover` (run at startup) repairs without losing
    an acked trace or re-searching a finished cluster;
  - **graceful drain**: :meth:`UploadServer.shutdown` stops accepting,
    answers in-flight uploads with retry-after, and drains the queue so
    every already-accepted write is committed and acknowledged.

* :class:`UploadClient` — the user-machine library.  Uploads are
  *idempotent*: keyed by ``(client id, content digest)``, so a retry after
  a lost acknowledgement is recognized server-side and answered with the
  original receipt instead of a second ingestion.  Retries use
  deterministic seeded exponential backoff with jitter; connection drops,
  retry-after and in-flight corruption (detected by the server via the
  content digest) all funnel into the same retry loop.

Wire protocol (one frame per message, both directions)::

    frame    := u32 length | payload            (big-endian length)
    request  := op u8 | u16 header-length | JSON header | raw body
    response := status u8 | JSON body

Ops: ``U`` upload (header ``{client, digest}``, body = trace bytes),
``R`` report (``{trace}``), ``S`` stats, ``P`` process, ``L`` plan
(``{program, version?}`` — fetch a registered instrumentation-plan version
from the ledger; omitted version means latest).  Statuses: ``A`` ack,
``B`` retry-after, ``Q`` quota-exceeded, ``E`` error, ``R`` report,
``S`` stats, ``P`` processed, ``L`` plan.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import random
import re
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import PipelineConfig
from repro.service.config import ReproConfig
from repro.service.faults import FaultInjector, NULL_FAULTS
from repro.service.inbox import (
    SpoolJournal,
    TraceTooLargeError,
    journaled_spool_write,
    partition_dirs,
    partition_index,
    _bug_key,
)
from repro.service.service import ReproService
from repro.trace import TraceError, load_trace_bytes

__all__ = [
    "ProtocolError",
    "QuotaExceeded",
    "UploadClient",
    "UploadFailed",
    "UploadReceipt",
    "UploadRejected",
    "UploadServer",
]

OP_UPLOAD = ord("U")
OP_REPORT = ord("R")
OP_STATS = ord("S")
OP_PROCESS = ord("P")
OP_PLAN = ord("L")

ST_ACK = ord("A")
ST_RETRY = ord("B")
ST_QUOTA = ord("Q")
ST_ERROR = ord("E")
ST_REPORT = ord("R")
ST_STATS = ord("S")
ST_PROCESSED = ord("P")
ST_PLAN = ord("L")

#: Slack on top of ``max_trace_bytes`` for the op byte and JSON header.
_FRAME_SLACK = 64 * 1024
_SPOOL_DIR = "spool"
_CLIENT_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


class ProtocolError(Exception):
    """A malformed frame, header, or oversized declared length."""


class QuotaExceeded(Exception):
    """A client exceeded its per-client distinct-report quota."""


class UploadRejected(Exception):
    """The server permanently refused this upload (bad trace, quota)."""


class UploadFailed(Exception):
    """All retry attempts were exhausted without an acknowledgement."""


@dataclass
class UploadReceipt:
    """The acknowledgement for one durable, ingested upload."""

    trace_id: str
    cluster_id: str
    duplicate: bool
    bug_key: str
    partition: int
    #: True when this very upload (same client id + content digest) had
    #: already been acknowledged — the retried-after-lost-ack case.
    duplicate_upload: bool = False
    #: Client-side: attempts it took to get this receipt (1 = first try).
    attempts: int = 1


# ---------------------------------------------------------------------------
# framing helpers (shared by both ends)
# ---------------------------------------------------------------------------


def _recv_exact(conn: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; None on clean EOF at a frame boundary.

    Raises ``ConnectionError`` on EOF mid-frame and ``socket.timeout`` when
    any single ``recv`` stalls past the socket's timeout — the per-read
    clock that sheds slow-loris senders.
    """

    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = conn.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ConnectionError(
                f"connection closed {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(conn: socket.socket, max_length: int) -> Optional[bytes]:
    header = _recv_exact(conn, 4)
    if header is None:
        return None
    (length,) = struct.unpack("!I", header)
    if length > max_length:
        raise ProtocolError(
            f"declared frame length {length} exceeds the {max_length}-byte "
            "cap (max_trace_bytes + header slack)")
    if length == 0:
        raise ProtocolError("empty frame")
    payload = _recv_exact(conn, length)
    if payload is None:
        raise ConnectionError("connection closed before frame payload")
    return payload


def _send_frame(conn: socket.socket, payload: bytes) -> None:
    conn.sendall(struct.pack("!I", len(payload)) + payload)


def _encode_request(op: int, header: Dict[str, object],
                    body: bytes = b"") -> bytes:
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    return bytes([op]) + struct.pack("!H", len(blob)) + blob + body


def _decode_request(payload: bytes) -> Tuple[int, Dict[str, object], bytes]:
    if len(payload) < 3:
        raise ProtocolError("request shorter than op + header length")
    op = payload[0]
    (header_len,) = struct.unpack("!H", payload[1:3])
    if 3 + header_len > len(payload):
        raise ProtocolError("request header overruns the frame")
    try:
        header = json.loads(payload[3:3 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparsable request header: {exc}")
    if not isinstance(header, dict):
        raise ProtocolError("request header must be a JSON object")
    return op, header, payload[3 + header_len:]


def _encode_response(status: int, body: Dict[str, object]) -> bytes:
    return bytes([status]) + json.dumps(body, sort_keys=True).encode("utf-8")


def _decode_response(payload: bytes) -> Tuple[int, Dict[str, object]]:
    if not payload:
        raise ProtocolError("empty response payload")
    try:
        body = json.loads(payload[1:].decode("utf-8")) if len(payload) > 1 \
            else {}
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparsable response body: {exc}")
    return payload[0], body


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------


class _PendingUpload:
    """One accepted upload travelling the bounded ingest queue."""

    __slots__ = ("client", "digest", "data", "partition", "filename",
                 "result", "done")

    def __init__(self, client: str, digest: str, data: bytes,
                 partition: int, filename: str) -> None:
        self.client = client
        self.digest = digest
        self.data = data
        self.partition = partition
        self.filename = filename
        self.result: Optional[Tuple[str, Dict[str, object]]] = None
        self.done = threading.Event()

    def resolve(self, kind: str, body: Dict[str, object]) -> None:
        self.result = (kind, body)
        self.done.set()


_STOP = object()


class UploadServer:
    """Concurrent, fault-tolerant front door of a :class:`ReproService`."""

    def __init__(self, root: str, config: Optional[ReproConfig] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 faults: Optional[FaultInjector] = None,
                 service: Optional[ReproService] = None) -> None:
        if config is None:
            config = ReproConfig()
        elif isinstance(config, PipelineConfig):
            config = ReproConfig.from_legacy(config)
        self.config = config
        self.faults = faults or NULL_FAULTS
        self.service = service or ReproService(root, config=config)
        if self.faults is not NULL_FAULTS:
            # Hand the chaos spec through to the supervised scheduler: the
            # worker-side seeded streams (worker_kill / checkpoint_fail)
            # travel as the picklable spec, the supervisor-side crash points
            # (e.g. supervisor.after_checkpoint) use the live injector.
            self.service.search_faults = self.faults.spec
            self.service.search_fault_injector = self.faults
        svc = config.service
        self.max_frame_bytes = svc.max_trace_bytes + _FRAME_SLACK
        self.spool_root = os.path.join(root, _SPOOL_DIR)
        self.partitions = partition_dirs(self.spool_root,
                                         svc.spool_partitions)
        self.journal = SpoolJournal(self.spool_root)
        #: Guards every touch of the service/inbox state and the registry.
        self._lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=max(1, svc.ingest_queue_depth))
        self._client_digests: Dict[str, set] = {}
        self.recovered = self.recover()
        self._draining = False
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.host, self.port = self._listener.getsockname()[:2]

    # -- lifecycle --------------------------------------------------------------

    def recover(self) -> List[str]:
        """Repair the journal and re-ingest committed-but-unseen spool files.

        Run at construction (and callable for tests): journal recovery
        removes half-written temp files, then a partition poll ingests any
        trace that was committed to the spool but not yet recorded in the
        inbox when the previous process died.  Both steps are idempotent;
        clusters already searched keep their ``done`` status and reports —
        nothing is searched twice.
        """

        self.journal.recover()
        with self._lock:
            # The partition poll ingests committed spool files the previous
            # process never recorded; files already in ``inbox.spooled``
            # (the persisted idempotency index — keys are the
            # ``<client>-<digest16>.trace`` paths) are skipped, so a retry
            # of an upload acked by a predecessor dedups instead of
            # re-ingesting.
            results = self.service.poll_spool(self.spool_root)
            # Reconcile the checkpoint store: searches in flight when the
            # previous process died stay pending and resume from their
            # checkpoints — exactly once — on the next process request;
            # snapshots of already-reported clusters are deleted.
            self.resumable = self.service.resume_scan()
        return [result.trace_id for result in results]

    def start(self) -> "UploadServer":
        if self._threads:
            return self  # already running: entering a started server is a no-op
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-net-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for index in range(max(1, self.config.service.spool_writers)):
            writer = threading.Thread(target=self._spool_writer,
                                      name=f"repro-net-spool-{index}",
                                      daemon=True)
            writer.start()
            self._threads.append(writer)
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown` is called."""

        if not self._threads:
            self.start()
        self._threads[0].join()

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting; optionally drain the ingest queue, then close.

        With ``drain=True`` (the default) every upload already admitted to
        the queue is journaled, ingested and acknowledged before the server
        releases its resources — clients never lose an accepted report to a
        clean shutdown.  New uploads arriving during the drain are answered
        retry-after with reason ``draining``.
        """

        if self._closed:
            return
        self._draining = True
        try:
            self._listener.close()
        except OSError:
            pass
        if drain:
            self._queue.join()
        for _ in range(max(1, self.config.service.spool_writers)):
            self._queue.put(_STOP)
        for thread in self._threads[1:]:
            thread.join(timeout=10.0)
        self._closed = True
        self.service.close()
        self.journal.close()

    def __enter__(self) -> "UploadServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # -- connection handling ----------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            self._count("service.net.connections")
            handler = threading.Thread(target=self._handle_connection,
                                       args=(conn, addr), daemon=True)
            handler.start()

    def _handle_connection(self, conn: socket.socket, addr) -> None:
        conn.settimeout(self.config.service.read_timeout_seconds)
        peer = f"{addr[0]}:{addr[1]}"
        try:
            while True:
                try:
                    payload = _read_frame(conn, self.max_frame_bytes)
                except socket.timeout:
                    # Slow-loris shed: the sender went silent mid-frame (or
                    # idled out between requests); drop only this connection.
                    self._count("service.net.timeouts")
                    return
                except ConnectionError:
                    self._count("service.net.short_reads")
                    return
                except ProtocolError as exc:
                    # An oversized declared length is a rejected report, not
                    # just a dropped connection: ledger it before closing.
                    self._count("service.net.protocol_errors")
                    with self._lock:
                        self.service.inbox.reject(
                            f"net:{peer}", TraceTooLargeError(str(exc)))
                    self._best_effort_send(conn, ST_ERROR,
                                           {"reason": str(exc)})
                    return
                if payload is None:
                    return  # clean EOF between frames
                was_upload_ack = self._dispatch(conn, payload, peer)
                if was_upload_ack:
                    self.faults.crash_point("net.after_ack")
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _best_effort_send(self, conn: socket.socket, status: int,
                          body: Dict[str, object]) -> None:
        try:
            _send_frame(conn, _encode_response(status, body))
        except OSError:
            pass

    def _dispatch(self, conn: socket.socket, payload: bytes,
                  peer: str) -> bool:
        """Handle one request frame; returns True for an acked upload."""

        try:
            op, header, body = _decode_request(payload)
        except ProtocolError as exc:
            self._count("service.net.protocol_errors")
            self._best_effort_send(conn, ST_ERROR, {"reason": str(exc)})
            return False
        if op == OP_UPLOAD:
            status, response = self._handle_upload(header, body, peer)
        elif op == OP_REPORT:
            status, response = self._handle_report(header)
        elif op == OP_STATS:
            status, response = self._handle_stats()
        elif op == OP_PROCESS:
            status, response = self._handle_process(header)
        elif op == OP_PLAN:
            status, response = self._handle_plan(header)
        else:
            self._count("service.net.protocol_errors")
            status, response = ST_ERROR, {"reason": f"unknown op {op}"}
        self._best_effort_send(conn, status, response)
        return op == OP_UPLOAD and status == ST_ACK

    # -- request handlers -------------------------------------------------------

    def _handle_upload(self, header: Dict[str, object], body: bytes,
                       peer: str) -> Tuple[int, Dict[str, object]]:
        client = str(header.get("client", ""))
        digest = str(header.get("digest", ""))
        if not _CLIENT_ID_RE.match(client) or not _DIGEST_RE.match(digest):
            self._count("service.net.protocol_errors")
            return ST_ERROR, {"reason": "bad client id or digest"}
        self._count("service.net.bytes_received", len(body))
        if hashlib.sha256(body).hexdigest() != digest:
            # In-flight damage (truncation survived framing, or bit flips):
            # nothing to ledger — ask the sender to resend.
            self._count("service.net.digest_mismatches")
            return ST_RETRY, {
                "reason": "digest-mismatch", "retry_after": 0.0}
        source = f"net:{client}:{digest[:12]}"
        if len(body) > self.config.service.max_trace_bytes:
            with self._lock:
                self.service.inbox.reject(source, TraceTooLargeError(
                    f"upload is {len(body)} bytes (max_trace_bytes="
                    f"{self.config.service.max_trace_bytes})"))
            return ST_ERROR, {"reason": "trace too large"}
        try:
            trace = load_trace_bytes(body)
        except TraceError as exc:
            with self._lock:
                self.service.inbox.reject(source, exc)
            return ST_ERROR, {
                "reason": f"{type(exc).__name__}: {exc}"}
        bug_key = _bug_key(trace)
        partition = partition_index(bug_key,
                                    self.config.service.spool_partitions)
        filename = f"{client}-{digest[:16]}.trace"
        path = os.path.abspath(
            os.path.join(self.partitions[partition], filename))
        retry_after = self.config.service.retry_after_seconds
        with self._lock:
            known = self.service.inbox.spooled.get(path)
            if known:
                # Idempotent retry of an already-acknowledged upload (this
                # process or a predecessor): answer the original receipt.
                self._registry().counter(
                    "service.net.duplicate_uploads").inc()
                cluster = self.service.inbox.cluster_of(known)
                return ST_ACK, {
                    "trace_id": known, "cluster_id": cluster.cluster_id,
                    "duplicate": True, "bug_key": cluster.bug_key,
                    "partition": partition, "duplicate_upload": True}
            if self._draining:
                return ST_RETRY, {"reason": "draining",
                                  "retry_after": retry_after}
            quota = self.config.service.client_quota
            accepted = self._client_digests.setdefault(client, set())
            if quota and digest not in accepted and len(accepted) >= quota:
                self.service.inbox.reject(source, QuotaExceeded(
                    f"client {client} exceeded its quota of {quota} "
                    "distinct reports"))
                return ST_QUOTA, {
                    "reason": f"quota of {quota} reports exhausted"}
            accepted.add(digest)
        pending = _PendingUpload(client, digest, body, partition, filename)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            with self._lock:
                self._registry().counter("service.net.retry_after").inc()
                # The upload was not admitted: give its quota slot back.
                self._client_digests.get(client, set()).discard(digest)
            return ST_RETRY, {"reason": "queue-full",
                              "retry_after": retry_after}
        if not pending.done.wait(
                timeout=max(30.0,
                            self.config.service.read_timeout_seconds * 8)):
            return ST_RETRY, {"reason": "ingest-stalled",
                              "retry_after": retry_after}
        kind, response = pending.result
        if kind == "ack":
            self._count("service.net.uploads_acked")
            return ST_ACK, response
        if kind == "retry":
            with self._lock:
                self._client_digests.get(client, set()).discard(digest)
            return ST_RETRY, response
        return ST_ERROR, response

    def _handle_report(self, header: Dict[str, object]
                       ) -> Tuple[int, Dict[str, object]]:
        trace_id = str(header.get("trace", ""))
        with self._lock:
            if trace_id not in self.service.inbox.traces:
                return ST_REPORT, {"status": "unknown", "report": None}
            report = self.service.report(trace_id)
            if report is None:
                return ST_REPORT, {"status": "pending", "report": None}
            return ST_REPORT, {
                "status": "done", "report": report.to_json(),
                "duplicate_of": report.duplicate_of,
                "cluster_id": report.cluster_id}

    def _handle_stats(self) -> Tuple[int, Dict[str, object]]:
        with self._lock:
            return ST_STATS, {
                "stats": self.service.stats().to_json(),
                "inbox": self.service.inbox.describe(),
                "rejected": dict(self.service.inbox.rejected),
                "recovered": list(self.recovered),
                "faults_injected": self.faults.counts(),
            }

    def _handle_process(self, header: Dict[str, object]
                        ) -> Tuple[int, Dict[str, object]]:
        max_clusters = header.get("max_clusters")
        with self._lock:
            reports = self.service.process(max_clusters=max_clusters)
            return ST_PROCESSED, {
                "reports": {trace_id: dict(report.to_json(),
                                           duplicate_of=report.duplicate_of)
                            for trace_id, report in reports.items()},
                "stats": self.service.stats().to_json(),
            }

    def _handle_plan(self, header: Dict[str, object]
                     ) -> Tuple[int, Dict[str, object]]:
        """Serve a registered plan version to a (re)deploying client.

        This is how revised plans reach the fleet: a client asks for its
        program's latest version (or a pinned one), records under it, and
        the version rides back inside every trace's plan method string.
        Clients that never ask keep recording under their old plan — their
        uploads stay routable by fingerprint, so nothing forces an upgrade.
        """

        program = str(header.get("program", ""))
        version = header.get("version")
        with self._lock:
            ledger = self.service.plan_ledger
            entry = (ledger.version(program, int(version))
                     if version is not None else ledger.latest(program))
            if entry is None:
                return ST_ERROR, {
                    "reason": f"no plan registered for program {program!r}"
                              + (f" version {version}" if version is not None
                                 else "")}
            return ST_PLAN, {"plan": entry.to_json(),
                             "latest": ledger.latest(program).version}

    # -- the spool-writer side of the bounded queue -----------------------------

    def _spool_writer(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._write_and_ingest(item)
            finally:
                self._queue.task_done()

    def _write_and_ingest(self, item: _PendingUpload) -> None:
        retry_after = self.config.service.retry_after_seconds
        try:
            self.faults.crash_point("net.before_spool")
            if self.faults.spec.spool_delay_seconds:
                time.sleep(self.faults.spec.spool_delay_seconds)
            if self.faults.roll("spool_fail"):
                raise OSError("injected spool write failure")
            path = os.path.join(self.partitions[item.partition],
                                item.filename)
            journaled_spool_write(self.journal, path, item.data,
                                  key=item.filename, faults=self.faults)
            self.faults.crash_point("net.after_commit")
            with self._lock:
                result = self.service.ingest_spooled(path, item.data)
            self.faults.crash_point("net.after_ingest")
        except OSError as exc:
            # A failing disk must not fail the client permanently: nothing
            # was acknowledged, so "try again" is both safe and honest.
            self._count("service.net.spool_write_failures")
            item.resolve("retry", {
                "reason": f"spool-write-failed: {exc}",
                "retry_after": retry_after})
            return
        except TraceError as exc:
            # Unreachable in the normal flow (the handler validated the
            # bytes), kept so a writer thread can never die on a bad trace.
            with self._lock:
                self.service.inbox.reject(
                    f"net:{item.client}:{item.digest[:12]}", exc)
            item.resolve("error", {"reason": f"{type(exc).__name__}: {exc}"})
            return
        item.resolve("ack", {
            "trace_id": result.trace_id, "cluster_id": result.cluster_id,
            "duplicate": result.duplicate, "bug_key": result.bug_key,
            "partition": item.partition, "duplicate_upload": False})

    # -- small helpers ----------------------------------------------------------

    def _registry(self):
        return self.service.registry

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._registry().counter(name).inc(amount)


# ---------------------------------------------------------------------------
# the client
# ---------------------------------------------------------------------------


class UploadClient:
    """User-machine upload library: idempotent, retrying, seeded backoff.

    One TCP connection per request keeps the client trivially robust to
    server-side connection shedding.  ``faults`` (tests and the chaos load
    generator only) injects client-side network damage per attempt: drops,
    truncations, corruption and slow-loris dribbles — each followed by a
    normal retry under the same seeded schedule.
    """

    def __init__(self, host: str, port: int, client_id: str = "client",
                 seed: int = 0, timeout: float = 10.0,
                 max_attempts: int = 8, base_delay: float = 0.02,
                 max_delay: float = 0.5,
                 faults: Optional[FaultInjector] = None) -> None:
        if not _CLIENT_ID_RE.match(client_id):
            raise ValueError(
                f"client id {client_id!r} must match {_CLIENT_ID_RE.pattern}")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.faults = faults or NULL_FAULTS
        self._random = random.Random(seed)
        #: Attempt-level counters for the load generator's damage report.
        self.stats: Dict[str, int] = {"attempts": 0, "retries": 0,
                                      "connection_errors": 0}

    # -- public API -------------------------------------------------------------

    def upload(self, data: bytes) -> UploadReceipt:
        """Ship one trace; returns the receipt or raises.

        Retries connection errors, injected damage and server retry-after
        responses under deterministic seeded exponential backoff + jitter.
        Safe to call again after any failure: the content digest makes the
        operation idempotent end to end.
        """

        digest = hashlib.sha256(data).hexdigest()
        last_reason = "no attempts made"
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                time.sleep(self._backoff(attempt - 1))
                self.stats["retries"] += 1
            self.stats["attempts"] += 1
            try:
                status, body = self._upload_once(data, digest)
            except (OSError, ProtocolError) as exc:
                self.stats["connection_errors"] += 1
                last_reason = f"{type(exc).__name__}: {exc}"
                continue
            if status == ST_ACK:
                return UploadReceipt(
                    trace_id=body["trace_id"], cluster_id=body["cluster_id"],
                    duplicate=bool(body["duplicate"]),
                    bug_key=body.get("bug_key", ""),
                    partition=int(body.get("partition", 0)),
                    duplicate_upload=bool(body.get("duplicate_upload")),
                    attempts=attempt)
            if status == ST_RETRY:
                last_reason = str(body.get("reason", "retry-after"))
                continue
            if status == ST_QUOTA:
                raise UploadRejected(
                    f"quota: {body.get('reason', 'quota exceeded')}")
            raise UploadRejected(str(body.get("reason", "rejected")))
        raise UploadFailed(
            f"upload gave up after {self.max_attempts} attempts "
            f"(last: {last_reason})")

    def report(self, trace_id: str) -> Dict[str, object]:
        """``{"status": "pending"|"done"|"unknown", "report": ...}``."""

        _status, body = self._request(
            _encode_request(OP_REPORT, {"trace": trace_id}))
        return body

    def stats_remote(self) -> Dict[str, object]:
        _status, body = self._request(_encode_request(OP_STATS, {}))
        return body

    def process(self, max_clusters: Optional[int] = None
                ) -> Dict[str, object]:
        """Ask the server to run pending replay searches now (blocking)."""

        header: Dict[str, object] = {}
        if max_clusters is not None:
            header["max_clusters"] = max_clusters
        _status, body = self._request(
            _encode_request(OP_PROCESS, header),
            timeout=max(self.timeout, 600.0))
        return body

    def plan(self, program: str,
             version: Optional[int] = None) -> Dict[str, object]:
        """Fetch a registered plan version (latest when *version* is None).

        Returns the :meth:`~repro.planner.ledger.PlanVersion.to_json`
        payload plus the program's current latest version number; raises
        :class:`UploadRejected` when the program (or version) is unknown.
        """

        header: Dict[str, object] = {"program": program}
        if version is not None:
            header["version"] = version
        status, body = self._request(_encode_request(OP_PLAN, header))
        if status != ST_PLAN:
            raise UploadRejected(str(body.get("reason", "no such plan")))
        return body

    def wait_report(self, trace_id: str, timeout: float = 30.0,
                    poll: float = 0.05) -> Dict[str, object]:
        deadline = time.monotonic() + timeout
        while True:
            body = self.report(trace_id)
            if body.get("status") == "done" or time.monotonic() >= deadline:
                return body
            time.sleep(poll)

    # -- internals --------------------------------------------------------------

    def _backoff(self, failures: int) -> float:
        """min(cap, base * 2^failures) with seeded half-to-full jitter."""

        ceiling = min(self.max_delay, self.base_delay * (2 ** (failures - 1)))
        return ceiling * (0.5 + 0.5 * self._random.random())

    def _connect(self) -> socket.socket:
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    def _request(self, payload: bytes,
                 timeout: Optional[float] = None
                 ) -> Tuple[int, Dict[str, object]]:
        with self._connect() as conn:
            if timeout is not None:
                conn.settimeout(timeout)
            _send_frame(conn, payload)
            response = _read_frame(conn, 1 << 30)
            if response is None:
                raise ConnectionError("connection closed before response")
            return _decode_response(response)

    def _upload_once(self, data: bytes,
                     digest: str) -> Tuple[int, Dict[str, object]]:
        body = data
        if self.faults.roll("corrupt"):
            body = bytes(self.faults.corrupt(body))
        payload = _encode_request(
            OP_UPLOAD, {"client": self.client_id, "digest": digest}, body)
        frame = struct.pack("!I", len(payload)) + payload
        with self._connect() as conn:
            if self.faults.roll("truncate"):
                conn.sendall(frame[: max(5, len(frame) // 3)])
                raise ConnectionError("injected truncation")
            if self.faults.roll("slow"):
                # Dribble a prefix, then stall past any sane server read
                # timeout; the server sheds us and we retry normally.
                conn.sendall(frame[:6])
                time.sleep(self.timeout)
                raise ConnectionError("injected slow-loris stall")
            conn.sendall(frame)
            if self.faults.roll("drop"):
                raise ConnectionError("injected pre-ack connection drop")
            response = _read_frame(conn, 1 << 30)
            if response is None:
                raise ConnectionError("connection closed before ack")
            return _decode_response(response)
