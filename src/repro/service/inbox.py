"""The trace inbox: batch ingestion and deduplication of bug reports.

The paper's deployment story has *millions* of user machines shipping compact
bug reports; the developer site cannot afford one replay search per report.
The inbox is the receiving dock for that traffic:

* **ingestion** — traces arrive as raw bytes (:meth:`TraceInbox.ingest_bytes`,
  the shape a network transport would deliver), as files
  (:meth:`TraceInbox.ingest_file`), or by polling a watched spool directory
  (:meth:`TraceInbox.poll_spool`) into which an external transport drops
  ``*.trace`` files.  The inbox API is transport-agnostic on purpose: a
  socket listener only needs to call ``ingest_bytes``.
* **deduplication** — clustering is two-level.  The *bug key* is
  ``(plan fingerprint, crash site)``: reports produced by the same
  instrumented binary crashing at the same location are the same bug, and
  clusters sharing a bug key carry the same ``bug_key`` for grouping and
  triage.  A *cluster* (the unit that gets one replay search) additionally
  requires an equivalent recording — identical bitvector, syscall log and
  input scaffold — because only then is the representative's search
  byte-identical to every member's own.  N duplicate reports therefore cost
  *one* replay search whose reproduction report fans back out to every
  member, without ever handing a trace a report its own single-shot search
  would not have produced.
* **restartable state** — the inbox persists its ledger (``inbox.json``) and
  a copy of every ingested trace under its root directory, so a restarted
  service resumes exactly where it stopped: spool files already ingested are
  not re-ingested, finished clusters keep their reports, pending clusters
  are searched next.

Corrupt or truncated trace files never poison a batch: they are recorded in
the rejection ledger (with the one-line reason) and skipped on subsequent
polls.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace import Trace, TraceError, load_trace_bytes

__all__ = ["IngestResult", "TraceCluster", "TraceInbox"]

_STATE_FILE = "inbox.json"
_TRACE_DIR = "traces"
_STATE_VERSION = 1


def _bug_key(trace: Trace) -> str:
    """Stable identity of ``(plan fingerprint, crash site)`` — *which bug*.

    A pure function of the trace contents (the plan fingerprint is itself a
    pure function of the program source since node ids became deterministic),
    so the same bug maps to the same key across processes and restarts.
    """

    crash = None
    if trace.crash_site is not None:
        crash = (trace.crash_site.function, trace.crash_site.line)
    payload = repr((trace.fingerprint(), crash)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _recording_digest(trace: Trace) -> str:
    """Identity of the *recording* itself (everything the search consumes).

    Two traces with equal digests drive the replay engine identically, so
    one search's report is exact for both — the precondition for fanning a
    cluster's report out to all members.
    """

    syscalls = None
    if trace.syscall_log is not None:
        payload = trace.syscall_log.to_payload()
        syscalls = tuple(sorted((name, tuple(values))
                                for name, values in payload.items()))
    payload = repr((
        len(trace.bitvector),
        trace.bitvector.to_bytes(),
        trace.plan.log_syscalls,
        syscalls,
        trace.environment_spec,
    )).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _cluster_id(bug_key: str, recording_digest: str) -> str:
    return f"{bug_key}-{recording_digest[:8]}"


@dataclass
class IngestResult:
    """Typed response of one ingestion (the service API's receipt)."""

    trace_id: str
    cluster_id: str
    #: True when the cluster already had members: this trace will ride along
    #: on the cluster's single replay search instead of costing its own.
    duplicate: bool
    program: str
    scenario: str
    crash_site: Optional[str]
    bits: int
    source: str = "bytes"
    #: ``(plan fingerprint, crash site)`` identity: clusters sharing it are
    #: the same *bug* (possibly recorded from different inputs).
    bug_key: str = ""


@dataclass
class TraceCluster:
    """Equivalent bug reports: one bug, one recording, one replay search."""

    cluster_id: str
    program: str
    scenario: str
    crash_site: Optional[str]
    #: Search-size estimate (bits of the first member's bitvector); the
    #: scheduler runs smallest-estimated-search-first.
    bits: int
    #: Ingestion order of the first member (tie-break and "arrival" order).
    arrival: int
    members: List[str] = field(default_factory=list)
    status: str = "pending"  # "pending" | "done" | "failed"
    report: Optional[Dict[str, object]] = None
    #: ``(plan fingerprint, crash site)`` identity shared by clusters that
    #: are the same bug recorded from different inputs.
    bug_key: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "cluster_id": self.cluster_id,
            "program": self.program,
            "scenario": self.scenario,
            "crash_site": self.crash_site,
            "bits": self.bits,
            "arrival": self.arrival,
            "members": list(self.members),
            "status": self.status,
            "report": self.report,
            "bug_key": self.bug_key,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "TraceCluster":
        return cls(cluster_id=payload["cluster_id"],
                   program=payload["program"],
                   scenario=payload["scenario"],
                   crash_site=payload.get("crash_site"),
                   bits=payload["bits"],
                   arrival=payload["arrival"],
                   members=list(payload.get("members", [])),
                   status=payload.get("status", "pending"),
                   report=payload.get("report"),
                   bug_key=payload.get("bug_key", ""))


class TraceInbox:
    """Receives, stores, deduplicates and schedules bug-report traces."""

    def __init__(self, root: str, persist: bool = True,
                 store_traces: bool = True,
                 spool_pattern: str = "*.trace") -> None:
        self.root = root
        self.persist = persist
        self.store_traces = store_traces
        self.spool_pattern = spool_pattern
        self.clusters: Dict[str, TraceCluster] = {}
        #: trace_id -> {cluster, program, scenario, file, source}
        self.traces: Dict[str, Dict[str, object]] = {}
        #: spool filename (absolute) -> trace_id ("" when rejected).
        self.spooled: Dict[str, str] = {}
        #: spool filename -> one-line rejection reason.
        self.rejected: Dict[str, str] = {}
        self._sequence = 0
        os.makedirs(self.root, exist_ok=True)
        if self.store_traces:
            os.makedirs(os.path.join(self.root, _TRACE_DIR), exist_ok=True)
        self._load_state()

    # -- ingestion --------------------------------------------------------------

    def ingest_bytes(self, data: bytes, source: str = "bytes",
                     _defer_save: bool = False) -> IngestResult:
        """Ingest one serialized trace; raises ``TraceError`` on bad bytes."""

        trace = load_trace_bytes(data)
        self._sequence += 1
        digest = hashlib.sha256(data).hexdigest()[:8]
        trace_id = f"t{self._sequence:05d}-{digest}"
        bug_key = _bug_key(trace)
        cluster_id = _cluster_id(bug_key, _recording_digest(trace))
        crash = (f"{trace.crash_site.function}:{trace.crash_site.line}"
                 if trace.crash_site else None)
        cluster = self.clusters.get(cluster_id)
        duplicate = cluster is not None
        if cluster is None:
            cluster = TraceCluster(cluster_id=cluster_id,
                                   program=trace.program_name,
                                   scenario=trace.scenario,
                                   crash_site=crash,
                                   bits=len(trace.bitvector),
                                   arrival=self._sequence,
                                   bug_key=bug_key)
            self.clusters[cluster_id] = cluster
        cluster.members.append(trace_id)
        stored = ""
        if self.store_traces:
            stored = os.path.join(_TRACE_DIR, f"{trace_id}.trace")
            with open(os.path.join(self.root, stored), "wb") as handle:
                handle.write(data)
        self.traces[trace_id] = {
            "cluster": cluster_id,
            "program": trace.program_name,
            "scenario": trace.scenario,
            "file": stored,
            "source": source,
        }
        if not _defer_save:
            self._save_state()
        return IngestResult(trace_id=trace_id, cluster_id=cluster_id,
                            duplicate=duplicate, program=trace.program_name,
                            scenario=trace.scenario, crash_site=crash,
                            bits=len(trace.bitvector), source=source,
                            bug_key=bug_key)

    def ingest_file(self, path: str) -> IngestResult:
        with open(path, "rb") as handle:
            data = handle.read()
        return self.ingest_bytes(data, source=os.path.abspath(path))

    def poll_spool(self, spool_dir: str) -> List[IngestResult]:
        """Ingest every not-yet-seen spool file matching the pattern.

        Files are keyed by absolute path: each spool file is one shipped bug
        report, so two files with identical contents are two reports (and
        dedup happens at the cluster level, not here).  Re-polling — in the
        same process or after a restart — skips everything already ingested
        or rejected.  A corrupt file lands in :attr:`rejected` with its
        one-line reason and never aborts the batch.

        State is persisted once per file, *after* the spool ledger entry is
        recorded, so the on-disk snapshot is always atomic: a crash mid-poll
        either shows a file fully ingested (trace + ledger entry) or not at
        all — never a trace that a restarted poll would ingest twice.
        """

        results: List[IngestResult] = []
        try:
            entries = sorted(os.listdir(spool_dir))
        except FileNotFoundError:
            return results
        for name in entries:
            if not fnmatch.fnmatch(name, self.spool_pattern):
                continue
            path = os.path.abspath(os.path.join(spool_dir, name))
            if path in self.spooled or path in self.rejected:
                continue
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
                result = self.ingest_bytes(data, source=path,
                                           _defer_save=True)
            except (TraceError, OSError) as exc:
                self.rejected[path] = f"{type(exc).__name__}: " + \
                    " ".join(str(exc).split())
                self._save_state()
                continue
            self.spooled[path] = result.trace_id
            self._save_state()
            results.append(result)
        return results

    # -- scheduling -------------------------------------------------------------

    def pending_clusters(self, priority: str = "smallest-first"
                         ) -> List[TraceCluster]:
        """Clusters awaiting a replay search, in dispatch order.

        ``smallest-first`` orders by the bitvector-size estimate (shortest
        recorded log ≈ smallest guided search) so cheap reproductions are
        reported while the expensive ones still run; ``arrival`` is FIFO.
        """

        pending = [c for c in self.clusters.values() if c.status == "pending"]
        if priority == "arrival":
            pending.sort(key=lambda c: c.arrival)
        else:
            pending.sort(key=lambda c: (c.bits, c.arrival))
        return pending

    def mark_done(self, cluster_id: str, report: Dict[str, object],
                  failed: bool = False) -> None:
        cluster = self.clusters[cluster_id]
        cluster.status = "failed" if failed else "done"
        cluster.report = report
        self._save_state()

    def trace_path(self, trace_id: str) -> str:
        """Absolute path of the stored copy of *trace_id*."""

        entry = self.traces[trace_id]
        if not entry["file"]:
            raise KeyError(f"trace {trace_id} was ingested with "
                           "store_traces=False; no copy kept")
        return os.path.join(self.root, entry["file"])

    def cluster_of(self, trace_id: str) -> TraceCluster:
        return self.clusters[self.traces[trace_id]["cluster"]]

    # -- counters ---------------------------------------------------------------

    @property
    def ingested(self) -> int:
        return len(self.traces)

    def describe(self) -> Dict[str, object]:
        done = sum(1 for c in self.clusters.values() if c.status == "done")
        return {
            "traces": len(self.traces),
            "clusters": len(self.clusters),
            "pending": sum(1 for c in self.clusters.values()
                           if c.status == "pending"),
            "done": done,
            "rejected": len(self.rejected),
        }

    # -- persistence ------------------------------------------------------------

    def _state_path(self) -> str:
        return os.path.join(self.root, _STATE_FILE)

    def _save_state(self) -> None:
        if not self.persist:
            return
        payload = {
            "version": _STATE_VERSION,
            "sequence": self._sequence,
            "traces": self.traces,
            "clusters": {cid: cluster.to_json()
                         for cid, cluster in self.clusters.items()},
            "spooled": self.spooled,
            "rejected": self.rejected,
        }
        tmp = self._state_path() + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, self._state_path())

    def _load_state(self) -> None:
        try:
            with open(self._state_path()) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            raise TraceError(f"unreadable inbox state {self._state_path()}: {exc}")
        if payload.get("version") != _STATE_VERSION:
            raise TraceError(
                f"inbox state version {payload.get('version')} unsupported "
                f"(this build reads version {_STATE_VERSION})")
        self._sequence = payload.get("sequence", 0)
        self.traces = dict(payload.get("traces", {}))
        self.clusters = {cid: TraceCluster.from_json(entry)
                         for cid, entry in payload.get("clusters", {}).items()}
        self.spooled = dict(payload.get("spooled", {}))
        self.rejected = dict(payload.get("rejected", {}))
