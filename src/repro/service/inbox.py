"""The trace inbox: batch ingestion and deduplication of bug reports.

The paper's deployment story has *millions* of user machines shipping compact
bug reports; the developer site cannot afford one replay search per report.
The inbox is the receiving dock for that traffic:

* **ingestion** — traces arrive as raw bytes (:meth:`TraceInbox.ingest_bytes`,
  the shape a network transport would deliver), as files
  (:meth:`TraceInbox.ingest_file`), or by polling a watched spool directory
  (:meth:`TraceInbox.poll_spool`) into which an external transport drops
  ``*.trace`` files.  The inbox API is transport-agnostic on purpose: a
  socket listener only needs to call ``ingest_bytes``.
* **deduplication** — clustering is two-level.  The *bug key* is
  ``(plan fingerprint, crash site)``: reports produced by the same
  instrumented binary crashing at the same location are the same bug, and
  clusters sharing a bug key carry the same ``bug_key`` for grouping and
  triage.  A *cluster* (the unit that gets one replay search) additionally
  requires an equivalent recording — identical bitvector, syscall log and
  input scaffold — because only then is the representative's search
  byte-identical to every member's own.  N duplicate reports therefore cost
  *one* replay search whose reproduction report fans back out to every
  member, without ever handing a trace a report its own single-shot search
  would not have produced.
* **restartable state** — the inbox persists its ledger (``inbox.json``) and
  a copy of every ingested trace under its root directory, so a restarted
  service resumes exactly where it stopped: spool files already ingested are
  not re-ingested, finished clusters keep their reports, pending clusters
  are searched next.

Corrupt or truncated trace files never poison a batch: they are recorded in
the rejection ledger (with the one-line reason) and skipped on subsequent
polls.  The ledger is *bounded* (``max_rejected`` entries, oldest evicted)
so a sustained garbage storm cannot grow ``inbox.json`` without limit, and
every rejection increments a ``service.rejected.<reason>`` telemetry
counter when the inbox is given a registry.

A file that merely *looks* corrupt may simply still be in flight: an
external transport writing a spool file in place is indistinguishable from
a truncated upload until the writer finishes.  :meth:`TraceInbox.poll_spool`
therefore gives every unparsable file a grace poll — it is only rejected
once its size and mtime are unchanged across two consecutive polls (see
``_suspects``); a growing file is skipped and retried.

For the network deployment the spool is sharded into ``part-NN``
subdirectories (one per inbox partition, a trace's shard being its
cluster-key hash modulo N — see :func:`partition_index`) and writes go
through :class:`SpoolJournal` + :func:`journaled_spool_write`: an
append-only intent journal plus write-to-temp / atomic-rename, so a
``kill -9`` at any point leaves either a fully committed spool file or a
temp file the journal recovery deletes — never a half-written ``*.trace``
that a restarted poll would mistake for a report.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.planner.ledger import plan_fingerprint_digest, plan_version_of
from repro.trace import Trace, TraceError, load_trace_bytes

__all__ = [
    "IngestResult",
    "SpoolJournal",
    "TraceCluster",
    "TraceInbox",
    "TraceTooLargeError",
    "journaled_spool_write",
    "partition_dirs",
    "partition_index",
]

_STATE_FILE = "inbox.json"
_TRACE_DIR = "traces"
_STATE_VERSION = 1
_JOURNAL_FILE = "journal.log"
_PART_PREFIX = "part-"
_TMP_SUFFIX = ".part"


class TraceTooLargeError(TraceError):
    """An upload or spool file exceeded ``service.max_trace_bytes``."""


def _bug_key(trace: Trace) -> str:
    """Stable identity of ``(plan fingerprint, crash site)`` — *which bug*.

    A pure function of the trace contents (the plan fingerprint is itself a
    pure function of the program source since node ids became deterministic),
    so the same bug maps to the same key across processes and restarts.
    """

    crash = None
    if trace.crash_site is not None:
        crash = (trace.crash_site.function, trace.crash_site.line)
    payload = repr((trace.fingerprint(), crash)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _recording_digest(trace: Trace) -> str:
    """Identity of the *recording* itself (everything the search consumes).

    Two traces with equal digests drive the replay engine identically, so
    one search's report is exact for both — the precondition for fanning a
    cluster's report out to all members.
    """

    syscalls = None
    if trace.syscall_log is not None:
        payload = trace.syscall_log.to_payload()
        syscalls = tuple(sorted((name, tuple(values))
                                for name, values in payload.items()))
    payload = repr((
        len(trace.bitvector),
        trace.bitvector.to_bytes(),
        trace.plan.log_syscalls,
        syscalls,
        trace.environment_spec,
    )).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _cluster_id(bug_key: str, recording_digest: str) -> str:
    return f"{bug_key}-{recording_digest[:8]}"


# ---------------------------------------------------------------------------
# spool partitions and the crash-safe journal
# ---------------------------------------------------------------------------


def partition_index(bug_key: str, partitions: int) -> int:
    """The spool shard for a trace: its cluster-key hash modulo N.

    The bug key is already a uniform hex hash, so taking it modulo the
    partition count spreads distinct bugs evenly while pinning every
    duplicate of one bug to the same shard (duplicates dedup locally).
    """

    if partitions <= 1:
        return 0
    return int(bug_key, 16) % partitions


def partition_dirs(spool_root: str, partitions: int) -> List[str]:
    """The ``part-NN`` shard directories under *spool_root* (created)."""

    dirs = []
    for index in range(max(1, partitions)):
        path = os.path.join(spool_root, f"{_PART_PREFIX}{index:02d}")
        os.makedirs(path, exist_ok=True)
        dirs.append(path)
    return dirs


class SpoolJournal:
    """Append-only intent journal making spool writes crash-safe.

    Protocol per write (see :func:`journaled_spool_write`):

    1. the payload is written to ``<final>.part`` and flushed;
    2. ``BEGIN <key> <final>`` is appended (and fsynced);
    3. the temp file is atomically renamed onto ``<final>``;
    4. ``COMMIT <key>`` is appended (and fsynced).

    A ``kill -9`` between any two steps leaves a state :meth:`recover` can
    classify purely from the journal plus the filesystem: a BEGIN without a
    COMMIT whose final file exists was interrupted *after* the atomic rename
    (the write is durable — re-commit it); one whose final file is missing
    was interrupted before (delete the orphan temp; the client never got an
    acknowledgement and will retry).  Acknowledgements are only sent after
    step 4, so an acknowledged trace always survives restart.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.path = os.path.join(root, _JOURNAL_FILE)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _append(self, record: Dict[str, str]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def begin(self, key: str, final_path: str) -> None:
        self._append({"op": "BEGIN", "key": key,
                      "path": os.path.abspath(final_path)})

    def commit(self, key: str) -> None:
        self._append({"op": "COMMIT", "key": key})

    # -- search-state records (supervised scheduler) -------------------------------------
    #
    # SEARCH_BEGIN/SEARCH_END bracket a cluster's replay search the same way
    # BEGIN/COMMIT bracket a spool write.  :meth:`recover` silently skips
    # unknown ops, so journals written by a build with search records stay
    # readable by builds without them (and vice versa).

    def search_begin(self, cluster_id: str) -> None:
        self._append({"op": "SEARCH_BEGIN", "key": cluster_id})

    def search_end(self, cluster_id: str) -> None:
        self._append({"op": "SEARCH_END", "key": cluster_id})

    def recover_searches(self) -> List[str]:
        """Cluster ids whose search began but never ended — in flight at a
        crash, candidates for checkpoint resume (first-begun order)."""

        begun: List[str] = []
        ended = set()
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if record.get("op") == "SEARCH_BEGIN":
                        if record["key"] not in begun:
                            begun.append(record["key"])
                    elif record.get("op") == "SEARCH_END":
                        ended.add(record["key"])
        except FileNotFoundError:
            return []
        return [key for key in begun if key not in ended]

    def recover(self) -> Dict[str, str]:
        """Repair interrupted writes; returns ``{key: final_path}`` durable.

        Idempotent: recovering an already-clean journal changes nothing.
        Unreadable (torn) trailing lines are ignored — they can only belong
        to a write that never reached its COMMIT, i.e. was never
        acknowledged.
        """

        begun: Dict[str, str] = {}
        committed: Dict[str, str] = {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn trailing write of an unacked entry
                    if record.get("op") == "BEGIN":
                        begun[record["key"]] = record["path"]
                    elif record.get("op") == "COMMIT":
                        if record["key"] in begun:
                            committed[record["key"]] = begun[record["key"]]
        except FileNotFoundError:
            return {}
        for key, final_path in begun.items():
            if key in committed:
                continue
            if os.path.exists(final_path):
                # Crash landed between the atomic rename and the COMMIT
                # record: the data is durable, only the journal is behind.
                committed[key] = final_path
                self.commit(key)
            else:
                # Crash before the rename: remove the orphan temp.  The
                # uploader never saw an acknowledgement for this write.
                try:
                    os.remove(final_path + _TMP_SUFFIX)
                except FileNotFoundError:
                    pass
        return committed

    def close(self) -> None:
        self._handle.close()


def journaled_spool_write(journal: SpoolJournal, final_path: str,
                          data: bytes, key: Optional[str] = None,
                          faults=None) -> str:
    """Durably write one spool file under the journal's crash protocol.

    *faults* (a :class:`~repro.service.faults.FaultInjector`, duck-typed)
    lets the chaos harness SIGKILL the process between any two steps —
    ``spool.after_begin`` and ``spool.after_replace`` are the windows whose
    recovery the crash tests exercise.
    """

    key = key or os.path.basename(final_path)
    tmp = final_path + _TMP_SUFFIX
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    journal.begin(key, final_path)
    if faults is not None:
        faults.crash_point("spool.after_begin")
    os.replace(tmp, final_path)
    if faults is not None:
        faults.crash_point("spool.after_replace")
    journal.commit(key)
    return final_path


@dataclass
class IngestResult:
    """Typed response of one ingestion (the service API's receipt)."""

    trace_id: str
    cluster_id: str
    #: True when the cluster already had members: this trace will ride along
    #: on the cluster's single replay search instead of costing its own.
    duplicate: bool
    program: str
    scenario: str
    crash_site: Optional[str]
    bits: int
    source: str = "bytes"
    #: ``(plan fingerprint, crash site)`` identity: clusters sharing it are
    #: the same *bug* (possibly recorded from different inputs).
    bug_key: str = ""


@dataclass
class TraceCluster:
    """Equivalent bug reports: one bug, one recording, one replay search."""

    cluster_id: str
    program: str
    scenario: str
    crash_site: Optional[str]
    #: Search-size estimate (bits of the first member's bitvector); the
    #: scheduler runs smallest-estimated-search-first.
    bits: int
    #: Ingestion order of the first member (tie-break and "arrival" order).
    arrival: int
    members: List[str] = field(default_factory=list)
    status: str = "pending"  # "pending" | "done" | "failed"
    report: Optional[Dict[str, object]] = None
    #: ``(plan fingerprint, crash site)`` identity shared by clusters that
    #: are the same bug recorded from different inputs.
    bug_key: str = ""
    #: Digest of the recording plan's instrumented-branch fingerprint: which
    #: plan *generation* the members were recorded under (see
    #: :mod:`repro.planner.ledger`).  Empty on entries persisted before
    #: adaptive planning existed.
    plan_fingerprint: str = ""
    #: Ledger version encoded in the plan's method string (``replan/vN``);
    #: 0 for unversioned base plans.
    plan_version: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "cluster_id": self.cluster_id,
            "program": self.program,
            "scenario": self.scenario,
            "crash_site": self.crash_site,
            "bits": self.bits,
            "arrival": self.arrival,
            "members": list(self.members),
            "status": self.status,
            "report": self.report,
            "bug_key": self.bug_key,
            "plan_fingerprint": self.plan_fingerprint,
            "plan_version": self.plan_version,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "TraceCluster":
        return cls(cluster_id=payload["cluster_id"],
                   program=payload["program"],
                   scenario=payload["scenario"],
                   crash_site=payload.get("crash_site"),
                   bits=payload["bits"],
                   arrival=payload["arrival"],
                   members=list(payload.get("members", [])),
                   status=payload.get("status", "pending"),
                   report=payload.get("report"),
                   bug_key=payload.get("bug_key", ""),
                   plan_fingerprint=payload.get("plan_fingerprint", ""),
                   plan_version=payload.get("plan_version", 0))


class TraceInbox:
    """Receives, stores, deduplicates and schedules bug-report traces."""

    def __init__(self, root: str, persist: bool = True,
                 store_traces: bool = True,
                 spool_pattern: str = "*.trace",
                 max_trace_bytes: int = 0,
                 max_rejected: int = 256,
                 registry=None) -> None:
        self.root = root
        self.persist = persist
        self.store_traces = store_traces
        self.spool_pattern = spool_pattern
        #: Hard size cap on one trace (0 = unlimited); oversize traces are
        #: rejected before parsing, and the network listener refuses them
        #: from the declared frame length before buffering anything.
        self.max_trace_bytes = max_trace_bytes
        #: Rejection-ledger size cap; oldest entries are evicted beyond it.
        self.max_rejected = max_rejected
        #: Optional :class:`~repro.telemetry.MetricsRegistry` receiving the
        #: ``service.rejected.<reason>`` counters.
        self.registry = registry
        self.clusters: Dict[str, TraceCluster] = {}
        #: trace_id -> {cluster, program, scenario, file, source}
        self.traces: Dict[str, Dict[str, object]] = {}
        #: spool filename (absolute) -> trace_id ("" when rejected).
        self.spooled: Dict[str, str] = {}
        #: spool filename -> one-line rejection reason.
        self.rejected: Dict[str, str] = {}
        #: Unparsable spool files on their grace poll: path -> (size,
        #: mtime_ns).  A file is only rejected once it failed to parse *and*
        #: was unchanged since the previous poll — a file still being
        #: written (or appearing mid-scan) is skipped and retried instead.
        #: In-memory only: after a restart a suspect simply re-earns its
        #: grace poll.
        self._suspects: Dict[str, Tuple[int, int]] = {}
        self._sequence = 0
        os.makedirs(self.root, exist_ok=True)
        if self.store_traces:
            os.makedirs(os.path.join(self.root, _TRACE_DIR), exist_ok=True)
        self._load_state()

    # -- ingestion --------------------------------------------------------------

    def ingest_bytes(self, data: bytes, source: str = "bytes",
                     _defer_save: bool = False) -> IngestResult:
        """Ingest one serialized trace; raises ``TraceError`` on bad bytes."""

        self._check_size(len(data), source)
        trace = load_trace_bytes(data)
        self._sequence += 1
        digest = hashlib.sha256(data).hexdigest()[:8]
        trace_id = f"t{self._sequence:05d}-{digest}"
        bug_key = _bug_key(trace)
        cluster_id = _cluster_id(bug_key, _recording_digest(trace))
        crash = (f"{trace.crash_site.function}:{trace.crash_site.line}"
                 if trace.crash_site else None)
        cluster = self.clusters.get(cluster_id)
        duplicate = cluster is not None
        if cluster is None:
            cluster = TraceCluster(cluster_id=cluster_id,
                                   program=trace.program_name,
                                   scenario=trace.scenario,
                                   crash_site=crash,
                                   bits=len(trace.bitvector),
                                   arrival=self._sequence,
                                   bug_key=bug_key,
                                   plan_fingerprint=plan_fingerprint_digest(
                                       trace.plan),
                                   plan_version=plan_version_of(
                                       trace.plan.method) or 0)
            self.clusters[cluster_id] = cluster
        cluster.members.append(trace_id)
        stored = ""
        if self.store_traces:
            stored = os.path.join(_TRACE_DIR, f"{trace_id}.trace")
            with open(os.path.join(self.root, stored), "wb") as handle:
                handle.write(data)
        self.traces[trace_id] = {
            "cluster": cluster_id,
            "program": trace.program_name,
            "scenario": trace.scenario,
            "file": stored,
            "source": source,
        }
        if not _defer_save:
            self._save_state()
        return IngestResult(trace_id=trace_id, cluster_id=cluster_id,
                            duplicate=duplicate, program=trace.program_name,
                            scenario=trace.scenario, crash_site=crash,
                            bits=len(trace.bitvector), source=source,
                            bug_key=bug_key)

    def ingest_file(self, path: str) -> IngestResult:
        with open(path, "rb") as handle:
            data = handle.read()
        return self.ingest_bytes(data, source=os.path.abspath(path))

    def ingest_spooled(self, path: str, data: bytes) -> IngestResult:
        """Ingest a spool file whose bytes the caller already holds.

        The network listener's path: it journals *data* into a spool
        partition itself, then records the ingestion against the file so a
        restarted :meth:`poll_spool` over the partitions skips it.  Calling
        it again for an already-ingested path returns the original receipt
        (flagged ``duplicate``) without re-ingesting — the idempotency the
        upload retry protocol relies on.
        """

        path = os.path.abspath(path)
        known = self.spooled.get(path)
        if known:
            entry = self.traces[known]
            cluster = self.clusters[entry["cluster"]]
            return IngestResult(trace_id=known,
                                cluster_id=cluster.cluster_id,
                                duplicate=True, program=cluster.program,
                                scenario=cluster.scenario,
                                crash_site=cluster.crash_site,
                                bits=cluster.bits, source=path,
                                bug_key=cluster.bug_key)
        result = self.ingest_bytes(data, source=path, _defer_save=True)
        self.spooled[path] = result.trace_id
        self._save_state()
        return result

    def poll_spool(self, spool_dir: str) -> List[IngestResult]:
        """Ingest every not-yet-seen spool file matching the pattern.

        Files are keyed by absolute path: each spool file is one shipped bug
        report, so two files with identical contents are two reports (and
        dedup happens at the cluster level, not here).  Re-polling — in the
        same process or after a restart — skips everything already ingested
        or rejected.  A corrupt file lands in :attr:`rejected` with its
        one-line reason and never aborts the batch — but only after a grace
        poll: an unparsable file that changed (or vanished) since the last
        look is treated as still being written and retried, never
        mis-filed as corrupt (see ``_suspects``).

        ``part-NN`` subdirectories (spool partitions, see
        :func:`partition_dirs`) are descended into automatically, so one
        poll covers a sharded spool.

        State is persisted once per file, *after* the spool ledger entry is
        recorded, so the on-disk snapshot is always atomic: a crash mid-poll
        either shows a file fully ingested (trace + ledger entry) or not at
        all — never a trace that a restarted poll would ingest twice.
        """

        results: List[IngestResult] = []
        try:
            entries = sorted(os.listdir(spool_dir))
        except FileNotFoundError:
            return results
        for name in entries:
            full = os.path.join(spool_dir, name)
            if name.startswith(_PART_PREFIX) and os.path.isdir(full):
                results.extend(self.poll_spool(full))
                continue
            if not fnmatch.fnmatch(name, self.spool_pattern):
                continue
            path = os.path.abspath(full)
            if path in self.spooled or path in self.rejected:
                continue
            try:
                stamp = os.stat(path)
            except OSError:
                continue  # vanished mid-scan; retry next poll if it returns
            if self.max_trace_bytes and stamp.st_size > self.max_trace_bytes:
                # Oversize is rejectable immediately: a file still growing
                # past the cap will only ever stay oversize.
                self._reject(path, TraceTooLargeError(
                    f"spool file is {stamp.st_size} bytes "
                    f"(max_trace_bytes={self.max_trace_bytes})"))
                continue
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
                result = self.ingest_bytes(data, source=path,
                                           _defer_save=True)
            except FileNotFoundError:
                continue  # vanished between stat and read
            except (TraceError, OSError) as exc:
                signature = (stamp.st_size, stamp.st_mtime_ns)
                previous = self._suspects.get(path)
                if previous != signature:
                    # First failure, or the file changed since we last
                    # looked: likely still being written.  Skip; re-examine
                    # on the next poll.
                    self._suspects[path] = signature
                    continue
                del self._suspects[path]
                self._reject(path, exc)
                continue
            self._suspects.pop(path, None)
            self.spooled[path] = result.trace_id
            self._save_state()
            results.append(result)
        return results

    def reject(self, source: str, exc: Exception) -> None:
        """Record a rejection originating outside the poll loop.

        The network listener's entry point: a corrupt, oversized or
        over-quota upload gets a ledger entry under a ``net:`` pseudo-source
        so the damage is visible in ``inbox.json`` and the
        ``service.rejected.*`` counters, exactly like a bad spool file.
        """

        self._reject(source, exc)

    def _reject(self, source: str, exc: Exception) -> None:
        """Ledger one rejection (bounded) and bump its telemetry counter."""

        reason = f"{type(exc).__name__}: " + " ".join(str(exc).split())
        self.rejected.pop(source, None)  # re-insertion moves it to newest
        self.rejected[source] = reason
        self._evict_rejected()
        if self.registry is not None:
            self.registry.counter(
                f"service.rejected.{type(exc).__name__}").inc()
        self._save_state()

    def _evict_rejected(self) -> None:
        while len(self.rejected) > self.max_rejected > 0:
            oldest = next(iter(self.rejected))
            del self.rejected[oldest]

    def _check_size(self, size: int, source: str) -> None:
        if self.max_trace_bytes and size > self.max_trace_bytes:
            raise TraceTooLargeError(
                f"trace from {source} is {size} bytes "
                f"(max_trace_bytes={self.max_trace_bytes})")

    # -- scheduling -------------------------------------------------------------

    def pending_clusters(self, priority: str = "smallest-first"
                         ) -> List[TraceCluster]:
        """Clusters awaiting a replay search, in dispatch order.

        ``smallest-first`` orders by the bitvector-size estimate (shortest
        recorded log ≈ smallest guided search) so cheap reproductions are
        reported while the expensive ones still run; ``arrival`` is FIFO.
        """

        pending = [c for c in self.clusters.values() if c.status == "pending"]
        if priority == "arrival":
            pending.sort(key=lambda c: c.arrival)
        else:
            pending.sort(key=lambda c: (c.bits, c.arrival))
        return pending

    def mark_done(self, cluster_id: str, report: Dict[str, object],
                  failed: bool = False) -> None:
        cluster = self.clusters[cluster_id]
        cluster.status = "failed" if failed else "done"
        cluster.report = report
        self._save_state()

    def trace_path(self, trace_id: str) -> str:
        """Absolute path of the stored copy of *trace_id*."""

        entry = self.traces[trace_id]
        if not entry["file"]:
            raise KeyError(f"trace {trace_id} was ingested with "
                           "store_traces=False; no copy kept")
        return os.path.join(self.root, entry["file"])

    def cluster_of(self, trace_id: str) -> TraceCluster:
        return self.clusters[self.traces[trace_id]["cluster"]]

    # -- counters ---------------------------------------------------------------

    @property
    def ingested(self) -> int:
        return len(self.traces)

    def describe(self) -> Dict[str, object]:
        done = sum(1 for c in self.clusters.values() if c.status == "done")
        return {
            "traces": len(self.traces),
            "clusters": len(self.clusters),
            "pending": sum(1 for c in self.clusters.values()
                           if c.status == "pending"),
            "done": done,
            "rejected": len(self.rejected),
        }

    # -- persistence ------------------------------------------------------------

    def _state_path(self) -> str:
        return os.path.join(self.root, _STATE_FILE)

    def _save_state(self) -> None:
        if not self.persist:
            return
        payload = {
            "version": _STATE_VERSION,
            "sequence": self._sequence,
            "traces": self.traces,
            "clusters": {cid: cluster.to_json()
                         for cid, cluster in self.clusters.items()},
            "spooled": self.spooled,
            "rejected": self.rejected,
        }
        tmp = self._state_path() + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, self._state_path())

    def _load_state(self) -> None:
        try:
            with open(self._state_path()) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            raise TraceError(f"unreadable inbox state {self._state_path()}: {exc}")
        if payload.get("version") != _STATE_VERSION:
            raise TraceError(
                f"inbox state version {payload.get('version')} unsupported "
                f"(this build reads version {_STATE_VERSION})")
        self._sequence = payload.get("sequence", 0)
        self.traces = dict(payload.get("traces", {}))
        self.clusters = {cid: TraceCluster.from_json(entry)
                         for cid, entry in payload.get("clusters", {}).items()}
        self.spooled = dict(payload.get("spooled", {}))
        self.rejected = dict(payload.get("rejected", {}))
        self._evict_rejected()
